#include "obs/quality_monitor.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace robustqo {
namespace obs {

namespace {

// The symmetric relative error factor: max(est/act, act/est), with both
// sides floored at one row so empty results do not divide by zero. Kept
// local because core/report.h (which has the canonical copy) sits above
// obs in the layer order.
double QError(double estimated, double actual) {
  const double est = std::max(estimated, 1.0);
  const double act = std::max(actual, 1.0);
  return est > act ? est / act : act / est;
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return (values[mid - 1] + values[mid]) / 2.0;
}

std::string JsonNumber(double value) { return StrPrintf("%.9g", value); }

}  // namespace

EstimationQualityMonitor::EstimationQualityMonitor(QualityMonitorConfig config)
    : config_(config) {}

void EstimationQualityMonitor::Record(const QualityObservation& observation) {
  if (observation.fingerprint == 0) return;
  Profile& profile = profiles_[observation.fingerprint];
  if (profile.label.empty()) profile.label = observation.label;

  const double q = QError(observation.estimated_rows, observation.actual_rows);
  profile.observations += 1;
  observation_count_ += 1;
  profile.q_sketch.Observe(q);
  profile.q_max = std::max(profile.q_max, q);

  if (profile.baseline.size() < config_.baseline_window) {
    profile.baseline.push_back(q);
  } else {
    profile.recent.push_back(q);
    while (profile.recent.size() > config_.recent_window) {
      profile.recent.pop_front();
    }
  }

  if (observation.confidence_threshold > 0.0) {
    profile.bound_checks += 1;
    profile.threshold_sum += observation.confidence_threshold;
    // The robust estimator inverts the posterior at T as an UPPER bound on
    // the true cardinality, so the bound held iff the actual stayed at or
    // under the estimate.
    if (observation.actual_rows <= observation.estimated_rows) {
      profile.bound_holds += 1;
    }
  }
}

FingerprintQuality EstimationQualityMonitor::Summarize(
    uint64_t fingerprint, const Profile& profile) const {
  FingerprintQuality out;
  out.fingerprint = fingerprint;
  out.label = profile.label;
  out.observations = profile.observations;
  out.q_p50 = profile.q_sketch.Quantile(0.5);
  out.q_p90 = profile.q_sketch.Quantile(0.9);
  out.q_p99 = profile.q_sketch.Quantile(0.99);
  out.q_max = profile.q_max;
  out.bound_checks = profile.bound_checks;
  out.bound_holds = profile.bound_holds;
  if (profile.bound_checks > 0) {
    out.bound_hit_rate = static_cast<double>(profile.bound_holds) /
                         static_cast<double>(profile.bound_checks);
    out.mean_threshold =
        profile.threshold_sum / static_cast<double>(profile.bound_checks);
  }
  out.baseline_median_q = Median(profile.baseline);
  out.recent_median_q =
      Median({profile.recent.begin(), profile.recent.end()});
  if (profile.baseline.size() >= config_.min_observations &&
      profile.recent.size() >= config_.min_observations &&
      out.baseline_median_q > 0.0) {
    out.drift_ratio = out.recent_median_q / out.baseline_median_q;
    out.drifted = out.drift_ratio >= config_.drift_factor;
  }
  return out;
}

std::vector<FingerprintQuality> EstimationQualityMonitor::Snapshot() const {
  std::vector<FingerprintQuality> out;
  out.reserve(profiles_.size());
  for (const auto& [fingerprint, profile] : profiles_) {
    out.push_back(Summarize(fingerprint, profile));
  }
  return out;
}

std::vector<FingerprintQuality> EstimationQualityMonitor::Drifted() const {
  std::vector<FingerprintQuality> out;
  for (const auto& [fingerprint, profile] : profiles_) {
    FingerprintQuality q = Summarize(fingerprint, profile);
    if (q.drifted) out.push_back(std::move(q));
  }
  return out;
}

std::string EstimationQualityMonitor::ReportText() const {
  std::string out = StrPrintf(
      "estimation quality: %llu observation(s) across %llu fingerprint(s)\n",
      static_cast<unsigned long long>(observation_count_),
      static_cast<unsigned long long>(profiles_.size()));
  out += StrPrintf("%-18s %6s %8s %8s %8s %9s %8s %s\n", "fingerprint", "n",
                   "q50", "q99", "qmax", "bound-hit", "drift", "status");
  for (const FingerprintQuality& q : Snapshot()) {
    const std::string hit =
        q.bound_checks == 0
            ? std::string("-")
            : StrPrintf("%.0f%%/%.0f%%", 100.0 * q.bound_hit_rate,
                        100.0 * q.mean_threshold);
    const std::string drift =
        q.drift_ratio > 0.0 ? StrPrintf("%.2fx", q.drift_ratio)
                            : std::string("-");
    out += StrPrintf("0x%016llx %6llu %8.2f %8.2f %8.2f %9s %8s %s\n",
                     static_cast<unsigned long long>(q.fingerprint),
                     static_cast<unsigned long long>(q.observations), q.q_p50,
                     q.q_p99, q.q_max, hit.c_str(), drift.c_str(),
                     q.drifted ? "DRIFTED" : "ok");
    if (!q.label.empty()) out += "  " + q.label + "\n";
  }
  return out;
}

std::string EstimationQualityMonitor::ReportJson() const {
  std::string out = StrPrintf(
      "{\"observations\":%llu,\"fingerprints\":[",
      static_cast<unsigned long long>(observation_count_));
  bool first = true;
  for (const FingerprintQuality& q : Snapshot()) {
    out += StrPrintf(
        "%s{\"fingerprint\":\"0x%016llx\",\"label\":\"%s\","
        "\"observations\":%llu,"
        "\"q_p50\":%s,\"q_p90\":%s,\"q_p99\":%s,\"q_max\":%s,"
        "\"bound_checks\":%llu,\"bound_holds\":%llu,\"bound_hit_rate\":%s,"
        "\"mean_threshold\":%s,\"baseline_median_q\":%s,"
        "\"recent_median_q\":%s,\"drift_ratio\":%s,\"drifted\":%s}",
        first ? "" : ",",
        static_cast<unsigned long long>(q.fingerprint),
        JsonEscape(q.label).c_str(),
        static_cast<unsigned long long>(q.observations),
        JsonNumber(q.q_p50).c_str(), JsonNumber(q.q_p90).c_str(),
        JsonNumber(q.q_p99).c_str(), JsonNumber(q.q_max).c_str(),
        static_cast<unsigned long long>(q.bound_checks),
        static_cast<unsigned long long>(q.bound_holds),
        JsonNumber(q.bound_hit_rate).c_str(),
        JsonNumber(q.mean_threshold).c_str(),
        JsonNumber(q.baseline_median_q).c_str(),
        JsonNumber(q.recent_median_q).c_str(),
        JsonNumber(q.drift_ratio).c_str(), q.drifted ? "true" : "false");
    first = false;
  }
  out += "]}";
  return out;
}

void EstimationQualityMonitor::PublishMetrics(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->GetGauge("estimator.quality.fingerprints")
      ->Set(static_cast<double>(profiles_.size()));
  metrics->GetGauge("estimator.quality.observations")
      ->Set(static_cast<double>(observation_count_));

  uint64_t bound_checks = 0;
  uint64_t bound_holds = 0;
  double threshold_sum = 0.0;
  uint64_t drifted = 0;
  double worst_q = 0.0;
  // Rebuilt from scratch so repeated publishes stay idempotent: the merged
  // sketch is the union of the per-fingerprint sketches, not an append.
  QuantileSketch merged(0.01);
  for (const auto& [fingerprint, profile] : profiles_) {
    bound_checks += profile.bound_checks;
    bound_holds += profile.bound_holds;
    threshold_sum += profile.threshold_sum;
    worst_q = std::max(worst_q, profile.q_max);
    merged.Merge(profile.q_sketch);
    if (Summarize(fingerprint, profile).drifted) drifted += 1;
  }
  metrics->GetGauge("estimator.quality.drifted_fingerprints")
      ->Set(static_cast<double>(drifted));
  metrics->GetGauge("estimator.quality.bound_checks")
      ->Set(static_cast<double>(bound_checks));
  metrics->GetGauge("estimator.quality.bound_holds")
      ->Set(static_cast<double>(bound_holds));
  metrics->GetGauge("estimator.quality.bound_hit_rate")
      ->Set(bound_checks > 0 ? static_cast<double>(bound_holds) /
                                   static_cast<double>(bound_checks)
                             : 0.0);
  metrics->GetGauge("estimator.quality.mean_threshold")
      ->Set(bound_checks > 0 ? threshold_sum / static_cast<double>(bound_checks)
                             : 0.0);
  metrics->GetGauge("estimator.quality.q_error_max")->Set(worst_q);
  QuantileSketch* sketch =
      metrics->GetSketch("estimator.quality.q_error", 0.01);
  sketch->Reset();
  sketch->Merge(merged);
}

void EstimationQualityMonitor::Reset() {
  profiles_.clear();
  observation_count_ = 0;
}

}  // namespace obs
}  // namespace robustqo
