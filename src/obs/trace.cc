#include "obs/trace.h"

#include "util/macros.h"
#include "util/string_util.h"

namespace robustqo {
namespace obs {

std::string AttrU64(uint64_t value) {
  return StrPrintf("%llu", static_cast<unsigned long long>(value));
}

std::string AttrF(double value) { return StrPrintf("%.9g", value); }

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSpanBegin:
      return "span_begin";
    case TraceKind::kSpanEnd:
      return "span_end";
    case TraceKind::kEvent:
      return "event";
  }
  return "?";
}

Tracer::Tracer(const Clock* clock) : wall_(clock) {
  // Per-request tracers record a dozen-odd events in a tight serving
  // loop; one up-front allocation beats the doubling-growth churn.
  events_.reserve(32);
}

TraceEvent Tracer::MakeRecord(TraceKind kind, std::string category,
                              std::string name, TraceAttrs attrs) {
  TraceEvent record;
  record.seq = next_seq_++;
  record.kind = kind;
  record.parent_id = current_span();
  record.category = std::move(category);
  record.name = std::move(name);
  record.wall_micros = wall_.ElapsedMicros();
  record.attrs = std::move(attrs);
  return record;
}

uint64_t Tracer::BeginSpan(std::string category, std::string name,
                           TraceAttrs attrs) {
  TraceEvent record = MakeRecord(TraceKind::kSpanBegin, std::move(category),
                                 std::move(name), std::move(attrs));
  const uint64_t id = next_span_id_++;
  record.span_id = id;
  events_.push_back(std::move(record));
  stack_.push_back(id);
  return id;
}

void Tracer::EndSpan(uint64_t span_id, TraceAttrs attrs) {
  RQO_CHECK_MSG(!stack_.empty() && stack_.back() == span_id,
                "spans must end in LIFO order");
  stack_.pop_back();
  TraceEvent record =
      MakeRecord(TraceKind::kSpanEnd, std::string(), std::string(),
                 std::move(attrs));
  record.span_id = span_id;
  events_.push_back(std::move(record));
}

void Tracer::Event(std::string category, std::string name, TraceAttrs attrs) {
  TraceEvent record = MakeRecord(TraceKind::kEvent, std::move(category),
                                 std::move(name), std::move(attrs));
  record.span_id = record.parent_id;
  events_.push_back(std::move(record));
}

void Tracer::Clear() {
  events_.clear();
  stack_.clear();
  next_seq_ = 0;
}

std::vector<TraceEvent> Tracer::ReleaseEvents() {
  std::vector<TraceEvent> out = std::move(events_);
  events_.clear();
  stack_.clear();
  next_seq_ = 0;
  next_span_id_ = 1;
  return out;
}

std::string Tracer::ToJson(bool include_wall_time) const {
  return TraceEventsToJson(events_, include_wall_time);
}

std::string TraceEventsToJson(const std::vector<TraceEvent>& events,
                              bool include_wall_time) {
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ",";
    out += StrPrintf(
        "{\"seq\":%llu,\"kind\":\"%s\",\"span\":%llu,\"parent\":%llu",
        static_cast<unsigned long long>(e.seq), TraceKindName(e.kind),
        static_cast<unsigned long long>(e.span_id),
        static_cast<unsigned long long>(e.parent_id));
    if (!e.category.empty()) {
      out += StrPrintf(",\"cat\":\"%s\"", JsonEscape(e.category).c_str());
    }
    if (!e.name.empty()) {
      out += StrPrintf(",\"name\":\"%s\"", JsonEscape(e.name).c_str());
    }
    if (include_wall_time) {
      out += StrPrintf(",\"wall_us\":%.3f", e.wall_micros);
    }
    if (!e.attrs.empty()) {
      out += ",\"attrs\":{";
      for (size_t a = 0; a < e.attrs.size(); ++a) {
        if (a > 0) out += ",";
        out += StrPrintf("\"%s\":\"%s\"",
                         JsonEscape(e.attrs[a].first).c_str(),
                         JsonEscape(e.attrs[a].second).c_str());
      }
      out += "}";
    }
    out += "}";
  }
  out += "]";
  return out;
}

SpanGuard::SpanGuard(Tracer* tracer, std::string category, std::string name,
                     TraceAttrs attrs)
    : tracer_(tracer) {
  if (tracer_ != nullptr) {
    span_id_ = tracer_->BeginSpan(std::move(category), std::move(name),
                                  std::move(attrs));
  }
}

SpanGuard::~SpanGuard() {
  if (tracer_ != nullptr) tracer_->EndSpan(span_id_, std::move(end_attrs_));
}

void SpanGuard::Attr(std::string key, std::string value) {
  if (tracer_ != nullptr) {
    end_attrs_.emplace_back(std::move(key), std::move(value));
  }
}

}  // namespace obs
}  // namespace robustqo
