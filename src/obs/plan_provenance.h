// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Plan-choice provenance: *why* did the optimizer's winner beat its
// rivals, and how fragile is that choice across the selectivity
// posterior? At optimization time the optimizer snapshots the winning
// plan plus its top-K runner-up candidates, re-costs every one of them at
// a fixed grid of posterior quantiles (PARQO's judge-plans-by-the-whole-
// posterior lens; Trummer & Koch's (eps, delta)-stability when the winner
// dominates everywhere), and the serving layer files the result here —
// a bounded, epoch-stamped store keyed by the canonical plan-cache key.
// When a cached plan is re-planned (stale epoch, drift block, degraded
// lookup, plain eviction) the store also captures a plan-diff record:
// old vs new plan, cost-curve delta, and the PlanCacheOutcome trigger.
//
// Strictly read-only with respect to plan choice: nothing in this file
// feeds back into optimization. Like the FlightRecorder, the store is a
// plain data class — it always works when used directly, independent of
// ROBUSTQO_OBS, and harnesses Absorb() per-run stores in run order so
// reports stay byte-identical at any thread count.

#ifndef ROBUSTQO_OBS_PLAN_PROVENANCE_H_
#define ROBUSTQO_OBS_PLAN_PROVENANCE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace robustqo {
namespace obs {

/// One candidate plan's cost curve across the sensitivity quantile grid.
struct CandidateCurve {
  std::string label;
  /// Ranking cost at the planning threshold (what the optimizer compared).
  double cost = 0.0;
  double rows = 0.0;
  /// False when the candidate had no re-cost closure (e.g. star
  /// strategies): cost_at is then a flat copy of `cost`.
  bool curve_available = true;
  /// Re-costed value at each PlanSensitivity::grid quantile.
  std::vector<double> cost_at;
};

/// Sensitivity of one plan choice across the selectivity posterior.
struct PlanSensitivity {
  /// True when a capture was attempted at all (provenance enabled); the
  /// EXPLAIN sections render only captured sensitivities so disabled
  /// output is byte-identical to pre-provenance builds.
  bool captured = false;
  /// True when the posterior and curves were actually evaluated.
  bool available = false;
  std::string unavailable_reason;  ///< set when captured && !available
  std::string plan_label;          ///< the winner
  double threshold = 0.0;          ///< effective T at planning time
  std::vector<double> grid;        ///< posterior quantiles evaluated
  std::vector<double> selectivity; ///< posterior selectivity per quantile
  /// Winner first, then runner-ups in ranking order.
  std::vector<CandidateCurve> candidates;
  /// (eps, delta)-style stability: the winner dominates every rival at
  /// every grid point.
  bool stable = false;
  /// Worst gap to the per-quantile optimum across the grid, in percent.
  double max_regret_pct = 0.0;
  /// First posterior quantile (linearly interpolated between grid points)
  /// where some rival becomes cheaper than the winner; -1 when none.
  double crossover_quantile = -1.0;
  std::string crossover_rival;
  /// One-line human verdict, e.g. "winner within 4.2% of per-quantile
  /// optimum across p10-p95; crossover at p83 vs Seq(readings)".
  std::string verdict;
};

/// Computes stable / max_regret_pct / crossover / verdict from the curves.
/// Idempotent; call after filling grid, selectivity and candidates.
void FinalizeSensitivity(PlanSensitivity* s);

/// Label for a quantile, e.g. 0.83 -> "p83".
std::string QuantileLabel(double quantile);

/// Deterministic JSON object for one sensitivity (EXPLAIN's `sensitivity`
/// section and the store's record dumps share the byte format).
std::string SensitivityJson(const PlanSensitivity& s);

/// Why one plan won: the provenance record filed per plan-cache key.
struct PlanProvenanceRecord {
  uint64_t fingerprint = 0;
  uint64_t threshold_bits = 0;  ///< T bit pattern (plan-cache key part)
  std::string estimator;
  uint64_t epoch = 0;           ///< statistics epoch at planning time
  uint64_t sequence = 0;        ///< recording order (assigned by the store)
  std::string plan_label;
  double estimated_cost = 0.0;
  double estimated_rows = 0.0;
  std::string tag;              ///< absorption provenance ("run=3")
  PlanSensitivity sensitivity;
};

/// What changed when a key got re-planned.
struct PlanDiffRecord {
  uint64_t fingerprint = 0;
  std::string trigger;   ///< PlanCacheOutcomeName of the re-plan miss
  uint64_t sequence = 0; ///< recording order (assigned by the store)
  uint64_t old_epoch = 0;
  uint64_t new_epoch = 0;
  std::string old_label;
  std::string new_label;
  double old_cost = 0.0;
  double new_cost = 0.0;
  bool plan_changed = false;  ///< labels differ
  /// Winner cost curves before/after on the shared quantile grid (either
  /// may be empty when a side's sensitivity was unavailable).
  std::vector<double> grid;
  std::vector<double> old_curve;
  std::vector<double> new_curve;
  std::string old_verdict;
  std::string new_verdict;
  std::string tag;
};

struct PlanProvenanceConfig {
  bool enabled = true;
  /// LRU bound on provenance records (keyed by plan-cache key).
  size_t capacity = 128;
  /// FIFO bound on plan-diff records.
  size_t diff_capacity = 64;
};

struct PlanProvenanceStats {
  uint64_t recorded = 0;       ///< records accepted (insert or refresh)
  uint64_t evicted = 0;        ///< records dropped by the LRU bound
  uint64_t diffs = 0;          ///< diff records accepted
  uint64_t diffs_evicted = 0;  ///< diff records dropped by the FIFO bound
  uint64_t absorbed = 0;       ///< records + diffs taken from other stores
  uint64_t fragile = 0;        ///< recorded with a crossover
  uint64_t stable = 0;         ///< recorded with the stability flag
};

/// Bounded store of plan provenance + plan-diff records. Not thread-safe;
/// the serving layer records from its sequential PLAN phase and harnesses
/// merge per-run stores with Absorb() in run order.
class PlanProvenanceStore {
 public:
  explicit PlanProvenanceStore(PlanProvenanceConfig config = {});

  /// Runtime toggle (`SET PROVENANCE ON|OFF`): a disabled store drops
  /// offers and publishes nothing, so disabled output is byte-identical
  /// to a build without the store.
  bool enabled() const { return config_.enabled; }
  void set_enabled(bool enabled) { config_.enabled = enabled; }

  /// Files one record under (fingerprint, threshold_bits, estimator).
  /// Re-recording an existing key refreshes it (and its LRU position).
  void Record(PlanProvenanceRecord record);

  /// Files one plan-diff record.
  void RecordDiff(PlanDiffRecord diff);

  /// Newest record for `fingerprint` across thresholds/estimators
  /// (nullptr when none). Pointers are invalidated by the next mutation.
  const PlanProvenanceRecord* Find(uint64_t fingerprint) const;

  /// Newest record overall (nullptr when empty).
  const PlanProvenanceRecord* Latest() const;

  /// Records in recording order (oldest first).
  std::vector<const PlanProvenanceRecord*> Snapshot() const;
  /// Diff records in recording order (oldest first).
  std::vector<const PlanDiffRecord*> Diffs() const;

  /// Moves every record and diff of `other` into this store in recording
  /// order, prefixing tags with `tag` ("tag" or "tag/existing"), then
  /// clears `other`. Harness aggregation: absorbing per-run stores in run
  /// order makes the merged report independent of worker scheduling.
  void Absorb(PlanProvenanceStore&& other, const std::string& tag);

  /// One line per record: the deterministic summary block.
  std::string ReportText() const;

  /// The `.whyplan` body for one fingerprint: winner, per-quantile cost
  /// table for every retained candidate, verdict, and the fingerprint's
  /// plan-diff history. Empty-store/miss cases return a one-line notice.
  std::string ReportFor(uint64_t fingerprint) const;

  /// Deterministic JSON dump (config, stats, records, diffs).
  std::string ToJson() const;

  /// Chrome trace_event JSON: one counter track ("ph":"C") per record —
  /// track name "plancost <fingerprint hex> T=<threshold>", one sample
  /// per grid quantile (ts = quantile percent), one numeric series per
  /// retained candidate. Loadable next to the flight-recorder lanes.
  std::string ToChromeTrace() const;

  /// Syncs optimizer.provenance.* / optimizer.sensitivity.* series into
  /// `metrics` (no-op when null or the store is disabled).
  void PublishMetrics(MetricsRegistry* metrics) const;

  void Clear();

  size_t size() const { return records_.size(); }
  const PlanProvenanceStats& stats() const { return stats_; }
  const PlanProvenanceConfig& config() const { return config_; }

 private:
  struct Key {
    uint64_t fingerprint = 0;
    uint64_t threshold_bits = 0;
    std::string estimator;
    bool operator<(const Key& o) const {
      if (fingerprint != o.fingerprint) return fingerprint < o.fingerprint;
      if (threshold_bits != o.threshold_bits) {
        return threshold_bits < o.threshold_bits;
      }
      return estimator < o.estimator;
    }
  };

  PlanProvenanceConfig config_;
  PlanProvenanceStats stats_;
  std::map<Key, PlanProvenanceRecord> records_;
  std::deque<PlanDiffRecord> diffs_;
  uint64_t next_sequence_ = 0;
  /// Most recently recorded crossover quantile (-1 until one is seen);
  /// exported as the optimizer.sensitivity.crossover_quantile gauge.
  double last_crossover_ = -1.0;
};

}  // namespace obs
}  // namespace robustqo

#endif  // ROBUSTQO_OBS_PLAN_PROVENANCE_H_
