// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// FeedbackStore: the online-learning half of the estimation feedback loop
// (ROADMAP item 1, in the spirit of Postgres AQO / adaptive cardinality
// estimation). The serving layer's reduce phase — and the EXPLAIN ANALYZE
// quality join — record each executed query's true selectivity under its
// canonical predicate fingerprint (perf/fingerprint.h). The store folds
// every observation into per-fingerprint Beta pseudo-counts (k_eq, n_eq):
// an observation of actual selectivity s contributes s·w to k_eq and w to
// n_eq, where w = observation_weight equivalent sample rows. The robust
// estimator then merges that learned evidence into the prior of its
// selectivity posterior, so the next estimate of the same predicate shape
// starts from what execution actually measured — "learn and replan
// better" instead of "evict and replan blind".
//
// Guarantees:
//   * Bounded evidence: n_eq is capped at max_equivalent_n; when the cap
//     is hit both pseudo-counts rescale proportionally, which doubles as
//     exponential forgetting of old observations.
//   * Bounded memory: at most max_fingerprints entries; inserting past
//     the cap deterministically evicts the entry with the fewest
//     observations (oldest insertion breaking ties).
//   * Epoch-stamped: every entry records the statistics epoch its
//     evidence was gathered under. A statistics rebuild bumps the epoch,
//     which makes stale evidence invisible to Lookup immediately and
//     resets it lazily on the next Observe — fresh statistics must not be
//     "corrected" by feedback gathered against the stale ones.
//   * Deterministic: all mutation happens in the serving layer's
//     sequential phases (admission order), so reports, metrics and the
//     corrections themselves are byte-identical at any RQO_THREADS.
//   * Fully disableable: with enabled=false, Lookup never hits and
//     Observe is a no-op, reproducing the pre-learning estimates
//     bit-for-bit.
//
// Observe probes the `learning.feedback.apply` fault site before touching
// the store: a fired probe drops the observation (typed status, counted),
// modeling a feedback pipeline outage — estimates degrade gracefully to
// their uncorrected values, never to wrong answers.

#ifndef ROBUSTQO_LEARNING_FEEDBACK_STORE_H_
#define ROBUSTQO_LEARNING_FEEDBACK_STORE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace robustqo {
namespace learn {

/// Knobs of the feedback store (the shell's SET LEARNING toggles
/// `enabled`; the rest are ServerConfig-level policy).
struct LearningConfig {
  /// Master switch. Off = Observe is a no-op and Lookup never hits, so
  /// estimates are bit-identical to a build without the store.
  bool enabled = true;
  /// Equivalent sample rows one observation contributes (w): k_eq gains
  /// actual_selectivity * w, n_eq gains w. Larger = faster adaptation.
  double observation_weight = 32.0;
  /// Cap on n_eq; hitting it rescales both pseudo-counts proportionally
  /// (bounded evidence + exponential forgetting).
  double max_equivalent_n = 2048.0;
  /// Observations required before Lookup exposes an entry's evidence —
  /// one noisy actual must not steer the estimator.
  uint64_t min_observations = 3;
  /// Bounded memory: max tracked fingerprints (deterministic eviction).
  size_t max_fingerprints = 256;
};

/// Learned pseudo-evidence for one fingerprint, ready to merge into a
/// Beta prior: alpha += k_eq, beta += n_eq - k_eq.
struct LearnedEvidence {
  double k_eq = 0.0;
  double n_eq = 0.0;
  uint64_t observations = 0;
};

class FeedbackStore {
 public:
  explicit FeedbackStore(LearningConfig config = {}) : config_(config) {}

  const LearningConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }
  void set_enabled(bool enabled) { config_.enabled = enabled; }

  /// Folds one executed query's outcome into the fingerprint's evidence.
  /// `statistics_epoch` stamps the entry; an entry observed under an older
  /// epoch is reset first (stale evidence dies with the statistics it was
  /// gathered against). Probes the learning.feedback.apply fault site: a
  /// fire drops the observation and returns its typed status. No-op
  /// (OK) when disabled.
  Status Observe(uint64_t fingerprint, const std::string& label,
                 double estimated_selectivity, double actual_selectivity,
                 uint64_t statistics_epoch);

  /// The learned evidence for `fingerprint` at the current statistics
  /// epoch, or nullopt when disabled, unknown, gathered under a different
  /// epoch, or still below min_observations. Const and side-effect-free —
  /// the estimator counts its own hit/miss metrics.
  std::optional<LearnedEvidence> Lookup(uint64_t fingerprint,
                                        uint64_t statistics_epoch) const;

  /// Probes the learning.feedback.apply fault site for a plan-time learned
  /// lookup. The estimator calls this before Lookup: a fired probe means
  /// the feedback path is unavailable and the estimate proceeds
  /// uncorrected (counted as estimator.learned.unavailable by the caller).
  Status CheckApply();

  size_t fingerprints_tracked() const { return entries_.size(); }
  uint64_t observations_total() const { return observations_total_; }
  uint64_t dropped_total() const { return dropped_total_; }
  uint64_t evictions_total() const { return evictions_total_; }
  uint64_t epoch_resets_total() const { return epoch_resets_total_; }

  /// Aligned text block (the shell's `.learning`): totals plus one line
  /// per fingerprint ordered by fingerprint. Byte-identical at any
  /// RQO_THREADS setting.
  std::string ReportText() const;

  /// Deterministic JSON of the same content.
  std::string ToJson() const;

  /// Every tracked fingerprint's evidence in fingerprint order, regardless
  /// of min_observations or epoch — the replication unit the cluster
  /// coordinator ships to node replicas on statistics-epoch syncs.
  std::vector<std::pair<uint64_t, LearnedEvidence>> AllEvidence() const;

  /// Publishes the estimator.learned.* store-side series (fingerprints,
  /// observations, dropped, evictions, epoch_resets). Idempotent; no-op
  /// on null.
  void PublishMetrics(obs::MetricsRegistry* metrics) const;

  /// Drops every entry (keeps lifetime totals).
  void Reset();

  /// The injector whose learning.feedback.apply site Observe probes
  /// (borrowed, nullable).
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
  }

 private:
  struct Entry {
    std::string label;
    double k_eq = 0.0;
    double n_eq = 0.0;
    uint64_t observations = 0;
    uint64_t epoch = 0;
    uint64_t order = 0;  ///< insertion order (deterministic eviction ties)
    double last_estimated = 0.0;
    double last_actual = 0.0;
  };

  LearningConfig config_;
  std::map<uint64_t, Entry> entries_;
  fault::FaultInjector* injector_ = nullptr;
  uint64_t next_order_ = 0;
  uint64_t observations_total_ = 0;
  uint64_t dropped_total_ = 0;
  uint64_t evictions_total_ = 0;
  uint64_t epoch_resets_total_ = 0;
};

}  // namespace learn
}  // namespace robustqo

#endif  // ROBUSTQO_LEARNING_FEEDBACK_STORE_H_
