#include "learning/tpercent_tuner.h"

#include <algorithm>

#include "util/string_util.h"

namespace robustqo {
namespace learn {

double TPercentTuner::EffectiveThreshold(uint64_t fingerprint,
                                         double base) const {
  if (!config_.enabled) return base;
  auto it = overrides_.find(fingerprint);
  if (it == overrides_.end()) return base;
  return std::max(base, it->second);
}

void TPercentTuner::Retune(const obs::SloMonitor& slo, double base_threshold) {
  if (!config_.enabled) return;
  for (uint64_t fingerprint : slo.TrackedFingerprints()) {
    const obs::SloMonitor::Scope* scope = slo.FingerprintScope(fingerprint);
    if (scope == nullptr) continue;
    const uint64_t successes = scope->observed - scope->failed;
    if (successes < config_.min_observations) continue;
    const double current = EffectiveThreshold(fingerprint, base_threshold);
    const double regret_rate =
        static_cast<double>(scope->regret_positive) /
        static_cast<double>(successes);
    const double budget = 1.0 - current;
    if (regret_rate > budget + config_.slack) {
      // Chronic regret: the posterior's T%-quantile undersells this shape.
      const double raised =
          std::min(config_.max_threshold, current + config_.step);
      if (raised > current) {
        overrides_[fingerprint] = raised;
        ++raised_total_;
      }
    } else if (regret_rate + config_.slack < budget) {
      // Calibrated again: walk the override back toward the base.
      auto it = overrides_.find(fingerprint);
      if (it != overrides_.end()) {
        const double relaxed = it->second - config_.step;
        if (relaxed <= base_threshold) {
          overrides_.erase(it);
        } else {
          it->second = relaxed;
        }
        ++relaxed_total_;
      }
    }
  }
}

std::string TPercentTuner::ReportText() const {
  std::string out = StrPrintf(
      "t%% tuner: %s, %zu overrides (%llu raises, %llu relaxes)\n",
      config_.enabled ? "on" : "off", overrides_.size(),
      static_cast<unsigned long long>(raised_total_),
      static_cast<unsigned long long>(relaxed_total_));
  for (const auto& [fingerprint, threshold] : overrides_) {
    out += StrPrintf("  %016llx T=%.0f%%\n",
                     static_cast<unsigned long long>(fingerprint),
                     threshold * 100.0);
  }
  return out;
}

std::string TPercentTuner::ToJson() const {
  std::string out = "{";
  out += StrPrintf("\"enabled\":%s", config_.enabled ? "true" : "false");
  out += StrPrintf(",\"raised\":%llu",
                   static_cast<unsigned long long>(raised_total_));
  out += StrPrintf(",\"relaxed\":%llu",
                   static_cast<unsigned long long>(relaxed_total_));
  out += ",\"overrides\":[";
  bool first = true;
  for (const auto& [fingerprint, threshold] : overrides_) {
    if (!first) out += ",";
    first = false;
    out += StrPrintf("{\"fingerprint\":\"0x%016llx\",\"threshold\":%.9g}",
                     static_cast<unsigned long long>(fingerprint), threshold);
  }
  out += "]}";
  return out;
}

void TPercentTuner::PublishMetrics(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->GetGauge("optimizer.tpercent.overrides")
      ->Set(static_cast<double>(overrides_.size()));
  const auto sync = [metrics](const char* name, uint64_t value) {
    obs::Counter* counter = metrics->GetCounter(name);
    counter->Increment(value - counter->value());
  };
  sync("optimizer.tpercent.raised", raised_total_);
  sync("optimizer.tpercent.relaxed", relaxed_total_);
}

void TPercentTuner::Reset() { overrides_.clear(); }

}  // namespace learn
}  // namespace robustqo
