// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// TPercentTuner: the regret-driven half of the learning subsystem. The
// paper's T% knob trades expected performance against predictability; the
// SloMonitor measures, per statement fingerprint, how often the chosen
// plan's realized cost exceeded the cdf⁻¹(T%) promise (positive regret).
// Under a calibrated posterior that should happen on at most ~(1-T) of
// executions — when a fingerprint's realized regret rate is chronically
// above that budget, the posterior is underselling it and the tuner
// raises that fingerprint's effective T% one step (more conservative
// estimates, safer plans). When the regret rate falls back inside the
// budget the override relaxes one step toward the configured base, so a
// transient rough patch does not pin a fingerprint at max conservatism
// forever.
//
// The tuner holds per-fingerprint absolute T overrides; the effective
// threshold for a request is max(base, override) where base is the
// session/system T%. The plan-cache key already includes the effective
// T%, so a retuned fingerprint naturally misses the cache and replans at
// its new threshold — no explicit invalidation needed.
//
// Retune runs in the serving layer's sequential between-waves hook and
// reads only the SloMonitor's deterministic state, so overrides, reports
// and optimizer.tpercent.* metrics are byte-identical at any RQO_THREADS.

#ifndef ROBUSTQO_LEARNING_TPERCENT_TUNER_H_
#define ROBUSTQO_LEARNING_TPERCENT_TUNER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "obs/slo_monitor.h"

namespace robustqo {
namespace learn {

struct TunerConfig {
  /// Master switch (SET LEARNING OFF disables it together with the
  /// feedback store).
  bool enabled = true;
  /// T% movement per Retune decision.
  double step = 0.05;
  /// Ceiling for raised thresholds (must stay < 1 for cdf⁻¹).
  double max_threshold = 0.99;
  /// Successful executions a fingerprint needs before it is tuned.
  uint64_t min_observations = 16;
  /// Tolerated excess over the (1 - T) regret budget before raising, and
  /// required headroom under it before relaxing (hysteresis).
  double slack = 0.05;
};

class TPercentTuner {
 public:
  explicit TPercentTuner(TunerConfig config = {}) : config_(config) {}

  const TunerConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }
  void set_enabled(bool enabled) { config_.enabled = enabled; }

  /// The T% a request with this statement fingerprint should plan at:
  /// max(base, override), or base when disabled / never tuned.
  double EffectiveThreshold(uint64_t fingerprint, double base) const;

  /// Walks the SloMonitor's per-fingerprint regret scopes and nudges
  /// overrides: raise where the realized regret rate exceeds the
  /// (1 - effective T) budget plus slack, relax one step toward `base`
  /// where it sits below the budget minus slack. Deterministic; call from
  /// a sequential phase.
  void Retune(const obs::SloMonitor& slo, double base_threshold);

  size_t overrides() const { return overrides_.size(); }
  uint64_t raised_total() const { return raised_total_; }
  uint64_t relaxed_total() const { return relaxed_total_; }

  /// Aligned text block (part of the shell's `.learning`).
  std::string ReportText() const;

  /// Deterministic JSON of the same content.
  std::string ToJson() const;

  /// Publishes optimizer.tpercent.{overrides,raised,relaxed}. Idempotent;
  /// no-op on null.
  void PublishMetrics(obs::MetricsRegistry* metrics) const;

  void Reset();

 private:
  TunerConfig config_;
  std::map<uint64_t, double> overrides_;  ///< fingerprint -> absolute T
  uint64_t raised_total_ = 0;
  uint64_t relaxed_total_ = 0;
};

}  // namespace learn
}  // namespace robustqo

#endif  // ROBUSTQO_LEARNING_TPERCENT_TUNER_H_
