#include "learning/feedback_store.h"

#include <algorithm>

#include "util/string_util.h"

namespace robustqo {
namespace learn {

namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

}  // namespace

Status FeedbackStore::Observe(uint64_t fingerprint, const std::string& label,
                              double estimated_selectivity,
                              double actual_selectivity,
                              uint64_t statistics_epoch) {
  if (!config_.enabled) return Status::OK();
  if (fingerprint == 0) {
    return Status::InvalidArgument("feedback requires a predicate fingerprint");
  }
  if (injector_ != nullptr) {
    Status fault = injector_->Check(fault::sites::kLearningFeedbackApply);
    if (!fault.ok()) {
      ++dropped_total_;
      return fault;
    }
  }

  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    if (entries_.size() >= config_.max_fingerprints &&
        config_.max_fingerprints > 0) {
      // Deterministic eviction: the least-observed entry, oldest insertion
      // breaking ties. Feeding happens in admission order, so the victim is
      // a pure function of the observation sequence.
      auto victim = entries_.begin();
      for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
        if (cand->second.observations < victim->second.observations ||
            (cand->second.observations == victim->second.observations &&
             cand->second.order < victim->second.order)) {
          victim = cand;
        }
      }
      entries_.erase(victim);
      ++evictions_total_;
    }
    Entry entry;
    entry.label = label;
    entry.epoch = statistics_epoch;
    entry.order = next_order_++;
    it = entries_.emplace(fingerprint, std::move(entry)).first;
  }
  Entry& entry = it->second;
  if (entry.epoch != statistics_epoch) {
    // Statistics were rebuilt under this fingerprint: the old evidence
    // described the stale statistics' errors, not the fresh ones'. Drop it
    // and start accumulating against the new epoch.
    entry.k_eq = 0.0;
    entry.n_eq = 0.0;
    entry.observations = 0;
    entry.epoch = statistics_epoch;
    ++epoch_resets_total_;
  }
  const double w = std::max(1.0, config_.observation_weight);
  entry.k_eq += Clamp01(actual_selectivity) * w;
  entry.n_eq += w;
  if (config_.max_equivalent_n > 0.0 && entry.n_eq > config_.max_equivalent_n) {
    const double scale = config_.max_equivalent_n / entry.n_eq;
    entry.k_eq *= scale;
    entry.n_eq = config_.max_equivalent_n;
  }
  ++entry.observations;
  entry.last_estimated = Clamp01(estimated_selectivity);
  entry.last_actual = Clamp01(actual_selectivity);
  ++observations_total_;
  return Status::OK();
}

std::optional<LearnedEvidence> FeedbackStore::Lookup(
    uint64_t fingerprint, uint64_t statistics_epoch) const {
  if (!config_.enabled) return std::nullopt;
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return std::nullopt;
  const Entry& entry = it->second;
  if (entry.epoch != statistics_epoch) return std::nullopt;
  if (entry.observations < config_.min_observations) return std::nullopt;
  LearnedEvidence evidence;
  evidence.k_eq = entry.k_eq;
  evidence.n_eq = entry.n_eq;
  evidence.observations = entry.observations;
  return evidence;
}

Status FeedbackStore::CheckApply() {
  if (injector_ == nullptr) return Status::OK();
  return injector_->Check(fault::sites::kLearningFeedbackApply);
}

std::vector<std::pair<uint64_t, LearnedEvidence>> FeedbackStore::AllEvidence()
    const {
  std::vector<std::pair<uint64_t, LearnedEvidence>> out;
  out.reserve(entries_.size());
  for (const auto& [fingerprint, entry] : entries_) {
    out.emplace_back(fingerprint, LearnedEvidence{entry.k_eq, entry.n_eq,
                                                  entry.observations});
  }
  return out;
}

std::string FeedbackStore::ReportText() const {
  std::string out = StrPrintf(
      "learning feedback store: %s, %zu fingerprints, %llu observations "
      "(%llu dropped, %llu evicted, %llu epoch resets)\n",
      config_.enabled ? "on" : "off", entries_.size(),
      static_cast<unsigned long long>(observations_total_),
      static_cast<unsigned long long>(dropped_total_),
      static_cast<unsigned long long>(evictions_total_),
      static_cast<unsigned long long>(epoch_resets_total_));
  for (const auto& [fingerprint, entry] : entries_) {
    const double mean = entry.n_eq > 0.0 ? entry.k_eq / entry.n_eq : 0.0;
    out += StrPrintf(
        "  %016llx epoch=%llu obs=%llu k_eq=%.1f/n_eq=%.1f mean=%.4g "
        "last(est=%.4g act=%.4g)%s %s\n",
        static_cast<unsigned long long>(fingerprint),
        static_cast<unsigned long long>(entry.epoch),
        static_cast<unsigned long long>(entry.observations), entry.k_eq,
        entry.n_eq, mean, entry.last_estimated, entry.last_actual,
        entry.observations < config_.min_observations ? " (warming)" : "",
        entry.label.c_str());
  }
  return out;
}

std::string FeedbackStore::ToJson() const {
  std::string out = "{";
  out += StrPrintf("\"enabled\":%s", config_.enabled ? "true" : "false");
  out += StrPrintf(",\"fingerprints\":%zu", entries_.size());
  out += StrPrintf(",\"observations\":%llu",
                   static_cast<unsigned long long>(observations_total_));
  out += StrPrintf(",\"dropped\":%llu",
                   static_cast<unsigned long long>(dropped_total_));
  out += StrPrintf(",\"evictions\":%llu",
                   static_cast<unsigned long long>(evictions_total_));
  out += StrPrintf(",\"epoch_resets\":%llu",
                   static_cast<unsigned long long>(epoch_resets_total_));
  out += ",\"entries\":[";
  bool first = true;
  for (const auto& [fingerprint, entry] : entries_) {
    if (!first) out += ",";
    first = false;
    out += StrPrintf(
        "{\"fingerprint\":\"0x%016llx\",\"label\":\"%s\",\"epoch\":%llu,"
        "\"observations\":%llu,\"k_eq\":%.9g,\"n_eq\":%.9g,"
        "\"last_estimated\":%.9g,\"last_actual\":%.9g}",
        static_cast<unsigned long long>(fingerprint),
        JsonEscape(entry.label).c_str(),
        static_cast<unsigned long long>(entry.epoch),
        static_cast<unsigned long long>(entry.observations), entry.k_eq,
        entry.n_eq, entry.last_estimated, entry.last_actual);
  }
  out += "]}";
  return out;
}

void FeedbackStore::PublishMetrics(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->GetGauge("estimator.learned.fingerprints")
      ->Set(static_cast<double>(entries_.size()));
  const auto sync = [metrics](const char* name, uint64_t value) {
    obs::Counter* counter = metrics->GetCounter(name);
    counter->Increment(value - counter->value());
  };
  sync("estimator.learned.observations", observations_total_);
  sync("estimator.learned.dropped", dropped_total_);
  sync("estimator.learned.evictions", evictions_total_);
  sync("estimator.learned.epoch_resets", epoch_resets_total_);
}

void FeedbackStore::Reset() { entries_.clear(); }

}  // namespace learn
}  // namespace robustqo
