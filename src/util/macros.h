// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Assertion and convenience macros shared across the library.

#ifndef ROBUSTQO_UTIL_MACROS_H_
#define ROBUSTQO_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message when `condition` is false. Used for programmer
/// errors (violated preconditions); recoverable errors use Status/Result.
#define RQO_CHECK(condition)                                                \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "RQO_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define RQO_CHECK_MSG(condition, msg)                                       \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "RQO_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #condition, (msg));                  \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifndef NDEBUG
#define RQO_DCHECK(condition) RQO_CHECK(condition)
#else
#define RQO_DCHECK(condition) \
  do {                        \
  } while (0)
#endif

/// Propagates a non-OK Status from an expression returning Status.
#define RQO_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::robustqo::Status _st = (expr);         \
    if (!_st.ok()) return _st;               \
  } while (0)

#endif  // ROBUSTQO_UTIL_MACROS_H_
