// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Assertion and convenience macros shared across the library.

#ifndef ROBUSTQO_UTIL_MACROS_H_
#define ROBUSTQO_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>
#include <utility>

/// Aborts with a message when `condition` is false. Used for programmer
/// errors (violated preconditions); recoverable errors use Status/Result.
#define RQO_CHECK(condition)                                                \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "RQO_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define RQO_CHECK_MSG(condition, msg)                                       \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "RQO_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #condition, (msg));                  \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifndef NDEBUG
#define RQO_DCHECK(condition) RQO_CHECK(condition)
#else
#define RQO_DCHECK(condition) \
  do {                        \
  } while (0)
#endif

/// Propagates a non-OK Status from an expression returning Status.
#define RQO_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::robustqo::Status _st = (expr);         \
    if (!_st.ok()) return _st;               \
  } while (0)

#define RQO_MACRO_CONCAT_INNER(a, b) a##b
#define RQO_MACRO_CONCAT(a, b) RQO_MACRO_CONCAT_INNER(a, b)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise move-assigns the value into
/// `lhs` (which may be a declaration: RQO_ASSIGN_OR_RETURN(auto x, ...)).
#define RQO_ASSIGN_OR_RETURN(lhs, rexpr)                                    \
  RQO_ASSIGN_OR_RETURN_IMPL(RQO_MACRO_CONCAT(_rqo_result_, __LINE__), lhs,  \
                            rexpr)
#define RQO_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

#endif  // ROBUSTQO_UTIL_MACROS_H_
