#include "util/status.h"

namespace robustqo {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace robustqo
