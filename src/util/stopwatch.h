// Copyright (c) robustqo authors. Licensed under the MIT license.

#ifndef ROBUSTQO_UTIL_STOPWATCH_H_
#define ROBUSTQO_UTIL_STOPWATCH_H_

#include <chrono>

namespace robustqo {

/// Wall-clock stopwatch used to measure real (not simulated) time, e.g. the
/// Section 6.1 optimization-overhead experiment.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Microseconds elapsed since construction or the last Restart().
  double ElapsedMicros() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace robustqo

#endif  // ROBUSTQO_UTIL_STOPWATCH_H_
