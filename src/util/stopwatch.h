// Copyright (c) robustqo authors. Licensed under the MIT license.

#ifndef ROBUSTQO_UTIL_STOPWATCH_H_
#define ROBUSTQO_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace robustqo {

/// Time source abstraction so real time can be replaced in tests (and in
/// deterministic trace snapshots) by a manually advanced clock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds since an arbitrary fixed epoch. Must never decrease
  /// between calls on the same instance.
  virtual uint64_t NowNanos() const = 0;
};

/// The default time source: std::chrono::steady_clock, which the standard
/// guarantees to be monotonic (time_since_epoch never decreases), so
/// elapsed measurements are immune to wall-clock adjustments.
class MonotonicClock final : public Clock {
 public:
  uint64_t NowNanos() const override;

  /// Shared process-wide instance.
  static const MonotonicClock* Instance();

  /// Compile-time confirmation of the monotonicity guarantee.
  static constexpr bool kIsMonotonic = std::chrono::steady_clock::is_steady;
  static_assert(kIsMonotonic, "steady_clock must be monotonic");
};

/// Test clock advanced explicitly; NowNanos returns whatever was set.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(uint64_t start_nanos = 0) : now_nanos_(start_nanos) {}

  uint64_t NowNanos() const override { return now_nanos_; }
  void AdvanceNanos(uint64_t delta) { now_nanos_ += delta; }
  void AdvanceSeconds(double seconds) {
    now_nanos_ += static_cast<uint64_t>(seconds * 1e9);
  }

 private:
  uint64_t now_nanos_;
};

/// Stopwatch over a monotonic (or injected) clock, used to measure real
/// (not simulated) time, e.g. the Section 6.1 optimization-overhead
/// experiment and the tracer's wall-time column.
class Stopwatch {
 public:
  /// `clock` must outlive the stopwatch; nullptr means the process-wide
  /// monotonic clock.
  explicit Stopwatch(const Clock* clock = nullptr);

  /// Resets both the start point and the lap point to now.
  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Microseconds elapsed since construction or the last Restart().
  double ElapsedMicros() const;

  /// Seconds since the previous Lap() (or Restart()/construction), and
  /// advances the lap point — split timing without touching the start.
  double Lap();

 private:
  const Clock* clock_;
  uint64_t start_nanos_ = 0;
  uint64_t lap_nanos_ = 0;
};

}  // namespace robustqo

#endif  // ROBUSTQO_UTIL_STOPWATCH_H_
