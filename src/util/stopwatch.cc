#include "util/stopwatch.h"

namespace robustqo {

uint64_t MonotonicClock::NowNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const MonotonicClock* MonotonicClock::Instance() {
  static const MonotonicClock clock;
  return &clock;
}

Stopwatch::Stopwatch(const Clock* clock)
    : clock_(clock != nullptr ? clock : MonotonicClock::Instance()) {
  Restart();
}

void Stopwatch::Restart() {
  start_nanos_ = clock_->NowNanos();
  lap_nanos_ = start_nanos_;
}

double Stopwatch::ElapsedSeconds() const {
  return static_cast<double>(clock_->NowNanos() - start_nanos_) * 1e-9;
}

double Stopwatch::ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

double Stopwatch::Lap() {
  const uint64_t now = clock_->NowNanos();
  const double seconds = static_cast<double>(now - lap_nanos_) * 1e-9;
  lap_nanos_ = now;
  return seconds;
}

}  // namespace robustqo
