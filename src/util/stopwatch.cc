#include "util/stopwatch.h"

namespace robustqo {

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double Stopwatch::ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

}  // namespace robustqo
