#include "util/string_util.h"

#include <cstdio>

namespace robustqo {

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::vector<std::string> SplitString(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace robustqo
