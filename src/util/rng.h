// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Deterministic pseudo-random number generation. All randomized components
// of the library (sample construction, data generation, workload sweeps)
// draw from Rng instances seeded explicitly, so every experiment is
// reproducible bit-for-bit.

#ifndef ROBUSTQO_UTIL_RNG_H_
#define ROBUSTQO_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace robustqo {

/// xoshiro256** generator (Blackman & Vigna). Deterministic, fast, and
/// good enough statistically for sampling experiments; not cryptographic.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with equal seeds produce
  /// identical streams on every platform.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDoubleInRange(double lo, double hi);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal variate (Box-Muller; consumes two uniforms).
  double NextGaussian();

  /// Draws `k` indices uniformly at random *with replacement* from
  /// [0, population). This matches the with-replacement sampling model the
  /// paper's Bayesian analysis assumes (Section 3.3).
  std::vector<uint64_t> SampleWithReplacement(uint64_t population, size_t k);

  /// Draws `k` distinct indices uniformly at random *without replacement*
  /// from [0, population) via Floyd's algorithm. Requires k <= population.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t population,
                                                 size_t k);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each
  /// repetition of an experiment its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace robustqo

#endif  // ROBUSTQO_UTIL_RNG_H_
