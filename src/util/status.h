// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Status / Result<T>: RocksDB-style recoverable error handling. Library code
// never throws for recoverable conditions; it returns Status (or Result<T>
// when a value is produced). Programmer errors use RQO_CHECK.

#ifndef ROBUSTQO_UTIL_STATUS_H_
#define ROBUSTQO_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/macros.h"

namespace robustqo {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kInternal,
  /// A resource (statistics sample, file, service) is transiently
  /// unavailable; retrying or degrading to weaker evidence may succeed.
  kUnavailable,
  /// A query-governor budget (memory, rows, simulated time) was exceeded.
  kResourceExhausted,
  /// The operation was cooperatively cancelled before completion.
  kCancelled,
};

/// Human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation that can fail but returns no value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Outcome of an operation that produces a T on success.
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   int v = r.value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    RQO_CHECK_MSG(!std::get<Status>(payload_).ok(),
                  "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; OK if the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// The contained value; aborts if !ok().
  const T& value() const& {
    RQO_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(payload_);
  }
  T& value() & {
    RQO_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(payload_);
  }
  T&& value() && {
    RQO_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(payload_));
  }

  /// Returns the value, or `fallback` if this result is an error.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace robustqo

#endif  // ROBUSTQO_UTIL_STATUS_H_
