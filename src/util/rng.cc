#include "util/rng.h"

#include <cmath>
#include <unordered_set>

#include "util/macros.h"

namespace robustqo {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used only to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  RQO_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  RQO_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleInRange(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::vector<uint64_t> Rng::SampleWithReplacement(uint64_t population,
                                                 size_t k) {
  RQO_CHECK(population > 0);
  std::vector<uint64_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(NextBounded(population));
  return out;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t population,
                                                    size_t k) {
  RQO_CHECK(k <= population);
  // Floyd's algorithm: k iterations, expected O(k) space.
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = population - k; j < population; ++j) {
    uint64_t t = NextBounded(j + 1);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace robustqo
