// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Small string helpers (GCC 12 lacks std::format, so we wrap snprintf).

#ifndef ROBUSTQO_UTIL_STRING_UTIL_H_
#define ROBUSTQO_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace robustqo {

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// True iff `s` starts with `prefix` / ends with `suffix`.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

/// True iff `needle` occurs in `haystack` (SQL LIKE '%needle%').
bool Contains(const std::string& haystack, const std::string& needle);

/// Splits `s` on every occurrence of `sep` (empty pieces included).
std::vector<std::string> SplitString(const std::string& s, char sep);

/// ASCII uppercase copy.
std::string ToUpper(const std::string& s);

/// Escapes `s` for inclusion inside a double-quoted JSON string (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

}  // namespace robustqo

#endif  // ROBUSTQO_UTIL_STRING_UTIL_H_
