// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Traffic harness: drives the server::QueryService with a population of
// simulated clients over simulated time and reports throughput and tail
// latency. Two client models, both standard in serving benchmarks:
//
//   * closed-loop: each client issues a query, waits for it to complete,
//     thinks for a seeded-exponential pause, and issues the next one —
//     load self-regulates with service capacity;
//   * open-loop: each client issues on its own seeded arrival process
//     regardless of completions — load does not back off, so admission
//     backpressure (queueing, shed load) actually bites.
//
// Time is entirely simulated: a request's service time is the simulated
// execution seconds the engine's cost meter reports, queueing delay is
// charged per admission wave waited, and cold plans are charged a fixed
// planning overhead. No wall clock is read anywhere, so a run — including
// its formatted summary — is byte-identical for a given config at any
// RQO_THREADS setting, while still exercising the real service (admission
// control, plan cache, drift monitor) underneath.
//
// Clients are grouped into batch windows: all requests due within one
// window enter one ExecuteBatch() call in (due time, client id) order,
// which is what gives the service real concurrent batches to schedule.

#ifndef ROBUSTQO_WORKLOAD_TRAFFIC_HARNESS_H_
#define ROBUSTQO_WORKLOAD_TRAFFIC_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/quantile_sketch.h"
#include "server/query_service.h"

namespace robustqo {
namespace workload {

enum class TrafficMode {
  kClosedLoop,
  kOpenLoop,
};

/// Knobs for one traffic run.
struct TrafficConfig {
  uint64_t base_seed = 1;
  TrafficMode mode = TrafficMode::kClosedLoop;
  /// Simulated client population (each gets its own session).
  size_t clients = 1000;
  /// Simulated run length; clients stop issuing once the clock passes it.
  double duration_seconds = 300.0;
  /// Mean think time between a completion and the next issue (closed
  /// loop), seeded-exponential per client.
  double think_seconds = 5.0;
  /// Mean inter-arrival time per client (open loop), seeded-exponential.
  double interarrival_seconds = 5.0;
  /// Retry pause after a typed admission rejection.
  double retry_backoff_seconds = 2.0;
  /// Requests due within one window form one service batch.
  double batch_window_seconds = 1.0;
  /// Simulated planning overhead charged to a request whose plan missed
  /// the cache (cached EXECUTEs skip it — the cache's whole point).
  double plan_charge_seconds = 0.25;
  /// Simulated queueing delay charged per admission wave waited.
  double wave_delay_seconds = 0.05;
  /// SQL statements clients rotate through (client id picks the phase).
  /// Every client PREPAREs each statement in its own session.
  std::vector<std::string> statements;
  /// Confidence thresholds rotated across client sessions (0 = inherit the
  /// system default). Empty behaves like {0}.
  std::vector<double> thresholds;
  /// Fraction of issues that are writes (0 = read-only). The per-issue
  /// read/write choice is a random-access hash of (client seed, issue
  /// ordinal), so an admission-rejected issue retries as the same kind and
  /// the mix is independent of scheduling.
  double write_fraction = 0.0;
  /// DML statements write issues rotate through (PREPAREd per session like
  /// the read statements). Ignored when write_fraction <= 0; a positive
  /// write_fraction with an empty list degrades to read-only.
  std::vector<std::string> write_statements;
};

/// Aggregate outcome of a traffic run.
struct TrafficReport {
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t rejected = 0;  ///< typed admission rejections (retried)
  uint64_t cache_hits = 0;
  uint64_t batches = 0;
  /// Write-path tallies (all zero on read-only runs; the Summary() block
  /// adds its "writes:" line only when at least one write was issued, so
  /// read-only summaries are byte-identical to pre-write-path ones).
  uint64_t writes_issued = 0;
  uint64_t writes_committed = 0;
  uint64_t write_rows = 0;       ///< row versions written (inserts+deletes)
  uint64_t commit_retries = 0;   ///< extra commit attempts beyond the first
  /// Data epoch after the run — how many DML commits published.
  uint64_t final_data_epoch = 0;
  double duration_seconds = 0.0;
  /// completed / duration.
  double throughput_qps = 0.0;
  /// End-to-end simulated latency (queueing + planning charge + execution).
  obs::QuantileSketch latency;
  double latency_max_seconds = 0.0;
  /// Queue-wait component alone (admission waves × wave delay) — the SLO
  /// monitor's backpressure signal, re-derived here so the report works
  /// even when observability is compiled out.
  obs::QuantileSketch queue_wait;
  /// Service component alone (execution + cold-plan charge).
  obs::QuantileSketch service_time;
  server::AdmissionStats admission;
  server::PlanCacheStats plan_cache;
  /// SLO monitor report (empty when the monitor observed nothing or
  /// observability is compiled out).
  std::string slo_report;
  /// Flight-recorder JSON dump (empty unless the service's recorder was
  /// enabled and retained at least one request).
  std::string blackbox_json;
  /// Plan-provenance JSON dump (empty unless the service's observatory
  /// recorded at least one plan). Not part of Summary(), so pre-provenance
  /// summaries stay byte-identical.
  std::string provenance_json;

  /// Deterministic fixed-precision text block — the byte-identical
  /// artifact the determinism suite pins across thread counts.
  std::string Summary() const;
};

/// Runs the configured traffic against `service`. The service's sessions
/// are opened (and closed) by the harness; its plan cache, admission
/// controller and quality monitor are exercised as-is.
TrafficReport RunTraffic(server::QueryService* service,
                         const TrafficConfig& config);

}  // namespace workload
}  // namespace robustqo

#endif  // ROBUSTQO_WORKLOAD_TRAFFIC_HARNESS_H_
