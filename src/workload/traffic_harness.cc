#include "workload/traffic_harness.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "perf/task_pool.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace robustqo {
namespace workload {

namespace {

/// Seeded exponential draw with mean `mean` (0 mean = no pause).
double ExpDraw(Rng* rng, double mean) {
  if (mean <= 0.0) return 0.0;
  double u = rng->NextDouble();
  if (u >= 1.0) u = 0.9999999999;
  return -mean * std::log(1.0 - u);
}

struct Client {
  size_t id = 0;
  server::SessionId session = 0;
  Rng rng{0};
  /// Simulated time of the client's next issue; infinity = done.
  double due = 0.0;
  /// Rotating cursor into the statement list.
  size_t cursor = 0;
  /// Rotating cursor into the write-statement list.
  size_t write_cursor = 0;
  /// Issues this client has resolved (not advanced by rejected retries, so
  /// the retried issue redraws the same read/write kind).
  uint64_t issue_ordinal = 0;
};

/// Random-access per-issue write decision: a pure hash of (client seed,
/// issue ordinal), so the kind never depends on scheduling or on how many
/// think-time draws the client's sequential stream has consumed.
bool IsWriteIssue(const TrafficConfig& config, size_t client_id,
                  uint64_t ordinal) {
  if (config.write_fraction <= 0.0 || config.write_statements.empty()) {
    return false;
  }
  const uint64_t h = perf::TaskSeed(
      config.base_seed ^ 0x9e3779b97f4a7c15ULL, client_id * 0x10001 + ordinal);
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 53-bit
  return u < config.write_fraction;
}

}  // namespace

std::string TrafficReport::Summary() const {
  const uint64_t lookups = plan_cache.hits + plan_cache.misses;
  std::string out = StrPrintf(
      "traffic: issued=%llu completed=%llu failed=%llu rejected=%llu "
      "batches=%llu\n",
      static_cast<unsigned long long>(issued),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(batches));
  out += StrPrintf("  duration=%.3f simulated s  throughput=%.6f qps\n",
                   duration_seconds, throughput_qps);
  if (writes_issued > 0) {
    out += StrPrintf(
        "  writes: issued=%llu committed=%llu rows=%llu commit_retries=%llu "
        "final_epoch=%llu\n",
        static_cast<unsigned long long>(writes_issued),
        static_cast<unsigned long long>(writes_committed),
        static_cast<unsigned long long>(write_rows),
        static_cast<unsigned long long>(commit_retries),
        static_cast<unsigned long long>(final_data_epoch));
  }
  out += StrPrintf(
      "  latency (simulated s): p50=%.6f p90=%.6f p99=%.6f max=%.6f n=%llu\n",
      latency.Quantile(0.5), latency.Quantile(0.9), latency.Quantile(0.99),
      latency_max_seconds, static_cast<unsigned long long>(latency.count()));
  out += StrPrintf(
      "  queue wait (simulated s): p50=%.6f p95=%.6f p99=%.6f n=%llu\n",
      queue_wait.Quantile(0.5), queue_wait.Quantile(0.95),
      queue_wait.Quantile(0.99),
      static_cast<unsigned long long>(queue_wait.count()));
  out += StrPrintf(
      "  service time (simulated s): p50=%.6f p95=%.6f p99=%.6f n=%llu\n",
      service_time.Quantile(0.5), service_time.Quantile(0.95),
      service_time.Quantile(0.99),
      static_cast<unsigned long long>(service_time.count()));
  out += StrPrintf(
      "  plan cache: hits=%llu misses=%llu hit_rate=%.4f evictions=%llu "
      "invalidated_epoch=%llu invalidated_drift=%llu\n",
      static_cast<unsigned long long>(plan_cache.hits),
      static_cast<unsigned long long>(plan_cache.misses),
      lookups == 0 ? 0.0 : static_cast<double>(plan_cache.hits) / lookups,
      static_cast<unsigned long long>(plan_cache.evictions_lru),
      static_cast<unsigned long long>(plan_cache.invalidated_epoch),
      static_cast<unsigned long long>(plan_cache.invalidated_drift));
  out += StrPrintf(
      "  admission: admitted=%llu waited=%llu rejected_queue_full=%llu "
      "rejected_fault=%llu peak_in_flight=%llu peak_queue=%llu\n",
      static_cast<unsigned long long>(admission.admitted),
      static_cast<unsigned long long>(admission.waited),
      static_cast<unsigned long long>(admission.rejected_queue_full),
      static_cast<unsigned long long>(admission.rejected_fault),
      static_cast<unsigned long long>(admission.peak_in_flight),
      static_cast<unsigned long long>(admission.peak_queue_depth));
  if (!slo_report.empty()) out += slo_report;
  return out;
}

TrafficReport RunTraffic(server::QueryService* service,
                         const TrafficConfig& config) {
  TrafficReport report;
  report.duration_seconds = config.duration_seconds;
  if (config.statements.empty() || config.clients == 0) return report;
  // The SLO monitor charges queueing and cold planning exactly as this
  // harness does, so its sketches and the report's agree.
  service->slo_monitor()->ConfigureCharging(config.wave_delay_seconds,
                                            config.plan_charge_seconds);
  const std::vector<double> thresholds =
      config.thresholds.empty() ? std::vector<double>{0.0} : config.thresholds;

  // Open one session per client and PREPARE every statement in it. The
  // per-session statement names are shared, so all clients at the same T%
  // funnel into the same plan-cache entries.
  std::vector<Client> clients(config.clients);
  for (size_t i = 0; i < clients.size(); ++i) {
    Client& client = clients[i];
    client.id = i;
    client.rng = Rng(perf::TaskSeed(config.base_seed, i));
    server::SessionOptions options;
    options.name = StrPrintf("client-%zu", i);
    options.confidence_threshold = thresholds[i % thresholds.size()];
    client.session = service->OpenSession(options);
    for (size_t s = 0; s < config.statements.size(); ++s) {
      service->Prepare(client.session, StrPrintf("q%zu", s),
                       config.statements[s]);
    }
    for (size_t s = 0; s < config.write_statements.size(); ++s) {
      service->Prepare(client.session, StrPrintf("w%zu", s),
                       config.write_statements[s]);
    }
    // Staggered first issue so the whole population doesn't arrive at t=0.
    const double mean = config.mode == TrafficMode::kClosedLoop
                            ? config.think_seconds
                            : config.interarrival_seconds;
    client.due = ExpDraw(&client.rng, mean);
    client.cursor = i % config.statements.size();
  }

  const double kDone = std::numeric_limits<double>::infinity();
  while (true) {
    // Next batch window: starts at the earliest pending issue.
    double window_start = kDone;
    for (const Client& client : clients) {
      window_start = std::min(window_start, client.due);
    }
    if (window_start > config.duration_seconds) break;
    const double window_end = window_start + config.batch_window_seconds;

    // All requests due inside the window, in (due, client id) order —
    // the deterministic arrival order of this batch.
    std::vector<size_t> batch;
    for (const Client& client : clients) {
      if (client.due < window_end && client.due <= config.duration_seconds) {
        batch.push_back(client.id);
      }
    }
    std::sort(batch.begin(), batch.end(), [&](size_t a, size_t b) {
      if (clients[a].due != clients[b].due) {
        return clients[a].due < clients[b].due;
      }
      return a < b;
    });

    std::vector<server::QueryRequest> requests;
    std::vector<bool> is_write;
    requests.reserve(batch.size());
    is_write.reserve(batch.size());
    for (size_t id : batch) {
      Client& client = clients[id];
      const bool write = IsWriteIssue(config, client.id, client.issue_ordinal);
      is_write.push_back(write);
      const std::string name =
          write ? StrPrintf("w%zu",
                            client.write_cursor % config.write_statements.size())
                : StrPrintf("q%zu", client.cursor % config.statements.size());
      requests.push_back(
          server::QueryRequest::Prepared(client.session, name));
      // Cursors and the issue ordinal only advance once the response is
      // known non-rejected, so a rejected retry re-issues the same
      // statement as the same kind.
    }
    std::vector<server::QueryResponse> responses =
        service->ExecuteBatch(requests);
    ++report.batches;

    for (size_t b = 0; b < batch.size(); ++b) {
      Client& client = clients[batch[b]];
      const server::QueryResponse& response = responses[b];
      ++report.issued;
      if (is_write[b]) ++report.writes_issued;
      const double next_mean = config.mode == TrafficMode::kClosedLoop
                                   ? config.think_seconds
                                   : config.interarrival_seconds;
      if (response.status.ok()) {
        // End-to-end simulated latency: queueing (admission waves) +
        // planning charge on a cold plan + execution. Writes skip the
        // planner entirely, so they carry no plan charge and report no
        // execution cost meter — their service component is queueing only.
        const double queue_wait = static_cast<double>(response.waves_waited) *
                                  config.wave_delay_seconds;
        const double exec_seconds =
            response.result.has_value() ? response.result->simulated_seconds
                                        : 0.0;
        const double plan_seconds =
            (response.cache_hit || response.dml.has_value())
                ? 0.0
                : config.plan_charge_seconds;
        const double service_seconds = exec_seconds + plan_seconds;
        const double latency = queue_wait + service_seconds;
        report.latency.Observe(latency);
        report.queue_wait.Observe(queue_wait);
        report.service_time.Observe(service_seconds);
        report.latency_max_seconds =
            std::max(report.latency_max_seconds, latency);
        ++report.completed;
        if (response.cache_hit) ++report.cache_hits;
        if (response.dml.has_value()) {
          ++report.writes_committed;
          report.write_rows += response.dml->rows_inserted +
                               response.dml->rows_deleted;
          if (response.dml->retry.attempts > 1) {
            report.commit_retries += response.dml->retry.attempts - 1;
          }
        }
        if (is_write[b]) {
          ++client.write_cursor;
        } else {
          ++client.cursor;
        }
        ++client.issue_ordinal;
        if (config.mode == TrafficMode::kClosedLoop) {
          client.due = client.due + latency + ExpDraw(&client.rng, next_mean);
        } else {
          client.due = client.due + ExpDraw(&client.rng, next_mean);
        }
      } else if (response.ticket == 0 &&
                 (response.status.code() == StatusCode::kResourceExhausted ||
                  response.status.code() == StatusCode::kUnavailable)) {
        // Typed admission rejection: the client backs off and retries the
        // same statement (cursors and ordinal untouched).
        ++report.rejected;
        client.due = client.due + config.retry_backoff_seconds;
      } else {
        ++report.failed;
        if (is_write[b]) {
          ++client.write_cursor;
        } else {
          ++client.cursor;
        }
        ++client.issue_ordinal;
        client.due = client.due + ExpDraw(&client.rng, next_mean);
      }
    }
  }

  for (Client& client : clients) service->CloseSession(client.session);
  report.admission = service->admission()->stats();
  report.plan_cache = service->plan_cache()->stats();
  report.final_data_epoch = service->database()->catalog()->data_epoch();
  report.throughput_qps =
      config.duration_seconds > 0.0
          ? static_cast<double>(report.completed) / config.duration_seconds
          : 0.0;
  if (service->slo_monitor()->global().observed > 0) {
    report.slo_report = service->slo_monitor()->ReportText();
  }
  if (service->flight_recorder()->size() > 0) {
    report.blackbox_json = service->flight_recorder()->ToJson();
  }
  if (service->provenance()->size() > 0) {
    report.provenance_json = service->provenance()->ToJson();
  }
  return report;
}

}  // namespace workload
}  // namespace robustqo
