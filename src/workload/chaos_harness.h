// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Chaos harness: sweeps seeded fault configurations over a set of queries
// and checks the system's core robustness contract — every query either
// completes with a verified-correct answer or fails with a clean typed
// Status. Nothing may crash, corrupt an answer, or return an untyped
// error. Each run arms a seed-derived random subset of the known fault
// sites (random fire modes and parameters) and, optionally, a random
// query-governor budget; runs are replayable bit-for-bit from
// (config.base_seed, run index) alone.

#ifndef ROBUSTQO_WORKLOAD_CHAOS_HARNESS_H_
#define ROBUSTQO_WORKLOAD_CHAOS_HARNESS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/plan_provenance.h"
#include "optimizer/query.h"

namespace robustqo {
namespace workload {

/// Knobs for one chaos sweep.
struct ChaosConfig {
  uint64_t base_seed = 1;
  /// Number of fault configurations to sweep (one query execution each).
  size_t runs = 200;
  /// Per-site probability that a run arms the site at all.
  double arm_probability = 0.5;
  /// Probability that a run also applies random governor limits.
  double governor_probability = 0.3;
  /// Enables parallel sweeps: builds one Database per worker thread (same
  /// data + statistics as the primary — each run is self-contained given
  /// (database state, seed), so outcomes are independent of which worker
  /// executes them). Used when perf::ThreadCount() > 1; without a factory
  /// the sweep runs sequentially on the primary database. The report is
  /// byte-identical at every thread count: runs are reduced in run-index
  /// order regardless of completion order.
  std::function<std::unique_ptr<core::Database>()> database_factory;
  /// Optional sink for the sweep's execution metrics. Every run records
  /// into its own registry and the registries are merged into this one in
  /// run-index order after the sweep, so the merged contents (and any
  /// export of them) do not depend on the thread count or on which worker
  /// claimed which run — including last-write-wins gauges.
  obs::MetricsRegistry* metrics = nullptr;
  /// When > 0, each run routes its query through a server::QueryService
  /// with this many open sessions (one seed-picked session issues the
  /// query), instead of calling the database directly. That puts the
  /// serving-layer fault sites — server.admission.enqueue and
  /// server.plan_cache.lookup — inside the chaos blast radius under the
  /// same contract: verified answer or clean typed failure.
  size_t sessions = 0;
  /// Optional black box for the service path (requires sessions > 0 and
  /// observability compiled in): every run's QueryService records request
  /// traces under this recorder's retention config, and each run's
  /// retained traces are absorbed here in run-index order, tagged
  /// "run=<i>", so the merged dump is byte-identical at any thread count.
  obs::FlightRecorder* flight_recorder = nullptr;
  /// Optional plan-choice observatory for the service path (requires
  /// sessions > 0): every run's QueryService files provenance and
  /// plan-diff records, absorbed here in run-index order tagged
  /// "run=<i>" — the merged `.whyplan` history is byte-identical at any
  /// thread count. Unlike the flight recorder this works with
  /// observability compiled out (the store is a plain data class).
  obs::PlanProvenanceStore* provenance = nullptr;
  /// When > 1 (service path only), each run's QueryService serves from a
  /// cluster of this many node replicas, putting the cluster fault sites
  /// — net.partition, net.lag and replica.stale_stats — inside the chaos
  /// blast radius under the same contract: verified answer or clean typed
  /// failure.
  size_t nodes = 1;
  /// Strict cluster mode for the service path: partitioned links and
  /// stale replicas fail requests typed instead of re-routing to local
  /// execution (exercises the typed-failure half of the contract).
  bool cluster_strict = false;
};

/// One run's outcome.
struct ChaosRunOutcome {
  uint64_t seed = 0;
  std::string armed;       ///< fault arming description (empty = none)
  bool executed = false;   ///< query returned rows
  bool verified = false;   ///< answer matched the fault-free reference
  StatusCode code = StatusCode::kOk;  ///< failure code when !executed
  std::string error;       ///< failure message when !executed
};

/// Aggregate results of a sweep.
struct ChaosReport {
  size_t runs = 0;
  size_t completed = 0;         ///< executed with the correct answer
  size_t failed_typed = 0;      ///< clean typed failure
  /// Contract violations — must be empty for a healthy system:
  /// completed-but-wrong answers and failures with an untyped code.
  std::vector<ChaosRunOutcome> violations;
  /// Failure counts by StatusCode name ("Unavailable", ...).
  std::map<std::string, size_t> failures_by_code;
  /// How often each fault site was armed across the sweep.
  std::map<std::string, size_t> armed_counts;

  bool ContractHolds() const { return violations.empty(); }
  std::string Summary() const;
};

/// Runs chaos sweeps against one database. The harness arms the database's
/// own fault injector and governor limits and restores both (disarmed /
/// unlimited) after every run.
class ChaosHarness {
 public:
  explicit ChaosHarness(core::Database* db) : db_(db) {}

  /// Sweeps `config.runs` seeded fault configurations round-robin over
  /// `queries`. Reference answers are computed fault-free up front; each
  /// chaotic execution must match them or fail typed.
  ChaosReport Run(const ChaosConfig& config,
                  const std::vector<opt::QuerySpec>& queries);

  /// Write-path sweep: seeded fault configurations round-robin over DML
  /// `statements` (INSERT/UPDATE/DELETE SQL), checking the atomic-commit
  /// contract — after every run, the visible checksum of every table
  /// equals either the pre-write state (the write failed with a clean
  /// typed Status and rolled back completely) or the fully-committed
  /// fault-free reference (the write succeeded). Anything in between —
  /// a partial apply surviving a failure, or a "successful" commit whose
  /// state differs from the reference — is a contract violation. Runs
  /// execute sequentially against the harness database; each run's
  /// committed effects are reverted (Catalog::RevertWritesAfter) before
  /// the next, so every run starts from identical state and the sweep is
  /// replayable from config.base_seed alone. In the report, `completed`
  /// counts verified commits and `failed_typed` counts clean full
  /// rollbacks. The parallel `database_factory`, `metrics` and
  /// `flight_recorder` knobs are ignored on this path.
  ChaosReport RunDml(const ChaosConfig& config,
                     const std::vector<std::string>& statements);

 private:
  core::Database* db_;
};

}  // namespace workload
}  // namespace robustqo

#endif  // ROBUSTQO_WORKLOAD_CHAOS_HARNESS_H_
