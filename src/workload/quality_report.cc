#include "workload/quality_report.h"

#include <algorithm>
#include <string>

namespace robustqo {
namespace workload {

namespace {

size_t CountTables(const std::string& tables) {
  if (tables.empty()) return 0;
  return static_cast<size_t>(
             std::count(tables.begin(), tables.end(), ',')) + 1;
}

}  // namespace

size_t RecordAnalyzedPlan(const core::AnalyzedPlan& plan,
                          obs::EstimationQualityMonitor* monitor) {
  if (monitor == nullptr) return 0;
  if (!plan.execution_error.empty()) return 0;

  // The executed actual (SPJ-core rows) corresponds to the estimate over
  // the FULL table set; per-table selectivity factors have no matching
  // actual of their own. Pick the fingerprinted row estimate covering the
  // most tables — "synopsis" when the covering synopsis was readable,
  // "independence" when the estimator composed per-table evidence.
  const core::PredicateReport* best = nullptr;
  size_t best_tables = 0;
  for (const core::PredicateReport& p : plan.predicates) {
    if (p.fingerprint == 0 || p.estimated_rows < 0.0) continue;
    const size_t n = CountTables(p.tables);
    if (best == nullptr || n > best_tables) {
      best = &p;
      best_tables = n;
    }
  }
  if (best == nullptr) return 0;

  obs::QualityObservation observation;
  observation.fingerprint = best->fingerprint;
  observation.label = "{" + best->tables + "} :: " + best->predicate;
  observation.estimated_rows = best->estimated_rows;
  observation.actual_rows = static_cast<double>(plan.actual_spj_rows);
  observation.confidence_threshold = best->confidence_threshold;
  monitor->Record(observation);
  return 1;
}

}  // namespace workload
}  // namespace robustqo
