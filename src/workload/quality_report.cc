#include "workload/quality_report.h"

#include <algorithm>
#include <string>

namespace robustqo {
namespace workload {

namespace {

size_t CountTables(const std::string& tables) {
  if (tables.empty()) return 0;
  return static_cast<size_t>(
             std::count(tables.begin(), tables.end(), ',')) + 1;
}

}  // namespace

size_t RecordAnalyzedPlan(const core::AnalyzedPlan& plan,
                          obs::EstimationQualityMonitor* monitor) {
  return RecordAnalyzedPlan(plan, monitor, nullptr, 0);
}

size_t RecordAnalyzedPlan(const core::AnalyzedPlan& plan,
                          obs::EstimationQualityMonitor* monitor,
                          learn::FeedbackStore* feedback,
                          uint64_t statistics_epoch) {
  if (monitor == nullptr && feedback == nullptr) return 0;
  if (!plan.execution_error.empty()) return 0;

  // The executed actual (SPJ-core rows) corresponds to the estimate over
  // the FULL table set; per-table selectivity factors have no matching
  // actual of their own. Pick the fingerprinted row estimate covering the
  // most tables — "synopsis" when the covering synopsis was readable,
  // "independence" when the estimator composed per-table evidence.
  const core::PredicateReport* best = nullptr;
  size_t best_tables = 0;
  for (const core::PredicateReport& p : plan.predicates) {
    if (p.fingerprint == 0 || p.estimated_rows < 0.0) continue;
    const size_t n = CountTables(p.tables);
    if (best == nullptr || n > best_tables) {
      best = &p;
      best_tables = n;
    }
  }
  if (best == nullptr) return 0;

  const std::string label = "{" + best->tables + "} :: " + best->predicate;
  if (feedback != nullptr && best->selectivity > 0.0) {
    // Recover the root row count the estimate was scaled by, then express
    // the executed actual in the same selectivity currency the estimator
    // consumes. est_rows = selectivity * root_rows, so root_rows falls out
    // of the report itself — no second catalog lookup, no skew if the
    // table changed since planning.
    const double root_rows = best->estimated_rows / best->selectivity;
    if (root_rows > 0.0) {
      const double actual_selectivity =
          static_cast<double>(plan.actual_spj_rows) / root_rows;
      // A fired feedback fault simply drops the observation.
      (void)feedback->Observe(best->fingerprint, label, best->selectivity,
                              actual_selectivity, statistics_epoch);
    }
  }
  if (monitor == nullptr) return 0;

  obs::QualityObservation observation;
  observation.fingerprint = best->fingerprint;
  observation.label = label;
  observation.estimated_rows = best->estimated_rows;
  observation.actual_rows = static_cast<double>(plan.actual_spj_rows);
  observation.confidence_threshold = best->confidence_threshold;
  monitor->Record(observation);
  return 1;
}

}  // namespace workload
}  // namespace robustqo
