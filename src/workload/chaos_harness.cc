#include "workload/chaos_harness.h"

#include <cmath>
#include <cstdlib>

#include "fault/fault_injector.h"
#include "fault/governor.h"
#include "perf/task_pool.h"
#include "server/query_service.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace robustqo {
namespace workload {

namespace {

// The failure codes the robustness contract allows: injected transient
// faults, governor trips and cooperative cancellation. Anything else
// (Internal, untyped parse errors, ...) is a contract violation under
// chaos, because the inputs were valid queries.
bool IsCleanFailure(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kCancelled;
}

// Seed-derived arming for one run. Returns a human-readable description.
std::string ArmRandomFaults(fault::FaultInjector* injector, Rng* rng,
                            double arm_probability,
                            std::vector<std::string>* armed_sites) {
  std::string description;
  for (const std::string& site : fault::KnownFaultSites()) {
    if (!rng->NextBernoulli(arm_probability)) continue;
    fault::FaultSpec spec;
    switch (rng->NextBounded(4)) {
      case 0:
        spec = fault::FaultSpec::Always();
        break;
      case 1:
        spec = fault::FaultSpec::FirstN(
            static_cast<uint64_t>(rng->NextInRange(1, 3)));
        break;
      case 2:
        spec = fault::FaultSpec::OnNth(
            static_cast<uint64_t>(rng->NextInRange(1, 50)));
        break;
      default:
        spec = fault::FaultSpec::Probability(rng->NextDoubleInRange(0.01, 0.5));
        break;
    }
    if (site == fault::sites::kOperatorAlloc) {
      spec.code = StatusCode::kResourceExhausted;
    }
    if (site == fault::sites::kClockStall) {
      spec.stall_seconds = rng->NextDoubleInRange(0.5, 50.0);
    }
    // Wire stalls are per-link and fire up to once per node, so each one
    // charges far less than an exec clock stall.
    if (site == fault::sites::kNetLag) {
      spec.stall_seconds = rng->NextDoubleInRange(0.001, 1.0);
    }
    injector->Arm(site, spec);
    armed_sites->push_back(site);
    if (!description.empty()) description += " ";
    description += site + "=" + spec.ToString();
  }
  return description;
}

fault::GovernorLimits RandomGovernorLimits(Rng* rng) {
  fault::GovernorLimits limits;
  // Log-uniform ranges straddling what the scenario queries actually use,
  // so some runs trip and others squeak through.
  limits.memory_limit_bytes = 1ull << rng->NextInRange(14, 26);
  limits.row_limit = 1ull << rng->NextInRange(6, 24);
  if (rng->NextBernoulli(0.5)) {
    limits.time_limit_seconds = rng->NextDoubleInRange(0.001, 30.0);
  }
  return limits;
}

// Reference fingerprint of a result for cross-run verification.
struct Reference {
  uint64_t num_rows = 0;
  bool numeric = false;
  double first_cell = 0.0;
  std::string first_cell_text;
};

Reference Fingerprint(const storage::Table& rows) {
  Reference ref;
  ref.num_rows = rows.num_rows();
  if (rows.num_rows() > 0 && rows.schema().num_columns() > 0) {
    const storage::Value v = rows.ValueAt(0, 0);
    if (v.type() == storage::DataType::kString) {
      ref.first_cell_text = v.AsString();
    } else {
      ref.numeric = true;
      ref.first_cell = v.NumericValue();
    }
  }
  return ref;
}

// Different (degraded) plans may reassociate floating-point aggregation,
// so numeric answers match within a tight relative tolerance, not
// bit-for-bit.
bool Matches(const Reference& expected, const Reference& actual) {
  if (expected.num_rows != actual.num_rows) return false;
  if (expected.num_rows == 0) return true;
  if (expected.numeric != actual.numeric) return false;
  if (!expected.numeric) {
    return expected.first_cell_text == actual.first_cell_text;
  }
  const double tolerance =
      1e-6 * std::max(1.0, std::abs(expected.first_cell));
  return std::abs(expected.first_cell - actual.first_cell) <= tolerance;
}

}  // namespace

std::string ChaosReport::Summary() const {
  std::string out = StrPrintf(
      "chaos: %zu runs, %zu completed correct, %zu failed typed, "
      "%zu violations\n",
      runs, completed, failed_typed, violations.size());
  for (const auto& [code, count] : failures_by_code) {
    out += StrPrintf("  failure %-18s %zu\n", code.c_str(), count);
  }
  for (const auto& [site, count] : armed_counts) {
    out += StrPrintf("  armed   %-22s %zu\n", site.c_str(), count);
  }
  for (const ChaosRunOutcome& v : violations) {
    out += StrPrintf("  VIOLATION seed=%llu [%s] %s\n",
                     static_cast<unsigned long long>(v.seed),
                     v.armed.c_str(),
                     v.executed ? "wrong answer" : v.error.c_str());
  }
  return out;
}

namespace {

// Everything one run produces; aggregated into the report sequentially, in
// run-index order, so the report does not depend on completion order.
struct RunResult {
  ChaosRunOutcome outcome;
  std::vector<std::string> armed_sites;
  /// The run's retained request traces (service path with a flight
  /// recorder configured); absorbed into the sweep recorder in run order.
  std::unique_ptr<obs::FlightRecorder> flight;
  /// The run's plan provenance records (service path with an observatory
  /// configured); absorbed into the sweep store in run order.
  std::unique_ptr<obs::PlanProvenanceStore> provenance;
};

// One self-contained chaos run against `db`: every input is derived from
// (config, run index) and the database is restored (disarmed, unlimited)
// before returning, so the result is the same whichever thread or Database
// replica executes it.
RunResult ExecuteOneRun(core::Database* db, const ChaosConfig& config,
                        const std::vector<opt::QuerySpec>& queries,
                        const std::vector<Reference>& references, size_t i) {
  const uint64_t seed = config.base_seed + i;
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  const size_t qi = i % queries.size();

  db->fault_injector()->Reseed(seed);
  RunResult run;
  run.outcome.seed = seed;
  run.outcome.armed = ArmRandomFaults(db->fault_injector(), &rng,
                                      config.arm_probability,
                                      &run.armed_sites);
  fault::GovernorLimits limits;
  const bool governed = rng.NextBernoulli(config.governor_probability);
  if (governed) limits = RandomGovernorLimits(&rng);

  if (config.sessions > 0) {
    // Service path: admission control + plan cache sit between the run and
    // the executor, so server.admission.enqueue / server.plan_cache.lookup
    // faults actually fire. The governor budget travels as session limits.
    server::ServerConfig server_config;
    server_config.seed = seed;
    server_config.cluster.nodes = config.nodes;
    server_config.cluster.strict = config.cluster_strict;
    if (config.flight_recorder != nullptr) {
      server_config.flight_recorder = config.flight_recorder->config();
      server_config.flight_recorder.enabled = true;
    }
    if (config.provenance != nullptr) {
      server_config.provenance = config.provenance->config();
      server_config.provenance.enabled = true;
    }
    server::QueryService service(db, server_config);
    service.set_metrics(db->metrics());
    std::vector<server::SessionId> ids;
    ids.reserve(config.sessions);
    for (size_t s = 0; s < config.sessions; ++s) {
      server::SessionOptions options;
      options.name = StrPrintf("chaos-%zu", s);
      if (governed) options.governor_limits = limits;
      ids.push_back(service.OpenSession(options));
    }
    const size_t pick = static_cast<size_t>(rng.NextBounded(ids.size()));
    server::QueryResponse response =
        service.ExecuteSpec(ids[pick], queries[qi]);
    if (response.status.ok()) {
      run.outcome.executed = true;
      run.outcome.verified =
          Matches(references[qi], Fingerprint(response.result->rows));
    } else {
      run.outcome.code = response.status.code();
      run.outcome.error = response.status.ToString();
    }
    if (config.flight_recorder != nullptr &&
        service.flight_recorder()->size() > 0) {
      run.flight = std::make_unique<obs::FlightRecorder>(
          std::move(*service.flight_recorder()));
    }
    if (config.provenance != nullptr && service.provenance()->size() > 0) {
      run.provenance = std::make_unique<obs::PlanProvenanceStore>(
          std::move(*service.provenance()));
    }
  } else {
    if (governed) db->SetGovernorLimits(limits);
    Result<core::ExecutionResult> result =
        db->Execute(queries[qi], core::EstimatorKind::kRobustSample);
    if (result.ok()) {
      run.outcome.executed = true;
      run.outcome.verified =
          Matches(references[qi], Fingerprint(result.value().rows));
    } else {
      run.outcome.code = result.status().code();
      run.outcome.error = result.status().ToString();
    }
  }

  db->fault_injector()->DisarmAll();
  db->SetGovernorLimits({});
  return run;
}

}  // namespace

namespace {

// Visible checksum of every table, keyed by name — the state fingerprint
// the atomic-commit contract compares.
std::map<std::string, uint64_t> CatalogChecksums(
    const storage::Catalog& catalog) {
  std::map<std::string, uint64_t> sums;
  for (const std::string& name : catalog.TableNames()) {
    sums[name] = catalog.GetTable(name)->VisibleChecksum();
  }
  return sums;
}

}  // namespace

ChaosReport ChaosHarness::RunDml(const ChaosConfig& config,
                                 const std::vector<std::string>& statements) {
  ChaosReport report;
  if (statements.empty()) return report;

  db_->fault_injector()->DisarmAll();
  db_->SetGovernorLimits({});
  const uint64_t pre_epoch = db_->catalog()->data_epoch();
  const std::map<std::string, uint64_t> pre_sums =
      CatalogChecksums(*db_->catalog());

  // Fault-free committed reference per statement: execute it cleanly,
  // fingerprint the committed state, then revert so every statement (and
  // later every chaotic run) starts from the same base state.
  std::vector<std::map<std::string, uint64_t>> committed_sums;
  committed_sums.reserve(statements.size());
  for (const std::string& statement : statements) {
    Result<core::StatementResult> clean = db_->ExecuteStatement(statement);
    RQO_CHECK_MSG(clean.ok() && clean.value().dml.has_value(),
                  "chaos DML reference execution failed");
    committed_sums.push_back(CatalogChecksums(*db_->catalog()));
    db_->catalog()->RevertWritesAfter(pre_epoch);
    RQO_CHECK_MSG(CatalogChecksums(*db_->catalog()) == pre_sums,
                  "chaos DML revert did not restore the base state");
  }

  for (size_t i = 0; i < config.runs; ++i) {
    const uint64_t seed = config.base_seed + i;
    Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
    const size_t qi = i % statements.size();

    db_->fault_injector()->Reseed(seed);
    ChaosRunOutcome outcome;
    outcome.seed = seed;
    std::vector<std::string> armed_sites;
    outcome.armed = ArmRandomFaults(db_->fault_injector(), &rng,
                                    config.arm_probability, &armed_sites);
    if (rng.NextBernoulli(config.governor_probability)) {
      db_->SetGovernorLimits(RandomGovernorLimits(&rng));
    }

    Result<core::StatementResult> result =
        db_->ExecuteStatement(statements[qi]);
    const std::map<std::string, uint64_t> after =
        CatalogChecksums(*db_->catalog());

    ++report.runs;
    for (const std::string& site : armed_sites) ++report.armed_counts[site];
    if (result.ok()) {
      outcome.executed = true;
      outcome.verified = (after == committed_sums[qi]);
      if (outcome.verified) {
        ++report.completed;
      } else {
        outcome.error = "committed state differs from reference";
        report.violations.push_back(outcome);
      }
    } else {
      outcome.code = result.status().code();
      outcome.error = result.status().ToString();
      ++report.failures_by_code[StatusCodeName(outcome.code)];
      const bool rolled_back = (after == pre_sums);
      if (IsCleanFailure(outcome.code) && rolled_back) {
        ++report.failed_typed;
      } else {
        if (!rolled_back) {
          outcome.error += " [rollback incomplete: state differs from "
                           "pre-write]";
        }
        report.violations.push_back(outcome);
      }
    }

    db_->fault_injector()->DisarmAll();
    db_->SetGovernorLimits({});
    db_->catalog()->RevertWritesAfter(pre_epoch);
  }
  return report;
}

ChaosReport ChaosHarness::Run(const ChaosConfig& config,
                              const std::vector<opt::QuerySpec>& queries) {
  ChaosReport report;
  if (queries.empty()) return report;

  // Fault-free reference answers, one per query.
  db_->fault_injector()->DisarmAll();
  db_->SetGovernorLimits({});
  std::vector<Reference> references;
  references.reserve(queries.size());
  for (const opt::QuerySpec& query : queries) {
    Result<core::ExecutionResult> clean =
        db_->Execute(query, core::EstimatorKind::kRobustSample);
    RQO_CHECK_MSG(clean.ok(), "chaos reference execution failed");
    references.push_back(Fingerprint(clean.value().rows));
  }

  std::vector<RunResult> results(config.runs);
  // Per-run metrics registries: each run records into its own registry and
  // the registries are merged in run-index order below. Counter sums,
  // histogram/sketch merges and gauge maxima are all independent of how
  // runs were partitioned across workers, so the merged registry — and any
  // export rendered from it — is byte-identical at every thread count. (A
  // registry shared across runs would leak scheduling through
  // last-write-wins gauges like governor.peak_memory_bytes.)
  std::vector<std::unique_ptr<obs::MetricsRegistry>> run_metrics;
  if (config.metrics != nullptr) {
    run_metrics.resize(config.runs);
    for (auto& registry : run_metrics) {
      registry = std::make_unique<obs::MetricsRegistry>();
    }
  }
  perf::TaskPool* pool = perf::TaskPool::Global();
  if (config.database_factory != nullptr && pool->threads() > 1 &&
      config.runs > 1) {
    // Parallel sweep: one Database replica per worker (built lazily the
    // first time the worker claims a run), each run writing only its own
    // results slot.
    std::vector<std::unique_ptr<core::Database>> worker_dbs(pool->threads());
    pool->ParallelForWorker(config.runs, [&](unsigned worker, size_t i) {
      if (worker_dbs[worker] == nullptr) {
        worker_dbs[worker] = config.database_factory();
      }
      if (config.metrics != nullptr) {
        worker_dbs[worker]->SetMetrics(run_metrics[i].get());
      }
      results[i] =
          ExecuteOneRun(worker_dbs[worker].get(), config, queries,
                        references, i);
    });
  } else {
    obs::MetricsRegistry* saved = db_->metrics();
    for (size_t i = 0; i < config.runs; ++i) {
      if (config.metrics != nullptr) db_->SetMetrics(run_metrics[i].get());
      results[i] = ExecuteOneRun(db_, config, queries, references, i);
    }
    if (config.metrics != nullptr) db_->SetMetrics(saved);
  }
  for (const auto& registry : run_metrics) {
    config.metrics->MergeFrom(*registry);
  }

  // Ordered reduction: identical report at every thread count.
  for (size_t i = 0; i < results.size(); ++i) {
    RunResult& run = results[i];
    if (config.flight_recorder != nullptr && run.flight != nullptr) {
      config.flight_recorder->Absorb(std::move(*run.flight),
                                     StrPrintf("run=%zu", i));
      run.flight.reset();
    }
    if (config.provenance != nullptr && run.provenance != nullptr) {
      config.provenance->Absorb(std::move(*run.provenance),
                                StrPrintf("run=%zu", i));
      run.provenance.reset();
    }
    ++report.runs;
    for (const std::string& site : run.armed_sites) {
      ++report.armed_counts[site];
    }
    if (run.outcome.executed) {
      if (run.outcome.verified) {
        ++report.completed;
      } else {
        report.violations.push_back(run.outcome);
      }
    } else {
      ++report.failures_by_code[StatusCodeName(run.outcome.code)];
      if (IsCleanFailure(run.outcome.code)) {
        ++report.failed_typed;
      } else {
        report.violations.push_back(run.outcome);
      }
    }
  }
  return report;
}

}  // namespace workload
}  // namespace robustqo
