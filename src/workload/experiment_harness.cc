#include "workload/experiment_harness.h"

#include <cmath>

#include "core/report.h"
#include "obs/obs.h"
#include "stats_math/descriptive.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace robustqo {
namespace workload {

std::vector<EstimatorSetting> PaperSettings() {
  return {
      {"T=5%", core::EstimatorKind::kRobustSample, 0.05},
      {"T=20%", core::EstimatorKind::kRobustSample, 0.20},
      {"T=50%", core::EstimatorKind::kRobustSample, 0.50},
      {"T=80%", core::EstimatorKind::kRobustSample, 0.80},
      {"T=95%", core::EstimatorKind::kRobustSample, 0.95},
      {"Histograms", core::EstimatorKind::kHistogram, 0.0},
  };
}

SweepResult QuerySweepExperiment::Run(const SweepConfig& config) {
  RQO_CHECK(!config.params.empty());
  RQO_CHECK(config.repetitions >= 1);

  SweepResult result;
  result.params = config.params;
  result.true_selectivity.reserve(config.params.size());
  for (double p : config.params) result.true_selectivity.push_back(probe_(p));
  result.mean_by_point.resize(config.params.size());

  // Histograms depend only on the data — build once.
  db_->statistics()->BuildAllHistograms(config.statistics.histogram_buckets);

  obs::Counter* metric_plans = nullptr;
  obs::Counter* metric_execs = nullptr;
  obs::Counter* metric_cache_hits = nullptr;
  RQO_IF_OBS(config.metrics) {
    metric_plans = config.metrics->GetCounter("harness.plans");
    metric_execs = config.metrics->GetCounter("harness.executions");
    metric_cache_hits = config.metrics->GetCounter("harness.exec_cache_hits");
  }

  // Deterministic execution cache: (plan label, param index) -> result.
  // Plans with the same structure and parameter execute identically, so
  // both the simulated time and the SPJ result size are cacheable.
  struct CachedRun {
    double seconds = 0.0;
    uint64_t spj_rows = 0;
  };
  std::map<std::string, CachedRun> exec_cache;
  // First-cell answer per parameter, for cross-plan verification.
  std::map<size_t, double> answers;
  auto execute_cached = [&](const opt::PlannedQuery& plan,
                            size_t param_idx) -> CachedRun {
    const std::string key =
        plan.label + "#" + StrPrintf("%zu", param_idx);
    auto it = exec_cache.find(key);
    if (it != exec_cache.end()) {
      RQO_IF_OBS(metric_cache_hits) metric_cache_hits->Increment();
      return it->second;
    }
    // The harness runs with no faults armed and no governor limits, so an
    // execution failure here is a programming error, not a robustness event.
    core::ExecutionResult run = db_->ExecutePlan(plan).value();
    RQO_IF_OBS(metric_execs) metric_execs->Increment();
    if (config.verify_answers && run.rows.num_rows() > 0) {
      const double answer = run.rows.ValueAt(0, 0).NumericValue();
      auto [ans_it, inserted] = answers.emplace(param_idx, answer);
      RQO_CHECK_MSG(
          inserted || std::abs(ans_it->second - answer) <=
                          1e-6 * std::max(1.0, std::abs(answer)),
          ("plan " + plan.label + " changed the query answer").c_str());
    }
    const CachedRun cached{run.simulated_seconds, run.spj_rows};
    exec_cache.emplace(key, cached);
    return cached;
  };

  // times[setting][param] -> samples across repetitions.
  std::map<std::string, std::vector<std::vector<double>>> times;
  for (const EstimatorSetting& s : config.settings) {
    times[s.label].resize(config.params.size());
  }
  std::map<std::string, std::map<std::string, int>> plan_counts;
  // Per-setting SPJ-cardinality q-errors across all (param, rep) plans.
  std::map<std::string, std::vector<double>> q_errors;

  for (size_t rep = 0; rep < config.repetitions; ++rep) {
    stats::StatisticsConfig stat_cfg = config.statistics;
    stat_cfg.seed = config.statistics.seed + rep * 7919;
    db_->statistics()->BuildAllSamples(stat_cfg);

    for (size_t pi = 0; pi < config.params.size(); ++pi) {
      const opt::QuerySpec query = factory_(config.params[pi]);
      for (const EstimatorSetting& setting : config.settings) {
        const bool is_histogram =
            setting.kind == core::EstimatorKind::kHistogram;
        // Histograms never change across repetitions; evaluate once.
        if (is_histogram && rep > 0) continue;
        opt::OptimizerOptions options;
        if (!is_histogram) {
          options.confidence_threshold_hint = setting.confidence_threshold;
        }
        Result<opt::PlannedQuery> plan = db_->Plan(query, setting.kind,
                                                   options);
        RQO_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
        RQO_IF_OBS(metric_plans) metric_plans->Increment();
        const CachedRun run = execute_cached(plan.value(), pi);
        times[setting.label][pi].push_back(run.seconds);
        q_errors[setting.label].push_back(
            core::QError(plan.value().estimated_spj_rows,
                         static_cast<double>(run.spj_rows)));
        ++plan_counts[setting.label][plan.value().label];
      }
    }
  }

  for (const EstimatorSetting& setting : config.settings) {
    std::vector<double> all;
    for (size_t pi = 0; pi < config.params.size(); ++pi) {
      const std::vector<double>& samples = times[setting.label][pi];
      RQO_CHECK(!samples.empty());
      result.mean_by_point[pi][setting.label] = math::Mean(samples);
      // Histogram plans are deterministic: weight each point equally by
      // replicating its single measurement (keeps aggregates comparable).
      if (setting.kind == core::EstimatorKind::kHistogram) {
        for (size_t r = 0; r < config.repetitions; ++r) {
          all.push_back(samples[0]);
        }
      } else {
        all.insert(all.end(), samples.begin(), samples.end());
      }
    }
    SettingAggregate agg;
    agg.mean_seconds = math::Mean(all);
    agg.std_dev_seconds = math::PopulationStdDev(all);
    agg.p95_seconds = math::Percentile(all, 0.95);
    const core::QErrorSummary q =
        core::SummarizeQErrors(q_errors[setting.label]);
    agg.max_q_error = q.max_q;
    agg.median_q_error = q.median_q;
    agg.plan_counts = plan_counts[setting.label];
    result.overall[setting.label] = agg;
  }
  return result;
}

std::string FormatSweepResult(const SweepResult& result,
                              const std::string& title) {
  std::string out = "=== " + title + " ===\n\n";
  out += "-- (a) selectivity vs average execution time (simulated s) --\n";
  out += StrPrintf("%-12s", "sel%");
  std::vector<std::string> labels;
  for (const auto& [label, agg] : result.overall) labels.push_back(label);
  // Keep the natural T-order if present.
  std::vector<std::string> ordered;
  for (const char* want :
       {"T=5%", "T=20%", "T=50%", "T=80%", "T=95%", "Histograms"}) {
    for (const auto& l : labels) {
      if (l == want) ordered.push_back(l);
    }
  }
  for (const auto& l : labels) {
    bool seen = false;
    for (const auto& o : ordered) {
      if (o == l) seen = true;
    }
    if (!seen) ordered.push_back(l);
  }
  for (const auto& l : ordered) out += StrPrintf("%12s", l.c_str());
  out += "\n";
  for (size_t pi = 0; pi < result.params.size(); ++pi) {
    out += StrPrintf("%-12.4f", result.true_selectivity[pi] * 100.0);
    for (const auto& l : ordered) {
      auto it = result.mean_by_point[pi].find(l);
      out += it == result.mean_by_point[pi].end()
                 ? StrPrintf("%12s", "-")
                 : StrPrintf("%12.3f", it->second);
    }
    out += "\n";
  }
  out += "\n-- (b) performance vs predictability --\n";
  out += StrPrintf("%-12s %14s %14s %12s %9s %9s  %s\n", "setting",
                   "avg time (s)", "std dev (s)", "p95 (s)", "maxQ", "medQ",
                   "plans chosen");
  for (const auto& l : ordered) {
    const SettingAggregate& agg = result.overall.at(l);
    std::vector<std::string> plans;
    for (const auto& [plan, count] : agg.plan_counts) {
      plans.push_back(StrPrintf("%s x%d", plan.c_str(), count));
    }
    out += StrPrintf("%-12s %14.3f %14.3f %12.3f %9.2f %9.2f  %s\n",
                     l.c_str(), agg.mean_seconds, agg.std_dev_seconds,
                     agg.p95_seconds, agg.max_q_error, agg.median_q_error,
                     StrJoin(plans, "; ").c_str());
  }
  return out;
}

}  // namespace workload
}  // namespace robustqo
