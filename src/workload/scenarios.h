// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// The paper's three experiment scenarios (Section 6.2) as parameterized
// query templates. Each scenario exposes:
//   * MakeQuery(param)  — the query at one setting of the free parameter;
//   * TrueSelectivity() — the exact selectivity at that setting, measured
//     against the base data (the experiments' x-axis);
//   * DefaultParams()   — a sweep covering the paper's selectivity range.

#ifndef ROBUSTQO_WORKLOAD_SCENARIOS_H_
#define ROBUSTQO_WORKLOAD_SCENARIOS_H_

#include <cstdint>
#include <vector>

#include "optimizer/query.h"
#include "storage/catalog.h"

namespace robustqo {
namespace workload {

// ---- Experiment 1 (Section 6.2.1): single-table lineitem query ----
//
// SELECT SUM(l_extendedprice) FROM lineitem
// WHERE l_shipdate BETWEEN start AND start+window
//   AND l_receiptdate BETWEEN start+offset AND start+offset+window
//
// The offset steers the overlap between the two (individually
// constant-selectivity) date ranges: receipt dates trail ship dates by
// 1-30 days, so the joint selectivity falls from ~2% to 0 as the offset
// grows, while each marginal never changes.

struct SingleTableScenario {
  /// Start of the ship-date window (default 1997-07-01).
  int64_t window_start;
  /// Window width in days (inclusive range spans window_days days).
  int64_t window_days = 60;

  SingleTableScenario();

  opt::QuerySpec MakeQuery(double offset_days) const;

  /// Exact fraction of lineitem rows satisfying both predicates.
  double TrueSelectivity(const storage::Catalog& catalog,
                         double offset_days) const;

  /// Offsets sweeping the paper's 0 - 0.6% selectivity range.
  static std::vector<double> DefaultParams();
};

// ---- Experiment 2 (Section 6.2.2): three-table join ----
//
// SELECT SUM(l_extendedprice) FROM lineitem, orders, part
// WHERE <FK joins> AND p_c1 BETWEEN 50 AND 60
//   AND p_c2 BETWEEN 50+offset AND 60+offset
//
// p_c2 tracks p_c1 within a 5-unit window (injected by the generator), so
// the joint selectivity of the two part predicates collapses from ~7.5%
// to 0 as the offset passes the correlation window, marginals constant.

struct ThreeTableJoinScenario {
  double band_lo = 50.0;
  double band_width = 10.0;

  opt::QuerySpec MakeQuery(double offset) const;

  /// Exact fraction of part rows satisfying the part predicates.
  double TrueSelectivity(const storage::Catalog& catalog,
                         double offset) const;

  /// Offsets covering the paper's 0 - 0.5% part-selectivity range (plus a
  /// few higher-selectivity points for context).
  static std::vector<double> DefaultParams();
};

// ---- Experiment 3 (Section 6.2.3): four-table star join ----
//
// SELECT SUM(f_m1), AVG(f_m2) FROM fact, dim1, dim2, dim3
// WHERE <FK joins> AND d1_attr = v AND d2_attr = (v+offset)%groups
//   AND d3_attr = (v+offset)%groups
//
// Each filter selects exactly one dimension group (10%); the offset picks
// which groups align, steering the joining fact fraction from ~5% down to
// ~0.01% while AVI forever answers 0.1%.

struct StarJoinScenario {
  uint64_t groups = 10;
  int64_t base_value = 3;  ///< v; any group works

  opt::QuerySpec MakeQuery(double offset) const;

  /// Exact fraction of fact rows joining all three filtered dimensions.
  double TrueSelectivity(const storage::Catalog& catalog,
                         double offset) const;

  /// Offsets 0..groups-1 (each is one sweep point).
  static std::vector<double> DefaultParams();
};

}  // namespace workload
}  // namespace robustqo

#endif  // ROBUSTQO_WORKLOAD_SCENARIOS_H_
