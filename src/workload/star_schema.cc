#include "workload/star_schema.h"

#include <cmath>
#include <memory>
#include <vector>

#include "util/macros.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace robustqo {
namespace workload {

using storage::Catalog;
using storage::ColumnDef;
using storage::DataType;
using storage::Schema;
using storage::Table;

namespace {

// P(e = t) for t in [0, groups) proportional to decay^t.
std::vector<double> OffsetWeights(const StarSchemaConfig& config) {
  std::vector<double> w(config.groups);
  double total = 0.0;
  double cur = 1.0;
  for (uint64_t t = 0; t < config.groups; ++t) {
    w[t] = cur;
    total += cur;
    cur *= config.offset_decay;
  }
  for (double& x : w) x /= total;
  return w;
}

void BuildDim(Catalog* catalog, uint64_t which,
              const StarSchemaConfig& config, Rng* rng) {
  const std::string name =
      StrPrintf("dim%llu", static_cast<unsigned long long>(which));
  const std::string prefix =
      StrPrintf("d%llu", static_cast<unsigned long long>(which));
  auto table = std::make_unique<Table>(
      name, Schema({{prefix + "_id", DataType::kInt64},
                    {prefix + "_attr", DataType::kInt64},
                    {prefix + "_weight", DataType::kDouble},
                    {prefix + "_label", DataType::kString}}));
  const uint64_t per_group = config.dim_rows / config.groups;
  RQO_CHECK_MSG(per_group * config.groups == config.dim_rows,
                "dim_rows must be a multiple of groups");
  for (uint64_t i = 1; i <= config.dim_rows; ++i) {
    table->mutable_column(0)->AppendInt64(static_cast<int64_t>(i));
    table->mutable_column(1)->AppendInt64(
        static_cast<int64_t>((i - 1) / per_group));
    table->mutable_column(2)->AppendDouble(rng->NextDoubleInRange(0.0, 1.0));
    table->mutable_column(3)->AppendString(
        StrPrintf("%s-member-%llu", prefix.c_str(),
                  static_cast<unsigned long long>(i)));
  }
  table->FinalizeBulkLoad();
  RQO_CHECK(catalog->AddTable(std::move(table)).ok());
}

}  // namespace

double ExpectedJoinFraction(const StarSchemaConfig& config, uint64_t offset) {
  RQO_CHECK(offset < config.groups);
  return OffsetWeights(config)[offset] / static_cast<double>(config.groups);
}

Status LoadStarSchema(Catalog* catalog, const StarSchemaConfig& config) {
  if (catalog->GetTable("fact") != nullptr) {
    return Status::AlreadyExists("star schema already loaded");
  }
  if (config.num_dims < 1) {
    return Status::InvalidArgument("num_dims must be at least 1");
  }
  Rng rng(config.seed);
  for (uint64_t d = 1; d <= config.num_dims; ++d) {
    Rng dim_rng = rng.Fork();
    BuildDim(catalog, d, config, &dim_rng);
  }

  const std::vector<double> weights = OffsetWeights(config);
  const uint64_t per_group = config.dim_rows / config.groups;
  std::vector<ColumnDef> fact_columns{{"f_id", DataType::kInt64}};
  for (uint64_t d = 1; d <= config.num_dims; ++d) {
    fact_columns.push_back(
        {StrPrintf("f_d%llu", static_cast<unsigned long long>(d)),
         DataType::kInt64});
  }
  fact_columns.push_back({"f_m1", DataType::kDouble});
  fact_columns.push_back({"f_m2", DataType::kDouble});
  auto fact = std::make_unique<Table>("fact", Schema(fact_columns));
  fact->Reserve(config.fact_rows);
  Rng fact_rng = rng.Fork();
  auto id_in_group = [&](uint64_t group) -> int64_t {
    return static_cast<int64_t>(group * per_group +
                                fact_rng.NextBounded(per_group) + 1);
  };
  for (uint64_t i = 1; i <= config.fact_rows; ++i) {
    const uint64_t g = fact_rng.NextBounded(config.groups);
    // Offset drawn from the decaying distribution; the SAME offset applies
    // to every dimension beyond the first so aligned filters compound
    // instead of multiplying.
    double u = fact_rng.NextDouble();
    uint64_t e = 0;
    while (e + 1 < config.groups && u >= weights[e]) {
      u -= weights[e];
      ++e;
    }
    const uint64_t g_rest = (g + e) % config.groups;
    size_t col = 0;
    fact->mutable_column(col++)->AppendInt64(static_cast<int64_t>(i));
    fact->mutable_column(col++)->AppendInt64(id_in_group(g));
    for (uint64_t d = 2; d <= config.num_dims; ++d) {
      fact->mutable_column(col++)->AppendInt64(id_in_group(g_rest));
    }
    fact->mutable_column(col++)->AppendDouble(
        fact_rng.NextDoubleInRange(0.0, 1000.0));
    fact->mutable_column(col)->AppendDouble(
        fact_rng.NextDoubleInRange(0.0, 10.0));
  }
  fact->FinalizeBulkLoad();
  RQO_RETURN_NOT_OK(catalog->AddTable(std::move(fact)));

  RQO_RETURN_NOT_OK(catalog->SetPrimaryKey("fact", "f_id"));
  for (uint64_t d = 1; d <= config.num_dims; ++d) {
    const std::string dim =
        StrPrintf("dim%llu", static_cast<unsigned long long>(d));
    const std::string pk =
        StrPrintf("d%llu_id", static_cast<unsigned long long>(d));
    const std::string fk =
        StrPrintf("f_d%llu", static_cast<unsigned long long>(d));
    RQO_RETURN_NOT_OK(catalog->SetPrimaryKey(dim, pk));
    RQO_RETURN_NOT_OK(catalog->AddForeignKey({"fact", fk, dim, pk}));
  }
  RQO_RETURN_NOT_OK(catalog->SetClusteringColumn("fact", "f_id"));
  if (config.build_indexes) {
    for (uint64_t d = 1; d <= config.num_dims; ++d) {
      RQO_RETURN_NOT_OK(catalog->BuildIndex(
          "fact", StrPrintf("f_d%llu", static_cast<unsigned long long>(d))));
    }
  }
  return Status::OK();
}

}  // namespace workload
}  // namespace robustqo
