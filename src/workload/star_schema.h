// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Synthetic data-warehouse star schema (paper Experiment 3, Section 6.2.3):
// a fact table with foreign keys to three small dimension tables. The fact
// rows' dimension-group assignments are handcrafted so that, by choosing
// *which* (always 10%-selective) dimension values a query filters on, the
// fraction of fact rows that join successfully can be steered across
// orders of magnitude — while a histogram/AVI estimator always computes
// 10% x 10% x 10% = 0.1%.
//
// Construction: each dimension has `groups` equal-size attribute groups.
// Each fact row draws a base group g uniformly and an offset e from a
// geometric-like distribution P(e = t) proportional to decay^t; its three
// FK targets land in dimension groups (g, g+e, g+e) (mod groups). Filtering
// the dimensions on attribute values (v, v+d, v+d) therefore selects a
// fact fraction of P(e = d) / groups — large for d = 0, vanishing for
// d = groups-1 — with every individual filter still matching exactly
// 1/groups of its dimension.

#ifndef ROBUSTQO_WORKLOAD_STAR_SCHEMA_H_
#define ROBUSTQO_WORKLOAD_STAR_SCHEMA_H_

#include <cstdint>

#include "storage/catalog.h"
#include "util/status.h"

namespace robustqo {
namespace workload {

/// Star schema generator knobs.
struct StarSchemaConfig {
  /// Fact rows. The paper used 10M; the default keeps the benches fast and
  /// the plan crossovers (selectivity ratios) identical.
  uint64_t fact_rows = 200000;
  /// Number of dimension tables (the paper's Experiment 3 uses 3).
  uint64_t num_dims = 3;
  /// Rows per dimension table (the paper used 1000).
  uint64_t dim_rows = 1000;
  /// Attribute groups per dimension; each filter selects one group, i.e.
  /// 1/groups of the dimension (10% for the default 10).
  uint64_t groups = 10;
  /// Offset-distribution decay: P(e = t) proportional to decay^t.
  double offset_decay = 0.5;
  uint64_t seed = 11;
  bool build_indexes = true;
};

/// Expected fraction of fact rows joining when the query filters dimension
/// groups (v, v+offset, v+offset): P(e = offset) / groups.
double ExpectedJoinFraction(const StarSchemaConfig& config, uint64_t offset);

/// Generates tables `fact` and `dim1`..`dim<num_dims>` with keys, FKs and
/// fact FK indexes into `catalog`. Fact columns are `f_id`, `f_d1`..
/// `f_d<num_dims>`, `f_m1`, `f_m2`; dimension k has `dk_id`, `dk_attr`,
/// `dk_weight`, `dk_label`. Dimensions 2..num_dims share the fact row's
/// offset, so aligned filters compound exactly as in the 3-dim case.
Status LoadStarSchema(storage::Catalog* catalog,
                      const StarSchemaConfig& config = {});

}  // namespace workload
}  // namespace robustqo

#endif  // ROBUSTQO_WORKLOAD_STAR_SCHEMA_H_
