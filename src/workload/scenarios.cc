#include "workload/scenarios.h"

#include <cmath>
#include <unordered_set>

#include "expr/expression.h"
#include "storage/date.h"
#include "util/macros.h"

namespace robustqo {
namespace workload {

using expr::And;
using expr::Between;
using expr::Col;
using expr::Eq;
using expr::LitInt;
using storage::Value;

// ---- Experiment 1 ----

SingleTableScenario::SingleTableScenario()
    : window_start(storage::DateToDays(1997, 7, 1)) {}

opt::QuerySpec SingleTableScenario::MakeQuery(double offset_days) const {
  const int64_t offset = static_cast<int64_t>(std::llround(offset_days));
  expr::ExprPtr predicate = And({
      Between(Col("l_shipdate"), Value::Date(window_start),
              Value::Date(window_start + window_days - 1)),
      Between(Col("l_receiptdate"), Value::Date(window_start + offset),
              Value::Date(window_start + offset + window_days - 1)),
  });
  opt::QuerySpec query;
  query.tables.push_back({"lineitem", predicate});
  query.aggregates.push_back(
      {exec::AggKind::kSum, "l_extendedprice", "sum_price"});
  return query;
}

double SingleTableScenario::TrueSelectivity(const storage::Catalog& catalog,
                                            double offset_days) const {
  const storage::Table* lineitem = catalog.GetTable("lineitem");
  RQO_CHECK(lineitem != nullptr);
  const opt::QuerySpec query = MakeQuery(offset_days);
  const uint64_t count =
      expr::CountSatisfying(*query.tables[0].predicate, *lineitem);
  return static_cast<double>(count) /
         static_cast<double>(lineitem->num_rows());
}

std::vector<double> SingleTableScenario::DefaultParams() {
  // Joint selectivity falls roughly linearly in the offset and reaches 0
  // at window_days + 30 (the receipt lag bound); these offsets cover the
  // paper's ~0.6% top point down to exactly 0.
  return {55, 58, 61, 64, 67, 70, 73, 76, 79, 82, 85, 88, 92};
}

// ---- Experiment 2 ----

opt::QuerySpec ThreeTableJoinScenario::MakeQuery(double offset) const {
  expr::ExprPtr part_pred = And({
      Between(Col("p_c1"), Value::Double(band_lo),
              Value::Double(band_lo + band_width)),
      Between(Col("p_c2"), Value::Double(band_lo + offset),
              Value::Double(band_lo + offset + band_width)),
  });
  opt::QuerySpec query;
  query.tables.push_back({"lineitem", nullptr});
  query.tables.push_back({"orders", nullptr});
  query.tables.push_back({"part", part_pred});
  query.aggregates.push_back(
      {exec::AggKind::kSum, "l_extendedprice", "sum_price"});
  return query;
}

double ThreeTableJoinScenario::TrueSelectivity(
    const storage::Catalog& catalog, double offset) const {
  const storage::Table* part = catalog.GetTable("part");
  RQO_CHECK(part != nullptr);
  const opt::QuerySpec query = MakeQuery(offset);
  const uint64_t count =
      expr::CountSatisfying(*query.tables[2].predicate, *part);
  return static_cast<double>(count) / static_cast<double>(part->num_rows());
}

std::vector<double> ThreeTableJoinScenario::DefaultParams() {
  // The p_c2 correlation window is 5 wide, so joint selectivity collapses
  // over offsets 10..15; finer steps near the tail resolve the low
  // crossover the paper focuses on.
  return {10.0, 11.0, 12.0, 12.5, 13.0, 13.25, 13.5,
          13.75, 14.0, 14.25, 14.5, 14.75, 15.0};
}

// ---- Experiment 3 ----

opt::QuerySpec StarJoinScenario::MakeQuery(double offset) const {
  const int64_t d = static_cast<int64_t>(std::llround(offset));
  const int64_t shifted =
      (base_value + d) % static_cast<int64_t>(groups);
  opt::QuerySpec query;
  query.tables.push_back({"fact", nullptr});
  query.tables.push_back({"dim1", Eq(Col("d1_attr"), LitInt(base_value))});
  query.tables.push_back({"dim2", Eq(Col("d2_attr"), LitInt(shifted))});
  query.tables.push_back({"dim3", Eq(Col("d3_attr"), LitInt(shifted))});
  query.aggregates.push_back({exec::AggKind::kSum, "f_m1", "sum_m1"});
  query.aggregates.push_back({exec::AggKind::kAvg, "f_m2", "avg_m2"});
  return query;
}

double StarJoinScenario::TrueSelectivity(const storage::Catalog& catalog,
                                         double offset) const {
  const storage::Table* fact = catalog.GetTable("fact");
  RQO_CHECK(fact != nullptr);
  const opt::QuerySpec query = MakeQuery(offset);

  // Selected-id sets per dimension, then one pass over the fact FKs.
  std::vector<std::unordered_set<int64_t>> selected(3);
  const char* dims[3] = {"dim1", "dim2", "dim3"};
  const char* pks[3] = {"d1_id", "d2_id", "d3_id"};
  for (int d = 0; d < 3; ++d) {
    const storage::Table* dim = catalog.GetTable(dims[d]);
    RQO_CHECK(dim != nullptr);
    const expr::ExprPtr& pred = query.tables[static_cast<size_t>(d) + 1].predicate;
    const storage::ColumnVector& ids = dim->column(pks[d]);
    for (storage::Rid rid = 0; rid < dim->num_rows(); ++rid) {
      if (pred->EvaluateBool(*dim, rid)) selected[d].insert(ids.Int64At(rid));
    }
  }
  const storage::ColumnVector& f1 = fact->column("f_d1");
  const storage::ColumnVector& f2 = fact->column("f_d2");
  const storage::ColumnVector& f3 = fact->column("f_d3");
  uint64_t joining = 0;
  for (storage::Rid rid = 0; rid < fact->num_rows(); ++rid) {
    if (selected[0].count(f1.Int64At(rid)) > 0 &&
        selected[1].count(f2.Int64At(rid)) > 0 &&
        selected[2].count(f3.Int64At(rid)) > 0) {
      ++joining;
    }
  }
  return static_cast<double>(joining) /
         static_cast<double>(fact->num_rows());
}

std::vector<double> StarJoinScenario::DefaultParams() {
  return {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
}

}  // namespace workload
}  // namespace robustqo
