// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Experiment harness reproducing the paper's Section 6 methodology: sweep a
// query template's free parameter, optimize at several confidence-threshold
// settings (plus the histogram baseline), execute the chosen plans, and
// report per-selectivity average execution time (the "(a)" panels) and the
// per-setting mean/std-dev tradeoff (the "(b)" panels). Results average
// over multiple independent statistics samples, as the paper does (12-20).
//
// Execution of a chosen plan is deterministic given (plan structure,
// parameter), so executions are cached — only optimization is repeated per
// sample draw.

#ifndef ROBUSTQO_WORKLOAD_EXPERIMENT_HARNESS_H_
#define ROBUSTQO_WORKLOAD_EXPERIMENT_HARNESS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/database.h"
#include "obs/metrics.h"
#include "optimizer/query.h"
#include "statistics/statistics_catalog.h"

namespace robustqo {
namespace workload {

/// One estimator configuration evaluated in the sweep.
struct EstimatorSetting {
  std::string label;  ///< e.g. "T=80%", "Histograms"
  core::EstimatorKind kind = core::EstimatorKind::kRobustSample;
  /// Confidence threshold for the robust estimator (ignored for histogram).
  double confidence_threshold = 0.80;
};

/// The paper's standard settings: T in {5,20,50,80,95}% plus histograms.
std::vector<EstimatorSetting> PaperSettings();

/// Sweep configuration.
struct SweepConfig {
  std::vector<double> params;
  std::vector<EstimatorSetting> settings = PaperSettings();
  /// Independent statistics redraws (paper: 12-20).
  size_t repetitions = 12;
  stats::StatisticsConfig statistics;  ///< sample size etc.
  /// Cross-check that every plan chosen for the same parameter computes
  /// the same first-cell answer (aborts the experiment on a mismatch —
  /// plan choice must never change results).
  bool verify_answers = true;
  /// Optional metrics sink (borrowed, nullable): attached to the database
  /// for the duration of the sweep, accumulating plan/execution/cache
  /// counters alongside the optimizer's own counters.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Aggregated measurements for one estimator setting.
struct SettingAggregate {
  double mean_seconds = 0.0;
  double std_dev_seconds = 0.0;  ///< population std-dev over all queries
  /// Tail latency: 95th percentile of execution time — what a user of an
  /// interactive application actually experiences as "slow queries".
  double p95_seconds = 0.0;
  /// Cardinality accuracy over all (param, repetition) plans: q-error of
  /// the estimated vs. actual SPJ result size. The robust estimator's
  /// deliberate overestimation shows up here as a higher median but a
  /// tamer maximum than the histogram baseline on adverse data.
  double max_q_error = 0.0;
  double median_q_error = 0.0;
  /// How often each plan structure was chosen (label -> count).
  std::map<std::string, int> plan_counts;
};

/// Full sweep results.
struct SweepResult {
  std::vector<double> params;
  /// Exact selectivity at each parameter (x-axis of the "(a)" panels).
  std::vector<double> true_selectivity;
  /// mean execution seconds [param index][setting label] (the "(a)" data).
  std::vector<std::map<std::string, double>> mean_by_point;
  /// Per-setting aggregate over all params and repetitions ("(b)" data).
  std::map<std::string, SettingAggregate> overall;
};

/// Runs one experiment scenario end to end.
class QuerySweepExperiment {
 public:
  using QueryFactory = std::function<opt::QuerySpec(double param)>;
  using SelectivityProbe = std::function<double(double param)>;

  /// `db` must already contain the data (statistics are (re)built here).
  QuerySweepExperiment(core::Database* db, QueryFactory factory,
                       SelectivityProbe probe)
      : db_(db), factory_(std::move(factory)), probe_(std::move(probe)) {}

  SweepResult Run(const SweepConfig& config);

 private:
  core::Database* db_;
  QueryFactory factory_;
  SelectivityProbe probe_;
};

/// Renders a SweepResult as the paper-style text tables: one
/// selectivity-vs-time block and one mean/std-dev tradeoff block.
std::string FormatSweepResult(const SweepResult& result,
                              const std::string& title);

}  // namespace workload
}  // namespace robustqo

#endif  // ROBUSTQO_WORKLOAD_EXPERIMENT_HARNESS_H_
