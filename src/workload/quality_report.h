// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// The feedback join between EXPLAIN ANALYZE and the estimation-quality
// monitor: an AnalyzedPlan carries the fingerprinted planning-time
// estimates (PredicateReport) and the executed actuals; RecordAnalyzedPlan
// pairs them up and feeds the monitor one observation per comparable
// estimate. Sits in workload because the join needs core (AnalyzedPlan),
// which obs must not depend on.

#ifndef ROBUSTQO_WORKLOAD_QUALITY_REPORT_H_
#define ROBUSTQO_WORKLOAD_QUALITY_REPORT_H_

#include <cstddef>
#include <cstdint>

#include "core/explain_analyze.h"
#include "learning/feedback_store.h"
#include "obs/quality_monitor.h"

namespace robustqo {
namespace workload {

/// Joins `plan`'s planning-time estimates with its execution actuals and
/// records them into `monitor`. The comparable estimate is the full
/// table-set row prediction (the "synopsis", "learned" or "independence"
/// event, whose `tables` covers every joined table): its est_rows pairs
/// with the executed SPJ-core row count. Returns the number of
/// observations recorded (0 when the plan was not executed, carries no
/// fingerprints, or `monitor` is null).
size_t RecordAnalyzedPlan(const core::AnalyzedPlan& plan,
                          obs::EstimationQualityMonitor* monitor);

/// Same join, additionally closing the learning loop: the executed actual
/// selectivity (actual SPJ rows over the root table's row count, recovered
/// from est_rows/selectivity of the same estimate) is folded into
/// `feedback` under the estimate's fingerprint, stamped with
/// `statistics_epoch`. Either sink may be null; returns the number of
/// monitor observations recorded.
size_t RecordAnalyzedPlan(const core::AnalyzedPlan& plan,
                          obs::EstimationQualityMonitor* monitor,
                          learn::FeedbackStore* feedback,
                          uint64_t statistics_epoch);

}  // namespace workload
}  // namespace robustqo

#endif  // ROBUSTQO_WORKLOAD_QUALITY_REPORT_H_
