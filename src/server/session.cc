#include "server/session.h"

#include "perf/task_pool.h"
#include "util/string_util.h"

namespace robustqo {
namespace server {

Session::Session(SessionId id, SessionOptions options, uint64_t seed)
    : id_(id), options_(std::move(options)), seed_(seed) {
  if (options_.name.empty()) {
    options_.name = StrPrintf("session-%llu", static_cast<unsigned long long>(id_));
  }
}

uint64_t Session::NextRequestSeed() {
  return perf::TaskSeed(seed_, request_ordinal_++);
}

Status Session::Prepare(PreparedStatement statement) {
  if (statement.name.empty()) {
    return Status::InvalidArgument("prepared statement needs a name");
  }
  if (prepared_.count(statement.name) > 0) {
    return Status::AlreadyExists("prepared statement '" + statement.name +
                                 "' already exists in this session");
  }
  prepared_.emplace(statement.name, std::move(statement));
  return Status::OK();
}

const PreparedStatement* Session::FindPrepared(const std::string& name) const {
  auto it = prepared_.find(name);
  return it == prepared_.end() ? nullptr : &it->second;
}

Status Session::Deallocate(const std::string& name) {
  if (prepared_.erase(name) == 0) {
    return Status::NotFound("no prepared statement '" + name + "'");
  }
  return Status::OK();
}

SessionInfo Session::Info() const {
  SessionInfo info;
  info.id = id_;
  info.name = options_.name;
  info.confidence_threshold = options_.confidence_threshold;
  info.prepared_statements = prepared_.size();
  info.submitted = submitted_;
  info.completed = completed_;
  info.failed = failed_;
  info.rejected = rejected_;
  return info;
}

SessionManager::SessionManager(uint64_t base_seed) : base_seed_(base_seed) {}

SessionId SessionManager::Open(SessionOptions options) {
  SessionId id = next_id_++;
  // Each session gets an independent splitmix64 stream keyed by its id, so
  // the seeds a session hands to its requests are invariant to how many
  // other sessions exist or interleave.
  uint64_t seed = perf::TaskSeed(base_seed_, id);
  sessions_.emplace(id,
                    std::make_unique<Session>(id, std::move(options), seed));
  return id;
}

Status SessionManager::Close(SessionId id) {
  if (sessions_.erase(id) == 0) {
    return Status::NotFound(
        StrPrintf("no open session %llu", static_cast<unsigned long long>(id)));
  }
  return Status::OK();
}

Session* SessionManager::Get(SessionId id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

const Session* SessionManager::Get(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::vector<SessionInfo> SessionManager::Snapshot() const {
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session->Info());
  return out;
}

std::string SessionManager::ReportText() const {
  std::string out = StrPrintf("%-4s %-16s %-6s %-9s %-10s %-10s %-7s %-9s\n",
                              "id", "name", "T%", "prepared", "submitted",
                              "completed", "failed", "rejected");
  for (const SessionInfo& info : Snapshot()) {
    out += StrPrintf(
        "%-4llu %-16s %-6s %-9llu %-10llu %-10llu %-7llu %-9llu\n",
        static_cast<unsigned long long>(info.id), info.name.c_str(),
        info.confidence_threshold > 0.0
            ? StrPrintf("%.0f", info.confidence_threshold).c_str()
            : "sys",
        static_cast<unsigned long long>(info.prepared_statements),
        static_cast<unsigned long long>(info.submitted),
        static_cast<unsigned long long>(info.completed),
        static_cast<unsigned long long>(info.failed),
        static_cast<unsigned long long>(info.rejected));
  }
  out += StrPrintf("%zu open session(s)\n", sessions_.size());
  return out;
}

}  // namespace server
}  // namespace robustqo
