#include "server/query_service.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/obs.h"
#include "perf/fingerprint.h"
#include "perf/task_pool.h"
#include "util/string_util.h"

namespace robustqo {
namespace server {

namespace {

std::string FpHex(uint64_t fingerprint) {
  return StrPrintf("%016llx", static_cast<unsigned long long>(fingerprint));
}

}  // namespace

/// Per-request state threaded through the scheduler's phases. Lives in a
/// ticket-keyed map so addresses stay stable across waves.
struct QueryService::PendingRequest {
  size_t index = 0;         ///< position in the batch (response slot)
  uint64_t ticket = 0;
  uint64_t request_id = 0;  ///< dense service-wide ordinal
  Session* session = nullptr;
  opt::QuerySpec spec;
  /// Write path: engaged (is_dml) requests skip the plan cache and the
  /// parallel execute phase; they apply sequentially in REDUCE.
  bool is_dml = false;
  robustqo::sql::DmlSpec dml;
  uint64_t fingerprint = 0;
  uint64_t waves_waited = 0;
  // -- request trace (engaged only while the flight recorder is on) --
  // Created in the sequential submit phase and touched by exactly one
  // thread at a time (the sequential phases, then this request's execute
  // task), so its records are a pure function of the request's inputs.
  std::unique_ptr<obs::Tracer> tracer;
  uint64_t root_span = 0;
  std::string cache_outcome;
  bool governor_tripped = false;
  uint64_t fault_fires = 0;
  // -- plan phase --
  std::shared_ptr<const opt::PlannedQuery> plan;
  bool cache_hit = false;
  double effective_threshold = 0.0;
  uint64_t seed = 0;
  fault::GovernorLimits limits;
  // Feedback-join keys captured at plan time (reads with learning on):
  // the canonical predicate fingerprint the estimator keys corrections
  // under, the root row count estimates were scaled by, and the
  // statistics epoch the plan was made at. Captured here because a
  // same-batch DML could move the catalog before REDUCE observes.
  uint64_t pred_fingerprint = 0;
  double plan_root_rows = 0.0;
  uint64_t plan_stats_epoch = 0;
  // -- execute phase --
  Status exec_status = Status::OK();
  std::optional<core::ExecutionResult> result;
  std::optional<exec::DmlResult> dml_result;
  std::unique_ptr<obs::MetricsRegistry> exec_metrics;
  /// Per-request cluster accounting, filled by the coordinator during the
  /// parallel execute phase and folded into service totals in REDUCE
  /// (admission order), so the totals never depend on thread count.
  cluster::RequestOutcome cluster_outcome;
};

QueryService::QueryService(core::Database* db, ServerConfig config)
    : db_(db),
      config_(config),
      sessions_(config.seed),
      admission_(config.admission),
      cache_(config.plan_cache_capacity),
      monitor_(config.quality),
      recorder_(config.flight_recorder),
      slo_(config.slo),
      feedback_(config.learning),
      tuner_(config.tpercent),
      provenance_(config.provenance) {
  admission_.set_fault_injector(db_->fault_injector());
  cache_.set_fault_injector(db_->fault_injector());
  // Close the estimation feedback loop: the reduce phase feeds this store,
  // the database's robust estimator consults it at plan time.
  feedback_.set_fault_injector(db_->fault_injector());
  db_->robust_estimator()->set_feedback_store(&feedback_);
  // Multi-node serving: with the default config (nodes=1, enabled=false)
  // no coordinator exists and this path is byte-identical to the
  // pre-cluster build.
  if (config_.cluster.enabled || config_.cluster.nodes > 1) {
    cluster_ = std::make_unique<cluster::Coordinator>(db_, config_.cluster,
                                                      &feedback_);
  }
}

QueryService::~QueryService() {
  if (db_->robust_estimator()->feedback_store() == &feedback_) {
    db_->robust_estimator()->set_feedback_store(nullptr);
  }
}

void QueryService::SetLearningEnabled(bool enabled) {
  feedback_.set_enabled(enabled);
  tuner_.set_enabled(enabled);
}

std::string QueryService::LearningReportText() const {
  return feedback_.ReportText() + tuner_.ReportText();
}

std::string QueryService::ClusterReportText() const {
  if (cluster_ == nullptr) return "cluster: single-node (no coordinator)\n";
  return cluster_->ReportText();
}

void QueryService::NoteRequestFaultFire(PendingRequest* work,
                                        const char* site) {
  // Accumulate, not assign: the same request can absorb fires in PLAN,
  // EXECUTE and REDUCE, and each phase must add to the running total (the
  // overwrite bug this helper exists to prevent).
  ++work->fault_fires;
  RQO_IF_OBS(work->tracer) {
    work->tracer->Event("fault", "fired", {{"site", site}});
  }
}

bool QueryService::TracingEnabled() const {
#if ROBUSTQO_OBS_ENABLED
  return config_.flight_recorder.enabled;
#else
  return false;
#endif
}

void QueryService::OfferAbortedTrace(
    obs::Tracer* tracer, uint64_t root_span, uint64_t request_id,
    SessionId session_id, const std::string& session_label, uint64_t ticket,
    uint64_t fingerprint, const std::string& cache_outcome,
    uint64_t waves_waited, uint64_t fault_fires, const Status& status) {
#if ROBUSTQO_OBS_ENABLED
  if (tracer == nullptr) return;
  const char* code = StatusCodeName(status.code());
  tracer->EndSpan(root_span, {{"status", code}});
  obs::RequestTrace trace;
  trace.request_id = request_id;
  trace.session_id = session_id;
  trace.session_label = session_label;
  trace.ticket = ticket;
  trace.fingerprint = fingerprint;
  trace.status = code;
  trace.failed = true;
  trace.cache_outcome = cache_outcome;
  trace.fault_fires = fault_fires;
  trace.waves_waited = waves_waited;
  trace.queue_wait_seconds = slo_.QueueWaitSeconds(waves_waited);
  trace.events = tracer->ReleaseEvents();
  recorder_.Offer(std::move(trace));
#else
  (void)tracer;
  (void)root_span;
  (void)request_id;
  (void)session_id;
  (void)session_label;
  (void)ticket;
  (void)fingerprint;
  (void)cache_outcome;
  (void)waves_waited;
  (void)fault_fires;
  (void)status;
#endif
}

SessionId QueryService::OpenSession(SessionOptions options) {
  return sessions_.Open(std::move(options));
}

Status QueryService::CloseSession(SessionId id) { return sessions_.Close(id); }

Status QueryService::Prepare(SessionId session_id, const std::string& name,
                             const std::string& sql) {
  Session* session = sessions_.Get(session_id);
  if (session == nullptr) {
    return Status::NotFound(StrPrintf(
        "no open session %llu", static_cast<unsigned long long>(session_id)));
  }
  Result<robustqo::sql::ParsedStatement> parsed =
      robustqo::sql::ParseStatement(*db_->catalog(), sql);
  if (!parsed.ok()) return parsed.status();
  PreparedStatement statement;
  statement.name = name;
  statement.sql = sql;
  statement.kind = parsed.value().kind;
  if (statement.is_dml()) {
    statement.dml = std::move(parsed.value().dml);
    statement.fingerprint = FingerprintStatementText(sql);
  } else {
    statement.spec = std::move(parsed.value().query);
    statement.fingerprint = FingerprintQuery(statement.spec);
  }
  return session->Prepare(std::move(statement));
}

std::vector<QueryResponse> QueryService::ExecuteBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<QueryResponse> responses(requests.size());
  std::map<uint64_t, PendingRequest> pending;  // ticket -> request
#if ROBUSTQO_OBS_ENABLED
  const bool tracing = TracingEnabled();
#endif

  // Phase 1 — SUBMIT (sequential, request order). Requests that cannot
  // reach the queue (unknown session, parse error, unknown prepared
  // statement) and typed admission rejections resolve here. Every request
  // draws a dense request id here — including ones that never queue — so
  // flight-recorder lanes and responses share one naming scheme.
  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryRequest& request = requests[i];
    QueryResponse& response = responses[i];
    response.session = request.session;
    const uint64_t request_id = ++next_request_id_;
    response.request_id = request_id;
    std::unique_ptr<obs::Tracer> request_tracer;
    uint64_t root_span = 0;
#if ROBUSTQO_OBS_ENABLED
    if (tracing) {
      request_tracer = std::make_unique<obs::Tracer>();
      root_span = request_tracer->BeginSpan(
          "server", "request",
          {{"request", obs::AttrU64(request_id)},
           {"session", obs::AttrU64(request.session)}});
    }
#endif
    Session* session = sessions_.Get(request.session);
    if (session == nullptr) {
      response.status = Status::NotFound(
          StrPrintf("no open session %llu",
                    static_cast<unsigned long long>(request.session)));
      RQO_IF_OBS(request_tracer) {
        request_tracer->Event("server", "submit", {{"outcome", "no_session"}});
      }
      OfferAbortedTrace(request_tracer.get(), root_span, request_id,
                        request.session, "", 0, 0, "", 0, 0, response.status);
      continue;
    }
    session->CountSubmitted();
    PendingRequest work;
    work.index = i;
    work.request_id = request_id;
    work.session = session;
    work.tracer = std::move(request_tracer);
    work.root_span = root_span;
    if (!request.prepared.empty()) {
      const PreparedStatement* statement =
          session->FindPrepared(request.prepared);
      if (statement == nullptr) {
        response.status = Status::NotFound("no prepared statement '" +
                                           request.prepared + "'");
        session->CountFailed();
        RQO_IF_OBS(work.tracer) {
          work.tracer->Event("server", "submit",
                             {{"outcome", "no_statement"}});
        }
        OfferAbortedTrace(work.tracer.get(), root_span, request_id,
                          request.session, session->name(), 0, 0, "", 0, 0,
                          response.status);
        continue;
      }
      work.is_dml = statement->is_dml();
      if (work.is_dml) {
        work.dml = statement->dml;
      } else {
        work.spec = statement->spec;
      }
      work.fingerprint = statement->fingerprint;
    } else if (request.spec.has_value()) {
      work.spec = *request.spec;
      work.fingerprint = FingerprintQuery(work.spec);
    } else {
      Result<robustqo::sql::ParsedStatement> parsed =
          robustqo::sql::ParseStatement(*db_->catalog(), request.sql);
      if (!parsed.ok()) {
        response.status = parsed.status();
        session->CountFailed();
        RQO_IF_OBS(work.tracer) {
          work.tracer->Event("server", "submit", {{"outcome", "parse_error"}});
        }
        OfferAbortedTrace(work.tracer.get(), root_span, request_id,
                          request.session, session->name(), 0, 0, "", 0, 0,
                          response.status);
        continue;
      }
      work.is_dml = parsed.value().kind != robustqo::sql::StatementKind::kQuery;
      if (work.is_dml) {
        work.dml = std::move(parsed.value().dml);
        work.fingerprint = FingerprintStatementText(request.sql);
      } else {
        work.spec = std::move(parsed.value().query);
        work.fingerprint = FingerprintQuery(work.spec);
      }
    }
    response.fingerprint = work.fingerprint;
    uint64_t reservation = session->options().memory_reservation_bytes;
    if (reservation == 0) {
      reservation = session->options().governor_limits.memory_limit_bytes;
    }
    Result<uint64_t> ticket = admission_.Submit(request.session, reservation);
    if (!ticket.ok()) {
      response.status = ticket.status();
      session->CountRejected();
      RQO_IF_OBS(work.tracer) {
        work.tracer->Event("server", "submit",
                           {{"outcome", "rejected"},
                            {"fingerprint", FpHex(work.fingerprint)}});
      }
      OfferAbortedTrace(work.tracer.get(), root_span, request_id,
                        request.session, session->name(), 0, work.fingerprint,
                        "", 0, 0, response.status);
      continue;
    }
    work.ticket = ticket.value();
    response.ticket = work.ticket;
    RQO_IF_OBS(work.tracer) {
      work.tracer->Event("server", "submit",
                         {{"outcome", "queued"},
                          {"ticket", obs::AttrU64(work.ticket)},
                          {"fingerprint", FpHex(work.fingerprint)}});
    }
    pending.emplace(work.ticket, std::move(work));
  }

  // Snapshot the database injector's arming once per batch: every
  // per-request injector replays the same specs under its own seed.
  const std::vector<std::pair<std::string, fault::FaultSpec>> armed_specs =
      db_->fault_injector()->ArmedSpecs();

  while (!pending.empty()) {
    std::vector<AdmissionTicket> wave = admission_.AdmitWave();
    if (wave.empty()) {
      // Cannot happen with a correct controller (the head of a non-empty
      // queue is always admittable once in-flight drains); fail closed
      // rather than spinning.
      for (auto& [ticket, work] : pending) {
        responses[work.index].status =
            Status::Internal("admission wedged: no admissible request");
        work.session->CountFailed();
        ++queries_failed_;
        OfferAbortedTrace(work.tracer.get(), work.root_span, work.request_id,
                          work.session->id(), work.session->name(), ticket,
                          work.fingerprint, "", 0, work.fault_fires,
                          responses[work.index].status);
      }
      break;
    }

    // Phase 2 — PLAN (sequential, admission order): plan-cache lookups and
    // optimizer runs share the database's single-threaded planning stack,
    // and per-request seeds are drawn here so they are scheduling-free.
    std::vector<PendingRequest*> running;
    running.reserve(wave.size());
    const uint64_t epoch = db_->statistics()->epoch();
    for (const AdmissionTicket& admitted : wave) {
      PendingRequest& work = pending.at(admitted.ticket);
      work.waves_waited = admitted.waves_waited;
      const SessionOptions& options = work.session->options();
      work.effective_threshold = options.confidence_threshold > 0.0
                                     ? options.confidence_threshold
                                     : db_->confidence_threshold();
      // Regret-tuned T%: a fingerprint the tuner raised plans at the
      // higher threshold (which also re-keys it out of its stale cache
      // entries); untuned fingerprints keep the session/system base.
      work.effective_threshold =
          tuner_.EffectiveThreshold(work.fingerprint, work.effective_threshold);
      RQO_IF_OBS(work.tracer) {
        work.tracer->Event(
            "server", "admitted",
            {{"wave", obs::AttrU64(admission_.stats().waves)},
             {"waves_waited", obs::AttrU64(work.waves_waited)},
             {"queue_wait_seconds",
              obs::AttrF(slo_.QueueWaitSeconds(work.waves_waited))}});
      }
      if (work.is_dml) {
        // Writes never touch the plan cache or the optimizer; they apply
        // sequentially in the reduce phase. The request still draws its
        // seed here, in admission order, so read/write mixes stay
        // scheduling-free.
        work.cache_outcome = "dml";
        RQO_IF_OBS(work.tracer) {
          work.tracer->Event("server", "plan",
                             {{"cache", "dml"},
                              {"table", work.dml.table}});
        }
        work.seed = work.session->NextRequestSeed();
        work.limits = options.governor_limits;
        running.push_back(&work);
        continue;
      }
      const PlanCacheKey key = PlanCacheKey::Make(
          work.fingerprint, work.effective_threshold, options.estimator);
      PlanCacheOutcome cache_outcome = PlanCacheOutcome::kMiss;
      work.plan = cache_.LookupEx(key, epoch, &cache_outcome);
      work.cache_hit = work.plan != nullptr;
      work.cache_outcome = PlanCacheOutcomeName(cache_outcome);
      // A degraded lookup means the server.plan_cache.lookup fault fired
      // for this request — that makes its trace an incident, and the trace
      // itself names the site (the shared injector's own event goes to the
      // service tracer, not this request's).
      if (cache_outcome == PlanCacheOutcome::kDegradedFault) {
        NoteRequestFaultFire(&work, fault::sites::kPlanCacheLookup);
      }
      RQO_IF_OBS(tracer_) {
        tracer_->Event("server",
                       work.cache_hit ? "plan_cache.hit" : "plan_cache.miss",
                       {{"fingerprint",
                         StrPrintf("%016llx", static_cast<unsigned long long>(
                                                  work.fingerprint))},
                        {"epoch", obs::AttrU64(epoch)}});
      }
      uint64_t plan_span = 0;
      RQO_IF_OBS(work.tracer) {
        plan_span = work.tracer->BeginSpan(
            "server", "plan",
            {{"cache", work.cache_outcome},
             {"threshold", obs::AttrF(work.effective_threshold)},
             {"epoch", obs::AttrU64(epoch)}});
      }
      if (work.plan == nullptr) {
        const double saved_threshold = db_->confidence_threshold();
        db_->SetConfidenceThreshold(work.effective_threshold);
        // Provenance capture rides the optimizer run (sequential PLAN
        // phase): save/set/restore the database knobs like the threshold
        // so a direct db user outside the service is unaffected.
        const bool provenance_on = provenance_.enabled();
        const bool saved_capture = db_->provenance_capture();
        const size_t saved_top_k = db_->provenance_top_k();
        if (provenance_on) {
          db_->SetProvenanceCapture(true);
          db_->SetProvenanceTopK(config_.provenance_top_k);
        }
#if ROBUSTQO_OBS_ENABLED
        // Re-point the database's tracer at this request's for the
        // optimizer run, so degradation/estimation events nest under the
        // request's plan span. Planning is sequential, so this is safe.
        obs::Tracer* saved_tracer = db_->tracer();
        if (work.tracer != nullptr) db_->SetTracer(work.tracer.get());
#endif
        // Accumulate, not assign (same bug class as the EXECUTE phase):
        // plan-time probes against the shared injector — the estimator's
        // learned-tier lookups probe learning.feedback.apply — must add to
        // fires already counted for this request, e.g. a degraded
        // plan-cache lookup.
        const uint64_t plan_fires_before = db_->fault_injector()->total_fires();
        Result<opt::PlannedQuery> planned =
            db_->Plan(work.spec, options.estimator);
        work.fault_fires +=
            db_->fault_injector()->total_fires() - plan_fires_before;
#if ROBUSTQO_OBS_ENABLED
        if (work.tracer != nullptr) db_->SetTracer(saved_tracer);
#endif
        if (provenance_on) {
          db_->SetProvenanceCapture(saved_capture);
          db_->SetProvenanceTopK(saved_top_k);
        }
        db_->SetConfidenceThreshold(saved_threshold);
        if (!planned.ok()) {
          responses[work.index].status = planned.status();
          admission_.Complete(admitted.ticket);
          work.session->CountFailed();
          ++queries_failed_;
          RQO_IF_OBS(work.tracer) {
            work.tracer->EndSpan(
                plan_span,
                {{"status", StatusCodeName(planned.status().code())}});
          }
#if ROBUSTQO_OBS_ENABLED
          if (config_.slo.enabled) {
            obs::SloObservation observation;
            observation.session = work.session->id();
            observation.session_label = work.session->name();
            observation.fingerprint = work.fingerprint;
            observation.failed = true;
            observation.queue_waves = work.waves_waited;
            slo_.Record(observation);
          }
#endif
          OfferAbortedTrace(work.tracer.get(), work.root_span, work.request_id,
                            work.session->id(), work.session->name(),
                            work.ticket, work.fingerprint, work.cache_outcome,
                            work.waves_waited, work.fault_fires,
                            planned.status());
          pending.erase(admitted.ticket);
          continue;
        }
        work.plan = std::make_shared<const opt::PlannedQuery>(
            std::move(planned).value());
        cache_.Insert(key, work.plan, epoch);
        // Record after the fresh optimizer run (drift-blocked re-plans are
        // not cached but still get provenance); cache hits keep their
        // existing record.
        if (provenance_on) {
          RecordProvenance(work, key, epoch, cache_outcome);
        }
      }
      RQO_IF_OBS(work.tracer) {
        work.tracer->EndSpan(
            plan_span,
            {{"label", work.plan->label},
             {"estimated_cost_seconds", obs::AttrF(work.plan->estimated_cost)}});
      }
      // Remember which tables this fingerprint reads so a later drift flag
      // can route the right tables to the statistics-rebuild queue.
      fingerprint_tables_[work.fingerprint] = work.spec.TableNames();
      if (feedback_.enabled()) {
        const std::set<std::string> tables = work.spec.TableNames();
        const expr::ExprPtr predicate = work.spec.CombinedPredicate(tables);
        if (predicate != nullptr) {
          auto root = db_->catalog()->FindRootTable(tables);
          if (root.ok()) {
            work.pred_fingerprint = perf::FingerprintExpr(*predicate);
            work.plan_root_rows = static_cast<double>(
                db_->catalog()->GetTable(root.value())->num_rows());
            work.plan_stats_epoch = epoch;
          }
        }
      }
      work.seed = work.session->NextRequestSeed();
      work.limits = options.governor_limits;
      running.push_back(&work);
    }

    // Phase 3 — EXECUTE (parallel): pure per-request tasks writing to
    // pre-allocated slots. Each task gets a private governor, injector and
    // metrics shard; nothing in the database is touched. Every read in
    // the wave is pinned to the data epoch captured here — writes only
    // commit in the sequential reduce phase, so what a wave's reads see
    // is independent of scheduling and thread count.
    const uint64_t wave_snapshot = db_->catalog()->data_epoch();
    // Cluster wave prologue (sequential, before any parallel task runs):
    // (re)partition the catalog at this wave's snapshot epoch and ship
    // statistics artifacts to nodes that fell behind. Probes the shared
    // injector, so it must not run inside the parallel region.
    if (cluster_ != nullptr) cluster_->BeginWave(wave_snapshot);
    perf::TaskPool::Global()->ParallelFor(running.size(), [&](size_t i) {
      PendingRequest* work = running[i];
      if (work->is_dml) return;  // applied sequentially in REDUCE
      fault::FaultInjector injector(work->seed);
      for (const auto& [site, spec] : armed_specs) injector.Arm(site, spec);
      fault::QueryGovernor governor(work->limits);
      exec::ExecContext ctx;
      ctx.catalog = db_->catalog();
      ctx.cost_model = db_->cost_model();
      ctx.governor = &governor;
      ctx.fault = &injector;
      ctx.snapshot_epoch = wave_snapshot;
#if ROBUSTQO_OBS_ENABLED
      if (metrics_ != nullptr) {
        work->exec_metrics = std::make_unique<obs::MetricsRegistry>();
        ctx.metrics = work->exec_metrics.get();
        injector.set_metrics(work->exec_metrics.get());
      }
      uint64_t exec_span = 0;
      if (work->tracer != nullptr) {
        // The tracer moves to this worker for the duration of the task;
        // the coordinator does not touch it again until the reduce phase.
        ctx.tracer = work->tracer.get();
        injector.set_tracer(work->tracer.get());
        exec_span = work->tracer->BeginSpan(
            "server", "execute", {{"seed", obs::AttrU64(work->seed)}});
      }
#endif
      // Cluster routing: eligible scan/aggregate roots execute scatter-
      // gather across the node fragments (byte-identical results and
      // charges); everything else — and the single-node build — takes the
      // plan's own root. Coordinator::Execute is const and thread-safe;
      // per-request accounting lands in this request's outcome slot.
      Result<storage::Table> rows =
          cluster_ != nullptr
              ? cluster_->Execute(work->plan->root.get(), &ctx, work->seed,
                                  &work->cluster_outcome)
              : work->plan->root->Run(&ctx);
#if ROBUSTQO_OBS_ENABLED
      governor.PublishMetrics(work->exec_metrics.get());
#endif
      work->governor_tripped = governor.tripped();
      // Accumulate, not assign: a degraded plan-cache lookup already
      // counted one fire for this request during the PLAN phase.
      work->fault_fires += injector.total_fires();
      if (!rows.ok()) {
        work->exec_status = rows.status();
      } else {
        const uint64_t spj_rows = ctx.aggregate_input_rows != UINT64_MAX
                                      ? ctx.aggregate_input_rows
                                      : rows.value().num_rows();
#if ROBUSTQO_OBS_ENABLED
        RQO_IF_OBS(work->exec_metrics) {
          work->exec_metrics->GetSketch("exec.query.simulated_seconds")
              ->Observe(ctx.meter.total_seconds());
          work->exec_metrics->GetSketch("exec.query.rows")
              ->Observe(static_cast<double>(rows.value().num_rows()));
          work->exec_metrics->GetSketch("exec.query.spj_rows")
              ->Observe(static_cast<double>(spj_rows));
        }
#endif
        work->result = core::ExecutionResult{std::move(rows).value(),
                                             ctx.meter.total_seconds(),
                                             ctx.meter,
                                             spj_rows,
                                             work->plan->estimated_cost,
                                             work->plan->label,
                                             work->plan->Explain(),
                                             governor.peak_memory_bytes(),
                                             governor.rows_charged()};
      }
#if ROBUSTQO_OBS_ENABLED
      if (work->tracer != nullptr) {
        obs::TraceAttrs end_attrs = {
            {"status", work->exec_status.ok()
                           ? "OK"
                           : StatusCodeName(work->exec_status.code())},
            {"simulated_seconds", obs::AttrF(ctx.meter.total_seconds())},
            {"governor_tripped", work->governor_tripped ? "1" : "0"},
            {"peak_memory_bytes", obs::AttrU64(governor.peak_memory_bytes())},
            {"fault_fires", obs::AttrU64(work->fault_fires)}};
        if (work->result.has_value()) {
          end_attrs.push_back(
              {"rows", obs::AttrU64(work->result->rows.num_rows())});
        }
        work->tracer->EndSpan(exec_span, std::move(end_attrs));
      }
#endif
    });

    // Phase 4 — REDUCE (sequential, admission order): apply DML against
    // the latest state, release admission slots, merge metric shards,
    // apply session tallies, and feed the quality monitor. Writes commit
    // here — one at a time, in admission order — so the data-epoch
    // sequence (and therefore every snapshot any request reads) is a pure
    // function of the request order.
    for (PendingRequest* work : running) {
      if (work->is_dml) ExecuteDmlWork(work, armed_specs);
      admission_.Complete(work->ticket);
      QueryResponse& response = responses[work->index];
      response.ticket = work->ticket;
      response.fingerprint = work->fingerprint;
      response.cache_hit = work->cache_hit;
      response.waves_waited = work->waves_waited;
#if ROBUSTQO_OBS_ENABLED
      if (metrics_ != nullptr && work->exec_metrics != nullptr) {
        metrics_->MergeFrom(*work->exec_metrics);
      }
#endif
      // Fold per-request cluster accounting into coordinator totals here,
      // in admission order, so the totals are thread-count independent.
      if (cluster_ != nullptr && !work->is_dml) {
        cluster_->Accumulate(work->cluster_outcome);
      }
      const bool ok = work->exec_status.ok();
      const double actual_seconds =
          ok && work->result.has_value() ? work->result->simulated_seconds
                                         : 0.0;
      const double estimated_seconds =
          work->plan != nullptr ? work->plan->estimated_cost : 0.0;
      if (ok) {
        if (work->is_dml) {
          response.dml = work->dml_result;
        } else {
          obs::QualityObservation observation;
          observation.fingerprint = work->fingerprint;
          observation.label = work->plan->label;
          observation.estimated_rows = work->plan->estimated_spj_rows;
          observation.actual_rows = static_cast<double>(work->result->spj_rows);
          observation.confidence_threshold = work->effective_threshold;
          monitor_.Record(observation);
          // Close the learning loop: the executed actual selectivity, in
          // the estimator's own currency, lands under the predicate
          // fingerprint the estimator looks corrections up by. A fired
          // learning.feedback.apply fault drops the observation and counts
          // against this request's trace.
          if (work->pred_fingerprint != 0 && work->plan_root_rows > 0.0) {
            const double actual_selectivity =
                std::min(1.0, static_cast<double>(work->result->spj_rows) /
                                  work->plan_root_rows);
            const double estimated_selectivity =
                std::min(1.0, work->plan->estimated_spj_rows /
                                  work->plan_root_rows);
            Status fed = feedback_.Observe(
                work->pred_fingerprint, work->plan->label,
                estimated_selectivity, actual_selectivity,
                work->plan_stats_epoch);
            if (!fed.ok()) {
              NoteRequestFaultFire(work, fault::sites::kLearningFeedbackApply);
            }
          }
          response.result = std::move(work->result);
        }
        work->session->CountCompleted();
        ++queries_completed_;
      } else {
        response.status = work->exec_status;
        work->session->CountFailed();
        ++queries_failed_;
      }
#if ROBUSTQO_OBS_ENABLED
      if (config_.slo.enabled) {
        obs::SloObservation observation;
        observation.session = work->session->id();
        observation.session_label = work->session->name();
        observation.fingerprint = work->fingerprint;
        observation.failed = !ok;
        observation.cache_hit = work->cache_hit;
        observation.queue_waves = work->waves_waited;
        observation.actual_seconds = actual_seconds;
        observation.estimated_seconds = estimated_seconds;
        slo_.Record(observation);
      }
      if (work->tracer != nullptr) {
        const char* code =
            ok ? "OK" : StatusCodeName(work->exec_status.code());
        const double service_seconds =
            slo_.ServiceSeconds(actual_seconds, work->cache_hit);
        const double regret =
            ok ? std::max(0.0, actual_seconds - estimated_seconds) : 0.0;
        work->tracer->Event("server", "complete",
                            {{"status", code},
                             {"service_seconds", obs::AttrF(service_seconds)},
                             {"regret_seconds", obs::AttrF(regret)}});
        work->tracer->EndSpan(work->root_span, {{"status", code}});
        obs::RequestTrace trace;
        trace.request_id = work->request_id;
        trace.session_id = work->session->id();
        trace.session_label = work->session->name();
        trace.ticket = work->ticket;
        trace.fingerprint = work->fingerprint;
        trace.status = code;
        trace.failed = !ok;
        trace.governor_tripped = work->governor_tripped;
        trace.fault_fires = work->fault_fires;
        trace.cache_outcome = work->cache_outcome;
        trace.waves_waited = work->waves_waited;
        trace.queue_wait_seconds = slo_.QueueWaitSeconds(work->waves_waited);
        trace.service_seconds = service_seconds;
        trace.events = work->tracer->ReleaseEvents();
        recorder_.Offer(std::move(trace));
      }
#else
      (void)actual_seconds;
      (void)estimated_seconds;
#endif
      pending.erase(work->ticket);
    }

    // Drift hook: a fingerprint whose recent q-error regressed past the
    // monitor's factor loses its cached plans before the next wave — the
    // cache must not keep serving a plan chosen for data that moved. The
    // block records the current statistics epoch, so it lifts itself once
    // a rebuild moves past it; the tables the statement reads are flagged
    // for that rebuild.
    if (config_.invalidate_on_drift) {
      const uint64_t stats_epoch = db_->statistics()->epoch();
      for (const obs::FingerprintQuality& drifted : monitor_.Drifted()) {
        if (cache_.IsDriftBlocked(drifted.fingerprint)) continue;
        // Drift invalidates replica statistics too: the next wave's
        // BeginWave re-ships artifacts even when checksums match, so no
        // node keeps serving synopses built for data that moved.
        if (cluster_ != nullptr) cluster_->NoteDrift();
        const size_t evicted =
            cache_.InvalidateFingerprint(drifted.fingerprint, stats_epoch);
        if (config_.background_rebuild) {
          auto tables = fingerprint_tables_.find(drifted.fingerprint);
          if (tables != fingerprint_tables_.end()) {
            for (const std::string& table : tables->second) {
              db_->statistics()->MarkPendingRebuild(table);
            }
          }
        }
        RQO_IF_OBS(tracer_) {
          tracer_->Event(
              "server", "plan_cache.drift_invalidated",
              {{"fingerprint",
                StrPrintf("%016llx", static_cast<unsigned long long>(
                                         drifted.fingerprint))},
               {"evicted", obs::AttrU64(evicted)},
               {"drift_ratio", StrPrintf("%.2f", drifted.drift_ratio)}});
        }
      }
    }

    // Background statistics maintenance: tables flagged stale — by
    // committed-write volume (ObserveCommit's policy) or by the drift hook
    // above — rebuild now, before the next wave plans. The epoch bump
    // makes stale cached plans and epoch-scoped drift blocks clear
    // themselves on their next lookup; nobody calls UPDATE STATISTICS.
    if (config_.background_rebuild && db_->statistics()->RebuildPending()) {
      const uint64_t rebuilt = db_->RebuildPendingStatistics();
      if (rebuilt > 0) monitor_.Reset();
      RQO_IF_OBS(tracer_) {
        tracer_->Event(
            "server", "stats.background_rebuild",
            {{"tables", obs::AttrU64(rebuilt)},
             {"epoch", obs::AttrU64(db_->statistics()->epoch())}});
      }
    }

    // Regret-driven T% retuning (sequential, after this wave's SLO
    // observations landed): fingerprints whose realized regret rate is
    // chronically over the (1-T) budget plan more conservatively from the
    // next wave on; calibrated ones relax back toward the base. The tuned
    // threshold is part of the plan-cache key, so a retuned fingerprint
    // re-plans naturally instead of serving its old plan.
    if (tuner_.enabled()) {
      const size_t overrides_before = tuner_.overrides();
      const uint64_t raised_before = tuner_.raised_total();
      tuner_.Retune(slo_, db_->confidence_threshold());
      RQO_IF_OBS(tracer_) {
        if (tuner_.overrides() != overrides_before ||
            tuner_.raised_total() != raised_before) {
          tracer_->Event("server", "tpercent.retuned",
                         {{"overrides", obs::AttrU64(tuner_.overrides())},
                          {"raised", obs::AttrU64(tuner_.raised_total())},
                          {"relaxed", obs::AttrU64(tuner_.relaxed_total())}});
        }
      }
    }
  }
  return responses;
}

void QueryService::ExecuteDmlWork(
    PendingRequest* work,
    const std::vector<std::pair<std::string, fault::FaultSpec>>& armed_specs) {
  fault::FaultInjector injector(work->seed);
  for (const auto& [site, spec] : armed_specs) injector.Arm(site, spec);
  fault::QueryGovernor governor(work->limits);
  exec::ExecContext ctx;
  ctx.catalog = db_->catalog();
  ctx.cost_model = db_->cost_model();
  ctx.governor = &governor;
  ctx.fault = &injector;
  // Writes target the latest committed state: earlier writes of the same
  // wave (applied just before this one, in admission order) are visible.
  ctx.snapshot_epoch = storage::kLatestSnapshot;
#if ROBUSTQO_OBS_ENABLED
  uint64_t exec_span = 0;
  if (metrics_ != nullptr) {
    work->exec_metrics = std::make_unique<obs::MetricsRegistry>();
    ctx.metrics = work->exec_metrics.get();
    injector.set_metrics(work->exec_metrics.get());
  }
  if (work->tracer != nullptr) {
    ctx.tracer = work->tracer.get();
    injector.set_tracer(work->tracer.get());
    exec_span = work->tracer->BeginSpan(
        "server", "write",
        {{"seed", obs::AttrU64(work->seed)}, {"table", work->dml.table}});
  }
#endif
  exec::DmlExecutor executor(db_->catalog(), db_->statistics());
  executor.set_retry_policy(db_->dml_retry_policy());
  Result<exec::DmlResult> result = [&]() -> Result<exec::DmlResult> {
    switch (work->dml.kind) {
      case robustqo::sql::StatementKind::kInsert:
        return executor.Insert(&ctx, work->dml.table, work->dml.insert_rows);
      case robustqo::sql::StatementKind::kUpdate:
        return executor.Update(&ctx, work->dml.table, work->dml.set_exprs,
                               work->dml.where);
      case robustqo::sql::StatementKind::kDelete:
        return executor.Delete(&ctx, work->dml.table, work->dml.where);
      case robustqo::sql::StatementKind::kQuery:
        break;
    }
    return Status::InvalidArgument("not a DML statement");
  }();
#if ROBUSTQO_OBS_ENABLED
  governor.PublishMetrics(work->exec_metrics.get());
#endif
  work->governor_tripped = governor.tripped();
  work->fault_fires += injector.total_fires();
  if (!result.ok()) {
    work->exec_status = result.status();
  } else {
    work->dml_result = result.value();
#if ROBUSTQO_OBS_ENABLED
    RQO_IF_OBS(work->exec_metrics) {
      work->exec_metrics->GetCounter("server.dml.rows_written")
          ->Increment(result.value().rows_inserted +
                      result.value().rows_deleted);
    }
#endif
  }
#if ROBUSTQO_OBS_ENABLED
  if (work->tracer != nullptr) {
    obs::TraceAttrs end_attrs = {
        {"status", work->exec_status.ok()
                       ? "OK"
                       : StatusCodeName(work->exec_status.code())},
        {"fault_fires", obs::AttrU64(work->fault_fires)}};
    if (work->dml_result.has_value()) {
      end_attrs.push_back(
          {"rows_affected", obs::AttrU64(work->dml_result->rows_affected())});
      end_attrs.push_back({"epoch", obs::AttrU64(work->dml_result->epoch)});
      end_attrs.push_back(
          {"commit_attempts",
           obs::AttrU64(static_cast<uint64_t>(work->dml_result->retry.attempts))});
    }
    work->tracer->EndSpan(exec_span, std::move(end_attrs));
  }
#endif
}

void QueryService::RecordProvenance(const PendingRequest& work,
                                    const PlanCacheKey& key, uint64_t epoch,
                                    PlanCacheOutcome outcome) {
  const obs::PlanSensitivity& sensitivity = db_->last_plan_sensitivity();
  if (!sensitivity.captured) return;
  // Copy any prior record before the store mutates: a re-planned
  // fingerprint diffs against what the observatory last knew about it.
  std::optional<obs::PlanProvenanceRecord> prior;
  if (const obs::PlanProvenanceRecord* existing =
          provenance_.Find(key.fingerprint)) {
    prior = *existing;
  }
  obs::PlanProvenanceRecord record;
  record.fingerprint = key.fingerprint;
  record.threshold_bits = key.threshold_bits;
  record.estimator =
      work.session->options().estimator == core::EstimatorKind::kHistogram
          ? "histogram"
          : "robust";
  record.epoch = epoch;
  record.plan_label = work.plan->label;
  record.estimated_cost = work.plan->estimated_cost;
  record.estimated_rows = work.plan->estimated_rows;
  record.sensitivity = sensitivity;
  provenance_.Record(std::move(record));
  if (!prior.has_value()) return;
  obs::PlanDiffRecord diff;
  diff.fingerprint = key.fingerprint;
  diff.trigger = PlanCacheOutcomeName(outcome);
  diff.old_epoch = prior->epoch;
  diff.new_epoch = epoch;
  diff.old_label = prior->plan_label;
  diff.new_label = work.plan->label;
  diff.old_cost = prior->estimated_cost;
  diff.new_cost = work.plan->estimated_cost;
  diff.plan_changed = diff.old_label != diff.new_label;
  if (sensitivity.available && !sensitivity.candidates.empty()) {
    diff.grid = sensitivity.grid;
    diff.new_curve = sensitivity.candidates.front().cost_at;
  }
  const obs::PlanSensitivity& old_sensitivity = prior->sensitivity;
  if (old_sensitivity.available && !old_sensitivity.candidates.empty()) {
    if (diff.grid.empty()) diff.grid = old_sensitivity.grid;
    diff.old_curve = old_sensitivity.candidates.front().cost_at;
  }
  diff.old_verdict = old_sensitivity.verdict;
  diff.new_verdict = sensitivity.verdict;
  provenance_.RecordDiff(std::move(diff));
#if ROBUSTQO_OBS_ENABLED
  RQO_IF_OBS(tracer_) {
    tracer_->Event("server", "plan_provenance.replanned",
                   {{"fingerprint", FpHex(key.fingerprint)},
                    {"trigger", PlanCacheOutcomeName(outcome)},
                    {"plan_changed", diff.plan_changed ? "1" : "0"}});
  }
#endif
}

QueryResponse QueryService::ExecutePrepared(SessionId session,
                                            const std::string& name) {
  std::vector<QueryResponse> responses =
      ExecuteBatch({QueryRequest::Prepared(session, name)});
  return std::move(responses[0]);
}

QueryResponse QueryService::ExecuteSql(SessionId session,
                                       const std::string& sql) {
  std::vector<QueryResponse> responses =
      ExecuteBatch({QueryRequest::Sql(session, sql)});
  return std::move(responses[0]);
}

QueryResponse QueryService::ExecuteSpec(SessionId session,
                                        opt::QuerySpec spec) {
  std::vector<QueryResponse> responses =
      ExecuteBatch({QueryRequest::Spec(session, std::move(spec))});
  return std::move(responses[0]);
}

void QueryService::UpdateStatistics(const stats::StatisticsConfig& config) {
  db_->UpdateStatistics(config);
  // The epoch bump already invalidates every cached plan lazily; fresh
  // statistics also make drifted statements plannable again.
  cache_.ClearDriftBlocks();
  monitor_.Reset();
}

void QueryService::PublishMetrics(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  admission_.PublishMetrics(metrics);
  cache_.PublishMetrics(metrics);
  monitor_.PublishMetrics(metrics);
  metrics->GetGauge("server.sessions.open")
      ->Set(static_cast<double>(sessions_.open_count()));
  metrics->GetGauge("server.sessions.opened_total")
      ->Set(static_cast<double>(sessions_.opened_total()));
  const auto sync = [metrics](const char* name, uint64_t value) {
    obs::Counter* counter = metrics->GetCounter(name);
    counter->Increment(value - counter->value());
  };
  sync("server.queries.completed", queries_completed_);
  sync("server.queries.failed", queries_failed_);
  metrics->GetGauge("stats.epoch")
      ->Set(static_cast<double>(db_->statistics()->epoch()));
  if (config_.flight_recorder.enabled) recorder_.PublishMetrics(metrics);
  if (config_.slo.enabled) slo_.PublishMetrics(metrics);
  feedback_.PublishMetrics(metrics);
  tuner_.PublishMetrics(metrics);
  // Gated on the runtime toggle so SET PROVENANCE OFF keeps the metric
  // byte stream identical to a pre-provenance build.
  provenance_.PublishMetrics(metrics);
  // Only multi-node builds have a coordinator; single-node keeps the
  // metric byte stream identical to a pre-cluster build.
  if (cluster_ != nullptr) cluster_->PublishMetrics(metrics);
}

}  // namespace server
}  // namespace robustqo
