#include "server/query_service.h"

#include <map>
#include <utility>

#include "obs/obs.h"
#include "perf/task_pool.h"
#include "util/string_util.h"

namespace robustqo {
namespace server {

/// Per-request state threaded through the scheduler's phases. Lives in a
/// ticket-keyed map so addresses stay stable across waves.
struct QueryService::PendingRequest {
  size_t index = 0;         ///< position in the batch (response slot)
  uint64_t ticket = 0;
  Session* session = nullptr;
  opt::QuerySpec spec;
  uint64_t fingerprint = 0;
  uint64_t waves_waited = 0;
  // -- plan phase --
  std::shared_ptr<const opt::PlannedQuery> plan;
  bool cache_hit = false;
  double effective_threshold = 0.0;
  uint64_t seed = 0;
  fault::GovernorLimits limits;
  // -- execute phase --
  Status exec_status = Status::OK();
  std::optional<core::ExecutionResult> result;
  std::unique_ptr<obs::MetricsRegistry> exec_metrics;
};

QueryService::QueryService(core::Database* db, ServerConfig config)
    : db_(db),
      config_(config),
      sessions_(config.seed),
      admission_(config.admission),
      cache_(config.plan_cache_capacity),
      monitor_(config.quality) {
  admission_.set_fault_injector(db_->fault_injector());
  cache_.set_fault_injector(db_->fault_injector());
}

SessionId QueryService::OpenSession(SessionOptions options) {
  return sessions_.Open(std::move(options));
}

Status QueryService::CloseSession(SessionId id) { return sessions_.Close(id); }

Status QueryService::Prepare(SessionId session_id, const std::string& name,
                             const std::string& sql) {
  Session* session = sessions_.Get(session_id);
  if (session == nullptr) {
    return Status::NotFound(StrPrintf(
        "no open session %llu", static_cast<unsigned long long>(session_id)));
  }
  Result<opt::QuerySpec> spec = db_->ParseSql(sql);
  if (!spec.ok()) return spec.status();
  PreparedStatement statement;
  statement.name = name;
  statement.sql = sql;
  statement.spec = std::move(spec).value();
  statement.fingerprint = FingerprintQuery(statement.spec);
  return session->Prepare(std::move(statement));
}

std::vector<QueryResponse> QueryService::ExecuteBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<QueryResponse> responses(requests.size());
  std::map<uint64_t, PendingRequest> pending;  // ticket -> request

  // Phase 1 — SUBMIT (sequential, request order). Requests that cannot
  // reach the queue (unknown session, parse error, unknown prepared
  // statement) and typed admission rejections resolve here.
  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryRequest& request = requests[i];
    QueryResponse& response = responses[i];
    response.session = request.session;
    Session* session = sessions_.Get(request.session);
    if (session == nullptr) {
      response.status = Status::NotFound(
          StrPrintf("no open session %llu",
                    static_cast<unsigned long long>(request.session)));
      continue;
    }
    session->CountSubmitted();
    PendingRequest work;
    work.index = i;
    work.session = session;
    if (!request.prepared.empty()) {
      const PreparedStatement* statement =
          session->FindPrepared(request.prepared);
      if (statement == nullptr) {
        response.status = Status::NotFound("no prepared statement '" +
                                           request.prepared + "'");
        session->CountFailed();
        continue;
      }
      work.spec = statement->spec;
      work.fingerprint = statement->fingerprint;
    } else if (request.spec.has_value()) {
      work.spec = *request.spec;
      work.fingerprint = FingerprintQuery(work.spec);
    } else {
      Result<opt::QuerySpec> spec = db_->ParseSql(request.sql);
      if (!spec.ok()) {
        response.status = spec.status();
        session->CountFailed();
        continue;
      }
      work.spec = std::move(spec).value();
      work.fingerprint = FingerprintQuery(work.spec);
    }
    response.fingerprint = work.fingerprint;
    uint64_t reservation = session->options().memory_reservation_bytes;
    if (reservation == 0) {
      reservation = session->options().governor_limits.memory_limit_bytes;
    }
    Result<uint64_t> ticket = admission_.Submit(request.session, reservation);
    if (!ticket.ok()) {
      response.status = ticket.status();
      session->CountRejected();
      continue;
    }
    work.ticket = ticket.value();
    response.ticket = work.ticket;
    pending.emplace(work.ticket, std::move(work));
  }

  // Snapshot the database injector's arming once per batch: every
  // per-request injector replays the same specs under its own seed.
  const std::vector<std::pair<std::string, fault::FaultSpec>> armed_specs =
      db_->fault_injector()->ArmedSpecs();

  while (!pending.empty()) {
    std::vector<AdmissionTicket> wave = admission_.AdmitWave();
    if (wave.empty()) {
      // Cannot happen with a correct controller (the head of a non-empty
      // queue is always admittable once in-flight drains); fail closed
      // rather than spinning.
      for (auto& [ticket, work] : pending) {
        responses[work.index].status =
            Status::Internal("admission wedged: no admissible request");
        work.session->CountFailed();
        ++queries_failed_;
      }
      break;
    }

    // Phase 2 — PLAN (sequential, admission order): plan-cache lookups and
    // optimizer runs share the database's single-threaded planning stack,
    // and per-request seeds are drawn here so they are scheduling-free.
    std::vector<PendingRequest*> running;
    running.reserve(wave.size());
    const uint64_t epoch = db_->statistics()->epoch();
    for (const AdmissionTicket& admitted : wave) {
      PendingRequest& work = pending.at(admitted.ticket);
      work.waves_waited = admitted.waves_waited;
      const SessionOptions& options = work.session->options();
      work.effective_threshold = options.confidence_threshold > 0.0
                                     ? options.confidence_threshold
                                     : db_->confidence_threshold();
      const PlanCacheKey key = PlanCacheKey::Make(
          work.fingerprint, work.effective_threshold, options.estimator);
      work.plan = cache_.Lookup(key, epoch);
      work.cache_hit = work.plan != nullptr;
      RQO_IF_OBS(tracer_) {
        tracer_->Event("server",
                       work.cache_hit ? "plan_cache.hit" : "plan_cache.miss",
                       {{"fingerprint",
                         StrPrintf("%016llx", static_cast<unsigned long long>(
                                                  work.fingerprint))},
                        {"epoch", obs::AttrU64(epoch)}});
      }
      if (work.plan == nullptr) {
        const double saved_threshold = db_->confidence_threshold();
        db_->SetConfidenceThreshold(work.effective_threshold);
        Result<opt::PlannedQuery> planned =
            db_->Plan(work.spec, options.estimator);
        db_->SetConfidenceThreshold(saved_threshold);
        if (!planned.ok()) {
          responses[work.index].status = planned.status();
          admission_.Complete(admitted.ticket);
          work.session->CountFailed();
          ++queries_failed_;
          pending.erase(admitted.ticket);
          continue;
        }
        work.plan = std::make_shared<const opt::PlannedQuery>(
            std::move(planned).value());
        cache_.Insert(key, work.plan, epoch);
      }
      work.seed = work.session->NextRequestSeed();
      work.limits = options.governor_limits;
      running.push_back(&work);
    }

    // Phase 3 — EXECUTE (parallel): pure per-request tasks writing to
    // pre-allocated slots. Each task gets a private governor, injector and
    // metrics shard; nothing in the database is touched.
    perf::TaskPool::Global()->ParallelFor(running.size(), [&](size_t i) {
      PendingRequest* work = running[i];
      fault::FaultInjector injector(work->seed);
      for (const auto& [site, spec] : armed_specs) injector.Arm(site, spec);
      fault::QueryGovernor governor(work->limits);
      exec::ExecContext ctx;
      ctx.catalog = db_->catalog();
      ctx.cost_model = db_->cost_model();
      ctx.governor = &governor;
      ctx.fault = &injector;
#if ROBUSTQO_OBS_ENABLED
      if (metrics_ != nullptr) {
        work->exec_metrics = std::make_unique<obs::MetricsRegistry>();
        ctx.metrics = work->exec_metrics.get();
        injector.set_metrics(work->exec_metrics.get());
      }
#endif
      Result<storage::Table> rows = work->plan->root->Run(&ctx);
#if ROBUSTQO_OBS_ENABLED
      governor.PublishMetrics(work->exec_metrics.get());
#endif
      if (!rows.ok()) {
        work->exec_status = rows.status();
        return;
      }
      const uint64_t spj_rows = ctx.aggregate_input_rows != UINT64_MAX
                                    ? ctx.aggregate_input_rows
                                    : rows.value().num_rows();
#if ROBUSTQO_OBS_ENABLED
      RQO_IF_OBS(work->exec_metrics) {
        work->exec_metrics->GetSketch("exec.query.simulated_seconds")
            ->Observe(ctx.meter.total_seconds());
        work->exec_metrics->GetSketch("exec.query.rows")
            ->Observe(static_cast<double>(rows.value().num_rows()));
        work->exec_metrics->GetSketch("exec.query.spj_rows")
            ->Observe(static_cast<double>(spj_rows));
      }
#endif
      work->result = core::ExecutionResult{std::move(rows).value(),
                                           ctx.meter.total_seconds(),
                                           ctx.meter,
                                           spj_rows,
                                           work->plan->estimated_cost,
                                           work->plan->label,
                                           work->plan->Explain(),
                                           governor.peak_memory_bytes(),
                                           governor.rows_charged()};
    });

    // Phase 4 — REDUCE (sequential, admission order): release admission
    // slots, merge metric shards, apply session tallies, and feed the
    // quality monitor.
    for (PendingRequest* work : running) {
      admission_.Complete(work->ticket);
      QueryResponse& response = responses[work->index];
      response.ticket = work->ticket;
      response.fingerprint = work->fingerprint;
      response.cache_hit = work->cache_hit;
      response.waves_waited = work->waves_waited;
#if ROBUSTQO_OBS_ENABLED
      if (metrics_ != nullptr && work->exec_metrics != nullptr) {
        metrics_->MergeFrom(*work->exec_metrics);
      }
#endif
      if (work->exec_status.ok()) {
        obs::QualityObservation observation;
        observation.fingerprint = work->fingerprint;
        observation.label = work->plan->label;
        observation.estimated_rows = work->plan->estimated_spj_rows;
        observation.actual_rows = static_cast<double>(work->result->spj_rows);
        observation.confidence_threshold = work->effective_threshold;
        monitor_.Record(observation);
        response.result = std::move(work->result);
        work->session->CountCompleted();
        ++queries_completed_;
      } else {
        response.status = work->exec_status;
        work->session->CountFailed();
        ++queries_failed_;
      }
      pending.erase(work->ticket);
    }

    // Drift hook: a fingerprint whose recent q-error regressed past the
    // monitor's factor loses its cached plans before the next wave — the
    // cache must not keep serving a plan chosen for data that moved.
    if (config_.invalidate_on_drift) {
      for (const obs::FingerprintQuality& drifted : monitor_.Drifted()) {
        if (cache_.IsDriftBlocked(drifted.fingerprint)) continue;
        const size_t evicted = cache_.InvalidateFingerprint(drifted.fingerprint);
        RQO_IF_OBS(tracer_) {
          tracer_->Event(
              "server", "plan_cache.drift_invalidated",
              {{"fingerprint",
                StrPrintf("%016llx", static_cast<unsigned long long>(
                                         drifted.fingerprint))},
               {"evicted", obs::AttrU64(evicted)},
               {"drift_ratio", StrPrintf("%.2f", drifted.drift_ratio)}});
        }
      }
    }
  }
  return responses;
}

QueryResponse QueryService::ExecutePrepared(SessionId session,
                                            const std::string& name) {
  std::vector<QueryResponse> responses =
      ExecuteBatch({QueryRequest::Prepared(session, name)});
  return std::move(responses[0]);
}

QueryResponse QueryService::ExecuteSql(SessionId session,
                                       const std::string& sql) {
  std::vector<QueryResponse> responses =
      ExecuteBatch({QueryRequest::Sql(session, sql)});
  return std::move(responses[0]);
}

QueryResponse QueryService::ExecuteSpec(SessionId session,
                                        opt::QuerySpec spec) {
  std::vector<QueryResponse> responses =
      ExecuteBatch({QueryRequest::Spec(session, std::move(spec))});
  return std::move(responses[0]);
}

void QueryService::UpdateStatistics(const stats::StatisticsConfig& config) {
  db_->UpdateStatistics(config);
  // The epoch bump already invalidates every cached plan lazily; fresh
  // statistics also make drifted statements plannable again.
  cache_.ClearDriftBlocks();
  monitor_.Reset();
}

void QueryService::PublishMetrics(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  admission_.PublishMetrics(metrics);
  cache_.PublishMetrics(metrics);
  monitor_.PublishMetrics(metrics);
  metrics->GetGauge("server.sessions.open")
      ->Set(static_cast<double>(sessions_.open_count()));
  metrics->GetGauge("server.sessions.opened_total")
      ->Set(static_cast<double>(sessions_.opened_total()));
  const auto sync = [metrics](const char* name, uint64_t value) {
    obs::Counter* counter = metrics->GetCounter(name);
    counter->Increment(value - counter->value());
  };
  sync("server.queries.completed", queries_completed_);
  sync("server.queries.failed", queries_failed_);
  metrics->GetGauge("stats.epoch")
      ->Set(static_cast<double>(db_->statistics()->epoch()));
}

}  // namespace server
}  // namespace robustqo
