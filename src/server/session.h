// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Sessions: the per-client state of the concurrent query service. A
// session carries the knobs a DBA or application sets per connection —
// the confidence threshold T% (the paper's one robustness knob), the
// estimator kind, per-query governor budgets — plus a deterministic
// seeded RNG stream that derives one independent seed per request (the
// same splitmix64-over-index scheme perf::TaskSeed uses), so a
// multi-session run is replayable bit-for-bit from (service seed,
// session id, request ordinal) alone.
//
// Like the rest of the engine, sessions are single-writer state: the
// QueryService mutates them only from its coordinator thread (the
// sequential phases of the scheduler), never from pool workers.

#ifndef ROBUSTQO_SERVER_SESSION_H_
#define ROBUSTQO_SERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "fault/governor.h"
#include "optimizer/query.h"
#include "sql/parser.h"
#include "util/status.h"

namespace robustqo {
namespace server {

using SessionId = uint64_t;

/// Per-connection knobs, fixed at session open.
struct SessionOptions {
  /// Diagnostic label shown in `.sessions`; defaults to "session-<id>".
  std::string name;
  /// Per-session T%; 0 inherits the database's system-wide threshold.
  /// Part of the plan-cache key: two sessions at different T% never share
  /// a cached plan (the paper's whole point is that T changes the plan).
  double confidence_threshold = 0.0;
  core::EstimatorKind estimator = core::EstimatorKind::kRobustSample;
  /// Per-query budgets enforced by this session's query governors.
  fault::GovernorLimits governor_limits;
  /// Bytes the admission controller reserves against the shared memory
  /// budget while one of this session's queries runs. 0 falls back to the
  /// governor memory limit, then to the admission default.
  uint64_t memory_reservation_bytes = 0;
};

/// A statement registered with PREPARE, ready for repeated EXECUTE.
/// Queries and DML both prepare; `kind` says which payload is valid.
struct PreparedStatement {
  std::string name;
  std::string sql;
  robustqo::sql::StatementKind kind = robustqo::sql::StatementKind::kQuery;
  opt::QuerySpec spec;           ///< valid when kind == kQuery
  robustqo::sql::DmlSpec dml;    ///< valid otherwise
  /// Canonical statement fingerprint (plan_cache.h) — the plan-cache and
  /// quality-monitor key for every execution of this statement. DML
  /// statements fingerprint their text (they never hit the plan cache).
  uint64_t fingerprint = 0;

  bool is_dml() const { return kind != robustqo::sql::StatementKind::kQuery; }
};

/// Read-only snapshot of one session for reports and metrics.
struct SessionInfo {
  SessionId id = 0;
  std::string name;
  double confidence_threshold = 0.0;  ///< 0 = inherits the system default
  uint64_t prepared_statements = 0;
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t rejected = 0;
};

class Session {
 public:
  Session(SessionId id, SessionOptions options, uint64_t seed);

  SessionId id() const { return id_; }
  const SessionOptions& options() const { return options_; }
  /// Display label ("session-<id>" unless the options named it) — the key
  /// the SLO monitor's per-session scopes and trace lanes use.
  const std::string& name() const { return options_.name; }
  uint64_t seed() const { return seed_; }

  /// Seed for this session's next request: an independent splitmix64
  /// stream over the request ordinal, independent of scheduling.
  uint64_t NextRequestSeed();

  // -- Prepared statements (per-session namespace) --
  Status Prepare(PreparedStatement statement);
  const PreparedStatement* FindPrepared(const std::string& name) const;
  Status Deallocate(const std::string& name);
  const std::map<std::string, PreparedStatement>& prepared() const {
    return prepared_;
  }

  // -- Outcome tallies (maintained by the QueryService coordinator) --
  void CountSubmitted() { ++submitted_; }
  void CountCompleted() { ++completed_; }
  void CountFailed() { ++failed_; }
  void CountRejected() { ++rejected_; }

  SessionInfo Info() const;

 private:
  SessionId id_;
  SessionOptions options_;
  uint64_t seed_;
  uint64_t request_ordinal_ = 0;
  std::map<std::string, PreparedStatement> prepared_;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t rejected_ = 0;
};

/// Owns all sessions of one QueryService. Session ids are dense and
/// monotonically increasing, so a run's session layout is a pure function
/// of the open/close sequence.
class SessionManager {
 public:
  explicit SessionManager(uint64_t base_seed = 0);

  /// Opens a session; never fails (ids are unbounded).
  SessionId Open(SessionOptions options = {});
  /// kNotFound when the id was never opened or already closed.
  Status Close(SessionId id);

  /// Borrowed pointer, nullptr when closed/unknown.
  Session* Get(SessionId id);
  const Session* Get(SessionId id) const;

  size_t open_count() const { return sessions_.size(); }
  uint64_t opened_total() const { return next_id_ - 1; }

  /// Snapshots ordered by session id (deterministic).
  std::vector<SessionInfo> Snapshot() const;

  /// Aligned text table for the shell's `.sessions`.
  std::string ReportText() const;

 private:
  uint64_t base_seed_;
  SessionId next_id_ = 1;
  std::map<SessionId, std::unique_ptr<Session>> sessions_;
};

}  // namespace server
}  // namespace robustqo

#endif  // ROBUSTQO_SERVER_SESSION_H_
