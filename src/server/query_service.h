// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// QueryService: the concurrent serving layer tying the server subsystem
// together. Clients open sessions, PREPARE statements, and submit batches
// of requests; the service runs them through admission control, a
// drift-aware plan cache, and a deterministic parallel scheduler on
// perf::TaskPool.
//
// The scheduler is wave-based, the repo's standard recipe for parallelism
// without nondeterminism:
//
//   1. SUBMIT (sequential): requests enter the admission queue in request
//      order; typed rejections (queue full, load shedding) are decided
//      here.
//   2. PLAN (sequential): each admitted request resolves its plan — plan
//      cache lookup keyed by (statement fingerprint, effective T%,
//      estimator, statistics epoch), falling back to the optimizer on a
//      miss. Planning shares the Database's single-threaded optimizer, so
//      it stays on the coordinator; per-request seeds are drawn here, in
//      admission order, so they never depend on execution timing.
//   3. EXECUTE (parallel): admitted read plans run concurrently, one
//      TaskPool task per request, each against its own ExecContext,
//      QueryGovernor, MetricsRegistry shard and FaultInjector (re-armed
//      from the database injector's specs, reseeded from the request
//      seed). Every read in the wave is pinned to the snapshot (data)
//      epoch captured at wave start, so concurrent writes never change
//      what a wave's reads see. Results land in pre-allocated slots.
//   4. REDUCE (sequential): DML requests apply here, in admission order,
//      each staging and committing atomically against the latest state
//      (bumping the data epoch on success — later waves see it, this
//      wave's reads did not). Then completions, session tallies, metric
//      merges and estimation-quality feedback are applied in admission
//      order; fingerprints the quality monitor flags as drifted have
//      their cached plans invalidated, drifted tables are flagged for
//      statistics rebuild, and — when background_rebuild is on — flagged
//      tables (drift or committed-write volume) are rebuilt before the
//      next wave, bumping the statistics epoch so stale cached plans and
//      drift blocks clear themselves lazily.
//
// Every client-visible artifact — responses, reports, merged metrics — is
// byte-identical at any RQO_THREADS setting: reads are pure against a
// pinned snapshot, and every mutation (writes, epoch bumps, rebuilds)
// happens in a sequential phase in admission order.

#ifndef ROBUSTQO_SERVER_QUERY_SERVICE_H_
#define ROBUSTQO_SERVER_QUERY_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/coordinator.h"
#include "core/database.h"
#include "learning/feedback_store.h"
#include "learning/tpercent_tuner.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/plan_provenance.h"
#include "obs/quality_monitor.h"
#include "obs/slo_monitor.h"
#include "obs/trace.h"
#include "server/admission.h"
#include "server/plan_cache.h"
#include "server/session.h"
#include "util/status.h"

namespace robustqo {
namespace server {

/// Service-wide configuration.
struct ServerConfig {
  /// Root of the deterministic seed tree: session request seeds and
  /// per-request fault-injector streams all derive from it.
  uint64_t seed = 42;
  AdmissionConfig admission;
  size_t plan_cache_capacity = 64;
  /// Drift detection for cached-plan invalidation.
  obs::QualityMonitorConfig quality;
  /// When false the quality monitor still records, but drifted
  /// fingerprints are not auto-invalidated.
  bool invalidate_on_drift = true;
  /// When true, tables flagged stale by online statistics maintenance —
  /// enough committed modifications, or a drift flag from the quality
  /// monitor — are rebuilt at the end of the wave, bumping the statistics
  /// epoch (which lazily invalidates stale cached plans and lifts drift
  /// blocks). No manual UPDATE STATISTICS needed under write traffic.
  bool background_rebuild = true;
  /// Black-box retention of interesting request traces. Requests are only
  /// traced while `flight_recorder.enabled` (and observability is
  /// compiled in); the recorder itself always exists for introspection.
  obs::FlightRecorderConfig flight_recorder;
  /// Latency/regret watchdog; recording sites compile out with obs.
  obs::SloMonitorConfig slo;
  /// Learned selectivity corrections: the reduce phase feeds each executed
  /// read's actual selectivity into a FeedbackStore the robust estimator
  /// consults at plan time. SET LEARNING OFF (SetLearningEnabled(false))
  /// reproduces the pre-learning estimates bit-for-bit.
  learn::LearningConfig learning;
  /// Regret-driven per-fingerprint T% retuning from the SloMonitor's
  /// realized-regret scopes (between waves, sequential).
  learn::TunerConfig tpercent;
  /// Plan-choice provenance: every plan resolved by the optimizer (cache
  /// misses of any flavor) files a sensitivity record, and a re-planned
  /// fingerprint files a plan-diff record with its trigger. Strictly
  /// read-only w.r.t. plan choice; SET PROVENANCE OFF
  /// (SetProvenanceEnabled(false)) reproduces the pre-provenance metric
  /// and trace bytes.
  obs::PlanProvenanceConfig provenance;
  /// Runner-up candidates retained per sensitivity record.
  size_t provenance_top_k = 3;
  /// Multi-node scatter-gather execution. With nodes=1 and enabled=false
  /// (the default) no coordinator exists at all and the serving path is
  /// byte-identical to the pre-cluster build; RQO_NODES and the shell's
  /// SET NODES raise the node count.
  cluster::ClusterConfig cluster;
};

/// One client request: EXECUTE of a prepared statement (when `prepared`
/// is non-empty), a pre-parsed query spec, or a one-shot SQL statement.
struct QueryRequest {
  SessionId session = 0;
  std::string prepared;
  std::string sql;
  /// Pre-parsed one-shot query (harnesses that build QuerySpecs directly).
  std::optional<opt::QuerySpec> spec;

  static QueryRequest Prepared(SessionId session, std::string name) {
    QueryRequest r;
    r.session = session;
    r.prepared = std::move(name);
    return r;
  }
  static QueryRequest Sql(SessionId session, std::string sql) {
    QueryRequest r;
    r.session = session;
    r.sql = std::move(sql);
    return r;
  }
  static QueryRequest Spec(SessionId session, opt::QuerySpec spec) {
    QueryRequest r;
    r.session = session;
    r.spec = std::move(spec);
    return r;
  }
};

/// Outcome of one request, in the batch's request order.
struct QueryResponse {
  SessionId session = 0;
  /// Admission ticket; 0 when the request never reached the queue
  /// (unknown session, parse error, unknown prepared statement).
  uint64_t ticket = 0;
  /// OK, or the typed rejection/planning/execution failure.
  Status status = Status::OK();
  /// Engaged only when status is OK and the request was a query.
  std::optional<core::ExecutionResult> result;
  /// Engaged only when status is OK and the request was INSERT/UPDATE/
  /// DELETE: rows affected, the published data epoch, commit retries.
  std::optional<exec::DmlResult> dml;
  /// Statement fingerprint (0 when the request failed before planning).
  uint64_t fingerprint = 0;
  /// Whether the plan came from the cache.
  bool cache_hit = false;
  /// Scheduling waves spent queued before admission (backpressure felt).
  uint64_t waves_waited = 0;
  /// Dense service-wide request ordinal (1-based), assigned at submit in
  /// request order — the id flight-recorder dumps key their lanes by.
  /// Assigned even to requests that never reach the admission queue.
  uint64_t request_id = 0;
};

class QueryService {
 public:
  /// `db` is borrowed and must outlive the service. The service arms
  /// per-request fault injectors from `db->fault_injector()`'s specs and
  /// reads the statistics epoch from `db->statistics()`.
  QueryService(core::Database* db, ServerConfig config = {});
  /// Uninstalls the feedback store from the database's robust estimator
  /// (the estimator must not dangle into a destroyed service).
  ~QueryService();

  core::Database* database() { return db_; }
  const ServerConfig& config() const { return config_; }

  // ---- Sessions ----
  SessionId OpenSession(SessionOptions options = {});
  Status CloseSession(SessionId id);
  SessionManager* sessions() { return &sessions_; }

  /// Parses and registers `sql` under `name` in the session, computing the
  /// statement fingerprint that keys the plan cache and quality monitor.
  Status Prepare(SessionId session, const std::string& name,
                 const std::string& sql);

  // ---- Execution ----

  /// Runs a batch through the wave scheduler. Responses are positionally
  /// aligned with `requests` and byte-for-byte independent of RQO_THREADS.
  std::vector<QueryResponse> ExecuteBatch(
      const std::vector<QueryRequest>& requests);

  /// Single-request conveniences (a batch of one).
  QueryResponse ExecutePrepared(SessionId session, const std::string& name);
  QueryResponse ExecuteSql(SessionId session, const std::string& sql);
  QueryResponse ExecuteSpec(SessionId session, opt::QuerySpec spec);

  // ---- Statistics lifecycle ----

  /// UPDATE STATISTICS through the service: rebuilds the database's
  /// statistics (bumping the epoch, which invalidates every cached plan)
  /// and lifts drift blocks + resets drift profiles, since fresh
  /// statistics make the drifted statements plannable again.
  void UpdateStatistics(const stats::StatisticsConfig& config = {});

  // ---- Introspection ----
  AdmissionController* admission() { return &admission_; }
  PlanCache* plan_cache() { return &cache_; }
  obs::EstimationQualityMonitor* quality_monitor() { return &monitor_; }
  /// The black box: retained request traces (empty unless
  /// config().flight_recorder.enabled and observability is compiled in).
  obs::FlightRecorder* flight_recorder() { return &recorder_; }
  /// The latency/regret watchdog (records nothing when disabled or when
  /// observability is compiled out).
  obs::SloMonitor* slo_monitor() { return &slo_; }
  /// The learning subsystem: learned selectivity corrections (installed on
  /// the database's robust estimator) and the regret-driven T% tuner.
  learn::FeedbackStore* feedback_store() { return &feedback_; }
  learn::TPercentTuner* tpercent_tuner() { return &tuner_; }
  /// The plan-choice observatory: provenance + plan-diff records (the
  /// shell's `.whyplan`).
  obs::PlanProvenanceStore* provenance() { return &provenance_; }
  const obs::PlanProvenanceStore* provenance() const { return &provenance_; }
  /// The cluster coordinator; nullptr when serving single-node (the
  /// pre-cluster path).
  cluster::Coordinator* cluster() { return cluster_.get(); }
  const cluster::Coordinator* cluster() const { return cluster_.get(); }

  /// The shell's `.cluster` view. Byte-identical at any RQO_THREADS for a
  /// given node count and workload.
  std::string ClusterReportText() const;

  /// Toggles provenance capture and recording (the shell's SET PROVENANCE
  /// ON|OFF). Off reproduces pre-provenance metrics/traces byte-for-byte;
  /// accumulated records are kept and resume on re-enable.
  void SetProvenanceEnabled(bool enabled) { provenance_.set_enabled(enabled); }
  bool provenance_enabled() const { return provenance_.enabled(); }
  void SetProvenanceTopK(size_t top_k) { config_.provenance_top_k = top_k; }

  /// Toggles the whole learning loop (the shell's SET LEARNING ON|OFF):
  /// feedback recording, learned estimator corrections, and T% retuning.
  /// Off reproduces the pre-learning estimates bit-for-bit; accumulated
  /// evidence and overrides are kept and resume on re-enable.
  void SetLearningEnabled(bool enabled);
  bool learning_enabled() const { return feedback_.enabled(); }

  /// The shell's `.learning` view: the feedback store's and the tuner's
  /// report blocks. Byte-identical at any RQO_THREADS setting.
  std::string LearningReportText() const;

  uint64_t queries_completed() const { return queries_completed_; }
  uint64_t queries_failed() const { return queries_failed_; }

  /// Publishes the server.* family (admission, plan cache, sessions,
  /// stats.epoch) plus the quality monitor's gauges into `metrics`
  /// (no-op on null). Idempotent.
  void PublishMetrics(obs::MetricsRegistry* metrics) const;

  /// Observability sinks (borrowed, nullable). Per-request execution
  /// metrics are merged into `metrics` in admission order during the
  /// reduce phase; the tracer receives plan-cache and admission events
  /// from the sequential phases.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct PendingRequest;

  /// Whether per-request tracing is materialized (recorder enabled and
  /// observability compiled in).
  bool TracingEnabled() const;

  /// Applies one DML request against the latest state (sequential reduce
  /// phase only). Fills the request's exec_status / dml_result and its
  /// governor/fault/trace bookkeeping.
  void ExecuteDmlWork(
      PendingRequest* work,
      const std::vector<std::pair<std::string, fault::FaultSpec>>&
          armed_specs);
  /// Adds one fault fire to a request's running total and stamps the
  /// request trace. Every phase (PLAN, EXECUTE, REDUCE) funnels through
  /// this so fires accumulate instead of overwriting each other.
  static void NoteRequestFaultFire(PendingRequest* work, const char* site);
  /// Finalizes and offers the trace of a request that died before the
  /// execute phase (submit-time rejections, plan failures). `fault_fires`
  /// carries fires already counted for the request (e.g. a degraded
  /// plan-cache lookup before a planning failure) into the trace.
  void OfferAbortedTrace(obs::Tracer* tracer, uint64_t root_span,
                         uint64_t request_id, SessionId session_id,
                         const std::string& session_label, uint64_t ticket,
                         uint64_t fingerprint, const std::string& cache_outcome,
                         uint64_t waves_waited, uint64_t fault_fires,
                         const Status& status);

  /// Files the provenance (and, on a re-plan, plan-diff) record for a
  /// freshly optimized plan. Sequential PLAN phase only.
  void RecordProvenance(const PendingRequest& work, const PlanCacheKey& key,
                        uint64_t epoch, PlanCacheOutcome outcome);

  core::Database* db_;
  ServerConfig config_;
  SessionManager sessions_;
  AdmissionController admission_;
  PlanCache cache_;
  obs::EstimationQualityMonitor monitor_;
  obs::FlightRecorder recorder_;
  obs::SloMonitor slo_;
  learn::FeedbackStore feedback_;
  learn::TPercentTuner tuner_;
  obs::PlanProvenanceStore provenance_;
  std::unique_ptr<cluster::Coordinator> cluster_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  uint64_t queries_completed_ = 0;
  uint64_t queries_failed_ = 0;
  uint64_t next_request_id_ = 0;
  /// Tables each read fingerprint touches, recorded at plan time — the
  /// drift hook uses it to flag the right tables for statistics rebuild.
  std::map<uint64_t, std::set<std::string>> fingerprint_tables_;
};

}  // namespace server
}  // namespace robustqo

#endif  // ROBUSTQO_SERVER_QUERY_SERVICE_H_
