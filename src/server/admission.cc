#include "server/admission.h"

#include <algorithm>

#include "util/string_util.h"

namespace robustqo {
namespace server {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

Result<uint64_t> AdmissionController::Submit(SessionId session,
                                             uint64_t reservation_bytes) {
  ++stats_.submitted;
  if (fault_ != nullptr) {
    Status shed = fault_->Check(fault::sites::kAdmissionEnqueue);
    if (!shed.ok()) {
      ++stats_.rejected_fault;
      return shed;
    }
  }
  if (config_.max_queue_depth > 0 && queue_.size() >= config_.max_queue_depth) {
    ++stats_.rejected_queue_full;
    return Status::ResourceExhausted(
        StrPrintf("admission queue full (%zu queued, limit %zu)",
                  queue_.size(), config_.max_queue_depth));
  }
  AdmissionTicket ticket;
  ticket.ticket = next_ticket_++;
  ticket.session = session;
  ticket.reservation_bytes = reservation_bytes > 0
                                 ? reservation_bytes
                                 : config_.default_reservation_bytes;
  queue_.push_back(ticket);
  stats_.peak_queue_depth = std::max<uint64_t>(stats_.peak_queue_depth,
                                               queue_.size());
  return ticket.ticket;
}

std::vector<AdmissionTicket> AdmissionController::AdmitWave() {
  ++stats_.waves;
  std::vector<AdmissionTicket> admitted;
  while (!queue_.empty()) {
    const AdmissionTicket& head = queue_.front();
    if (config_.max_concurrent > 0 &&
        in_flight_.size() >= config_.max_concurrent) {
      break;
    }
    if (config_.memory_budget_bytes > 0 &&
        memory_reserved_ + head.reservation_bytes >
            config_.memory_budget_bytes &&
        // A reservation larger than the whole budget would never fit; admit
        // it alone rather than wedging the queue forever.
        !(in_flight_.empty() &&
          head.reservation_bytes > config_.memory_budget_bytes)) {
      break;
    }
    AdmissionTicket ticket = head;
    queue_.pop_front();
    memory_reserved_ += ticket.reservation_bytes;
    in_flight_.push_back(ticket);
    admitted.push_back(ticket);
    ++stats_.admitted;
    if (ticket.waves_waited > 0) ++stats_.waited;
  }
  for (AdmissionTicket& waiting : queue_) ++waiting.waves_waited;
  stats_.peak_in_flight =
      std::max<uint64_t>(stats_.peak_in_flight, in_flight_.size());
  stats_.peak_memory_reserved =
      std::max(stats_.peak_memory_reserved, memory_reserved_);
  return admitted;
}

Status AdmissionController::Complete(uint64_t ticket) {
  for (auto it = in_flight_.begin(); it != in_flight_.end(); ++it) {
    if (it->ticket == ticket) {
      memory_reserved_ -= it->reservation_bytes;
      in_flight_.erase(it);
      ++stats_.completed;
      return Status::OK();
    }
  }
  return Status::NotFound(StrPrintf(
      "ticket %llu is not in flight", static_cast<unsigned long long>(ticket)));
}

void AdmissionController::PublishMetrics(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->GetCounter("server.admission.submitted")
      ->Increment(stats_.submitted -
                  metrics->GetCounter("server.admission.submitted")->value());
  metrics->GetCounter("server.admission.admitted")
      ->Increment(stats_.admitted -
                  metrics->GetCounter("server.admission.admitted")->value());
  metrics->GetCounter("server.admission.rejected.queue_full")
      ->Increment(
          stats_.rejected_queue_full -
          metrics->GetCounter("server.admission.rejected.queue_full")->value());
  metrics->GetCounter("server.admission.rejected.fault")
      ->Increment(
          stats_.rejected_fault -
          metrics->GetCounter("server.admission.rejected.fault")->value());
  metrics->GetCounter("server.admission.completed")
      ->Increment(stats_.completed -
                  metrics->GetCounter("server.admission.completed")->value());
  metrics->GetCounter("server.admission.waited")
      ->Increment(stats_.waited -
                  metrics->GetCounter("server.admission.waited")->value());
  metrics->GetCounter("server.admission.waves")
      ->Increment(stats_.waves -
                  metrics->GetCounter("server.admission.waves")->value());
  metrics->GetGauge("server.admission.queue_depth")
      ->Set(static_cast<double>(queue_.size()));
  metrics->GetGauge("server.admission.in_flight")
      ->Set(static_cast<double>(in_flight_.size()));
  metrics->GetGauge("server.admission.memory_reserved_bytes")
      ->Set(static_cast<double>(memory_reserved_));
  metrics->GetGauge("server.admission.peak_in_flight")
      ->Set(static_cast<double>(stats_.peak_in_flight));
  metrics->GetGauge("server.admission.peak_queue_depth")
      ->Set(static_cast<double>(stats_.peak_queue_depth));
}

std::string AdmissionController::ReportText() const {
  std::string out;
  out += StrPrintf("admission: %zu in flight (cap %zu), %zu queued (cap %zu)\n",
                   in_flight_.size(), config_.max_concurrent, queue_.size(),
                   config_.max_queue_depth);
  out += StrPrintf(
      "  memory reserved %llu / %llu bytes\n",
      static_cast<unsigned long long>(memory_reserved_),
      static_cast<unsigned long long>(config_.memory_budget_bytes));
  out += StrPrintf(
      "  submitted=%llu admitted=%llu completed=%llu waited=%llu\n",
      static_cast<unsigned long long>(stats_.submitted),
      static_cast<unsigned long long>(stats_.admitted),
      static_cast<unsigned long long>(stats_.completed),
      static_cast<unsigned long long>(stats_.waited));
  out += StrPrintf(
      "  rejected: queue_full=%llu fault=%llu\n",
      static_cast<unsigned long long>(stats_.rejected_queue_full),
      static_cast<unsigned long long>(stats_.rejected_fault));
  out += StrPrintf(
      "  peaks: in_flight=%llu queue_depth=%llu memory=%llu bytes\n",
      static_cast<unsigned long long>(stats_.peak_in_flight),
      static_cast<unsigned long long>(stats_.peak_queue_depth),
      static_cast<unsigned long long>(stats_.peak_memory_reserved));
  return out;
}

}  // namespace server
}  // namespace robustqo
