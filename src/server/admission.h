// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Admission control: the gate between accepted requests and the executor.
// Beyond the per-query budgets fault::QueryGovernor enforces *inside* a
// running query, the admission controller enforces the two *global* limits
// a serving system needs: a concurrency cap (at most `max_concurrent`
// queries execute at once) and a shared memory budget (the sum of admitted
// reservations never exceeds `memory_budget_bytes`).
//
// Requests enter a strict-FIFO queue. Admission never overtakes: when the
// request at the head does not fit (slots or memory), nothing behind it is
// admitted either. That costs some utilisation but buys the two properties
// the tests pin down — no starvation (every queued request is admitted
// after finitely many completions) and determinism (the admitted set of
// each scheduling wave is a pure function of the submission order).
//
// Rejections are typed: a full queue rejects with kResourceExhausted, and
// the `server.admission.enqueue` fault site (load shedding, dropped
// connections) rejects with the armed status, kUnavailable by default.

#ifndef ROBUSTQO_SERVER_ADMISSION_H_
#define ROBUSTQO_SERVER_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "server/session.h"
#include "util/status.h"

namespace robustqo {
namespace server {

/// Global serving limits; 0 disables the corresponding limit.
struct AdmissionConfig {
  /// Queries executing at once. 0 = unlimited (bounded only by the batch).
  size_t max_concurrent = 4;
  /// Requests waiting for a slot before new submissions are rejected with
  /// kResourceExhausted. 0 = unbounded queue.
  size_t max_queue_depth = 64;
  /// Shared memory budget across all in-flight queries' reservations.
  /// 0 = unlimited.
  uint64_t memory_budget_bytes = 0;
  /// Reservation charged for a request whose session specifies none.
  uint64_t default_reservation_bytes = 1ull << 20;
};

/// Backpressure counters, exported as server.admission.* metrics.
struct AdmissionStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_fault = 0;
  uint64_t completed = 0;
  /// Requests that spent at least one scheduling wave queued — the
  /// backpressure signal.
  uint64_t waited = 0;
  uint64_t peak_queue_depth = 0;
  uint64_t peak_in_flight = 0;
  uint64_t peak_memory_reserved = 0;
  /// Scheduling waves popped over the controller's lifetime — the wave
  /// ordinal a request's trace records at admission.
  uint64_t waves = 0;
};

/// One queued/admitted request, identified by its dense ticket number.
struct AdmissionTicket {
  uint64_t ticket = 0;
  SessionId session = 0;
  uint64_t reservation_bytes = 0;
  /// Scheduling waves this request waited in the queue before admission.
  uint64_t waves_waited = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  const AdmissionConfig& config() const { return config_; }

  /// Enqueues a request for `session` reserving `reservation_bytes`
  /// (0 falls back to the config default). Probes the
  /// server.admission.enqueue fault site first, then the queue-depth
  /// limit. Returns the request's ticket number.
  Result<uint64_t> Submit(SessionId session, uint64_t reservation_bytes = 0);

  /// Pops the next wave of admitted requests: head-of-queue requests, in
  /// FIFO order, while a concurrency slot and the memory budget allow.
  /// Stops at the first request that does not fit. Also counts a wave of
  /// waiting for every request left queued.
  std::vector<AdmissionTicket> AdmitWave();

  /// Releases `ticket`'s slot and memory reservation.
  Status Complete(uint64_t ticket);

  size_t queue_depth() const { return queue_.size(); }
  size_t in_flight() const { return in_flight_.size(); }
  uint64_t memory_reserved() const { return memory_reserved_; }
  const AdmissionStats& stats() const { return stats_; }

  /// Fault injector probed at server.admission.enqueue (borrowed,
  /// nullable = never sheds load).
  void set_fault_injector(fault::FaultInjector* fault) { fault_ = fault; }

  /// Publishes server.admission.* counters and gauges (no-op on null).
  void PublishMetrics(obs::MetricsRegistry* metrics) const;

  /// Aligned text summary for the shell and reports.
  std::string ReportText() const;

 private:
  AdmissionConfig config_;
  fault::FaultInjector* fault_ = nullptr;
  uint64_t next_ticket_ = 1;
  std::deque<AdmissionTicket> queue_;
  std::vector<AdmissionTicket> in_flight_;  // ordered by admission
  uint64_t memory_reserved_ = 0;
  AdmissionStats stats_;
};

}  // namespace server
}  // namespace robustqo

#endif  // ROBUSTQO_SERVER_ADMISSION_H_
