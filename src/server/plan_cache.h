// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// PlanCache: the PREPARE/EXECUTE plan store of the query service. Entries
// are keyed by (canonical statement fingerprint, confidence threshold T%,
// estimator kind) — the three inputs that change which plan the robust
// optimizer picks — and each entry remembers the statistics epoch it was
// planned under. A lookup whose entry predates the current epoch discards
// it (UPDATE STATISTICS invalidates every cached plan with one integer
// bump), and fingerprints the estimation-quality monitor flags as drifted
// are both evicted and blocked from re-insertion until statistics are
// rebuilt: a plan chosen for a distribution the data no longer follows is
// exactly the brittleness the paper's Section 5 guards against, so the
// cache refuses to keep serving it. Drift blocks are epoch-scoped: each
// records the statistics epoch it was placed under, and the first lookup
// or insert at a later epoch lifts it automatically — so a background
// statistics rebuild re-opens the cache to the drifted statements without
// anyone calling ClearDriftBlocks().
//
// Bounded LRU, same list+index shape as perf::InverseBetaCache. Lookups
// probe the server.plan_cache.lookup fault site and degrade a fired probe
// to a miss (re-planning is always safe); the degradation is counted, not
// hidden. Not thread-safe — the QueryService uses it only from its
// sequential planning phase.

#ifndef ROBUSTQO_SERVER_PLAN_CACHE_H_
#define ROBUSTQO_SERVER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "core/database.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "optimizer/plan.h"
#include "optimizer/query.h"

namespace robustqo {
namespace server {

/// Canonical 64-bit fingerprint of a whole QuerySpec: table set, per-table
/// predicates (via perf::FingerprintExpr, so AND/OR child order never
/// splits the cache), aggregates, grouping, projection, ORDER BY and
/// LIMIT. Table order in the FROM list is canonicalised away; everything
/// semantically significant feeds the hash. Stable across processes.
uint64_t FingerprintQuery(const opt::QuerySpec& query);

/// Fingerprint of a raw statement's text (same mixing primitives, distinct
/// domain tag). DML statements never hit the plan cache, but traces, the
/// SLO monitor and the flight recorder still key their lanes by
/// fingerprint, so writes get one too.
uint64_t FingerprintStatementText(const std::string& statement);

/// Cache key: fingerprint plus the planning knobs that select the plan.
struct PlanCacheKey {
  uint64_t fingerprint = 0;
  /// Bit pattern of the effective T% — two sessions at different
  /// thresholds must never share a plan.
  uint64_t threshold_bits = 0;
  int estimator = 0;

  static PlanCacheKey Make(uint64_t fingerprint, double threshold,
                           core::EstimatorKind kind);

  bool operator<(const PlanCacheKey& o) const {
    return std::tie(fingerprint, threshold_bits, estimator) <
           std::tie(o.fingerprint, o.threshold_bits, o.estimator);
  }
};

/// Hit/miss/invalidations, exported as perf.cache.plan.* metrics.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions_lru = 0;
  uint64_t invalidated_epoch = 0;
  uint64_t invalidated_drift = 0;
  /// Lookups the fault site degraded to misses (also counted in misses).
  uint64_t degraded_fault = 0;
  /// Insertions refused because the fingerprint is drift-blocked.
  uint64_t rejected_drifted = 0;
  /// Drift blocks lifted automatically because the statistics epoch moved
  /// past the epoch the block was placed under.
  uint64_t drift_blocks_lifted = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Why a lookup resolved the way it did — the plan-cache attribute a
/// request's trace records (a postmortem cares whether a "miss" was a
/// cold cache, stale statistics, a drift block or a degraded shard).
enum class PlanCacheOutcome {
  kHit,
  kMiss,
  kStaleEpoch,     ///< entry existed but predated `current_epoch`
  kDriftBlocked,   ///< fingerprint blocked by the quality monitor
  kDegradedFault,  ///< server.plan_cache.lookup fault fired
};

const char* PlanCacheOutcomeName(PlanCacheOutcome outcome);

class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 64);

  size_t capacity() const { return capacity_; }
  size_t size() const { return lru_.size(); }

  /// The cached plan for `key` if present, planned at `current_epoch`, and
  /// not drift-blocked; nullptr on miss. An entry from an older epoch is
  /// dropped (counted as invalidated_epoch). Probes the
  /// server.plan_cache.lookup fault site first; a firing degrades to a
  /// miss. A hit refreshes the entry's LRU position.
  std::shared_ptr<const opt::PlannedQuery> Lookup(const PlanCacheKey& key,
                                                  uint64_t current_epoch);

  /// Lookup plus the typed outcome (never null `outcome`). All non-hit
  /// outcomes count as misses in stats(), as before.
  std::shared_ptr<const opt::PlannedQuery> LookupEx(const PlanCacheKey& key,
                                                    uint64_t current_epoch,
                                                    PlanCacheOutcome* outcome);

  /// Caches `plan` for `key` at `epoch`, evicting the least recently used
  /// entry when full. Refused (counted) while `key.fingerprint` is
  /// drift-blocked; replaces any existing entry for the same key.
  void Insert(const PlanCacheKey& key,
              std::shared_ptr<const opt::PlannedQuery> plan, uint64_t epoch);

  /// Drops every entry for `fingerprint` (all thresholds and estimators)
  /// and blocks the fingerprint from re-insertion. The block records
  /// `blocked_epoch` (the statistics epoch the drift was observed under)
  /// and lifts itself on the first lookup/insert at a later epoch; the
  /// default never auto-lifts (only ClearDriftBlocks() does). Returns how
  /// many entries were evicted. This is the estimation-quality monitor's
  /// invalidation hook.
  size_t InvalidateFingerprint(uint64_t fingerprint,
                               uint64_t blocked_epoch = UINT64_MAX);

  /// Lifts all drift blocks — called after UPDATE STATISTICS, when fresh
  /// statistics make replanning the drifted statements meaningful again.
  /// (Blocks placed with an explicit epoch also lift themselves once the
  /// epoch moves past it.)
  void ClearDriftBlocks();

  bool IsDriftBlocked(uint64_t fingerprint) const {
    return drift_blocked_.count(fingerprint) > 0;
  }
  size_t drift_blocked_count() const { return drift_blocked_.size(); }

  void Clear();

  const PlanCacheStats& stats() const { return stats_; }

  /// Fault injector probed at server.plan_cache.lookup (borrowed,
  /// nullable = lookups never degrade).
  void set_fault_injector(fault::FaultInjector* fault) { fault_ = fault; }

  /// Publishes perf.cache.plan.* counters and gauges (no-op on null).
  void PublishMetrics(obs::MetricsRegistry* metrics) const;

  /// Aligned text summary for the shell's `.plancache`.
  std::string ReportText() const;

 private:
  struct Entry {
    PlanCacheKey key;
    std::shared_ptr<const opt::PlannedQuery> plan;
    uint64_t epoch = 0;
    uint64_t hits = 0;
  };

  void Erase(std::map<PlanCacheKey, std::list<Entry>::iterator>::iterator it);

  /// True while `fingerprint`'s drift block is active at `current_epoch`;
  /// lifts (and counts) the block when the epoch has moved past it.
  bool DriftBlockActive(uint64_t fingerprint, uint64_t current_epoch);

  size_t capacity_;
  fault::FaultInjector* fault_ = nullptr;
  std::list<Entry> lru_;  // front = most recently used
  std::map<PlanCacheKey, std::list<Entry>::iterator> index_;
  /// fingerprint -> statistics epoch the block was placed under.
  std::map<uint64_t, uint64_t> drift_blocked_;
  PlanCacheStats stats_;
};

}  // namespace server
}  // namespace robustqo

#endif  // ROBUSTQO_SERVER_PLAN_CACHE_H_
