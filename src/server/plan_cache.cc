#include "server/plan_cache.h"

#include <bit>
#include <algorithm>
#include <vector>

#include "perf/fingerprint.h"
#include "util/string_util.h"

namespace robustqo {
namespace server {

namespace {

// Same mixing primitives as perf/fingerprint.cc (splitmix64 finaliser +
// FNV-1a), re-stated here so the statement fingerprint stays stable even
// if perf's internals move.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Combine(uint64_t seed, uint64_t v) {
  return Mix(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix(h);
}

}  // namespace

uint64_t FingerprintQuery(const opt::QuerySpec& query) {
  uint64_t h = Mix(0x5e57a7e3e27ULL);  // domain tag: server statement
  // FROM list, canonicalised: each table contributes (name, predicate
  // fingerprint) and the contributions are combined order-insensitively,
  // matching the natural-join semantics where FROM order is meaningless.
  uint64_t sum = 0;
  uint64_t x = 0;
  for (const opt::TableRef& ref : query.tables) {
    uint64_t t = Combine(HashString(ref.table),
                         perf::FingerprintExpr(ref.predicate));
    t = Mix(t);
    sum += t;
    x ^= t;
  }
  h = Combine(h, query.tables.size());
  h = Combine(h, sum);
  h = Combine(h, x);
  // Everything downstream of the join is order-sensitive.
  h = Combine(h, query.aggregates.size());
  for (const exec::AggSpec& agg : query.aggregates) {
    h = Combine(h, static_cast<uint64_t>(agg.kind));
    h = Combine(h, HashString(agg.column));
    h = Combine(h, HashString(agg.output_name));
  }
  h = Combine(h, query.group_by.size());
  for (const std::string& column : query.group_by) {
    h = Combine(h, HashString(column));
  }
  h = Combine(h, query.select_columns.size());
  for (const std::string& column : query.select_columns) {
    h = Combine(h, HashString(column));
  }
  h = Combine(h, HashString(query.order_by));
  return Combine(h, query.limit);
}

uint64_t FingerprintStatementText(const std::string& statement) {
  return Combine(Mix(0xd39157a7e0e27ULL), HashString(statement));
}

PlanCacheKey PlanCacheKey::Make(uint64_t fingerprint, double threshold,
                                core::EstimatorKind kind) {
  PlanCacheKey key;
  key.fingerprint = fingerprint;
  key.threshold_bits = std::bit_cast<uint64_t>(threshold);
  key.estimator = static_cast<int>(kind);
  return key;
}

PlanCache::PlanCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void PlanCache::Erase(
    std::map<PlanCacheKey, std::list<Entry>::iterator>::iterator it) {
  lru_.erase(it->second);
  index_.erase(it);
}

const char* PlanCacheOutcomeName(PlanCacheOutcome outcome) {
  switch (outcome) {
    case PlanCacheOutcome::kHit:
      return "hit";
    case PlanCacheOutcome::kMiss:
      return "miss";
    case PlanCacheOutcome::kStaleEpoch:
      return "stale_epoch";
    case PlanCacheOutcome::kDriftBlocked:
      return "drift_blocked";
    case PlanCacheOutcome::kDegradedFault:
      return "degraded_fault";
  }
  return "?";
}

std::shared_ptr<const opt::PlannedQuery> PlanCache::Lookup(
    const PlanCacheKey& key, uint64_t current_epoch) {
  PlanCacheOutcome outcome;
  return LookupEx(key, current_epoch, &outcome);
}

std::shared_ptr<const opt::PlannedQuery> PlanCache::LookupEx(
    const PlanCacheKey& key, uint64_t current_epoch,
    PlanCacheOutcome* outcome) {
  if (fault_ != nullptr &&
      fault_->ShouldFire(fault::sites::kPlanCacheLookup)) {
    // The cache shard is "unreachable": degrade to a miss. Re-planning is
    // always correct, just slower, so this failure never surfaces to the
    // client — it is only counted.
    ++stats_.degraded_fault;
    ++stats_.misses;
    *outcome = PlanCacheOutcome::kDegradedFault;
    return nullptr;
  }
  if (DriftBlockActive(key.fingerprint, current_epoch)) {
    // Invalidation already evicted the entries; the block only shapes the
    // outcome a trace records (insertion will be refused too).
    ++stats_.misses;
    *outcome = PlanCacheOutcome::kDriftBlocked;
    return nullptr;
  }
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    *outcome = PlanCacheOutcome::kMiss;
    return nullptr;
  }
  if (it->second->epoch != current_epoch) {
    // Planned under statistics that no longer exist.
    Erase(it);
    ++stats_.invalidated_epoch;
    ++stats_.misses;
    *outcome = PlanCacheOutcome::kStaleEpoch;
    return nullptr;
  }
  // Refresh LRU position.
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
  ++it->second->hits;
  ++stats_.hits;
  *outcome = PlanCacheOutcome::kHit;
  return it->second->plan;
}

void PlanCache::Insert(const PlanCacheKey& key,
                       std::shared_ptr<const opt::PlannedQuery> plan,
                       uint64_t epoch) {
  if (DriftBlockActive(key.fingerprint, epoch)) {
    ++stats_.rejected_drifted;
    return;
  }
  auto it = index_.find(key);
  if (it != index_.end()) Erase(it);
  while (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions_lru;
  }
  Entry entry;
  entry.key = key;
  entry.plan = std::move(plan);
  entry.epoch = epoch;
  lru_.push_front(std::move(entry));
  index_[key] = lru_.begin();
  ++stats_.insertions;
}

size_t PlanCache::InvalidateFingerprint(uint64_t fingerprint,
                                        uint64_t blocked_epoch) {
  size_t evicted = 0;
  for (auto it = index_.begin(); it != index_.end();) {
    if (it->first.fingerprint == fingerprint) {
      auto dead = it++;
      Erase(dead);
      ++evicted;
    } else {
      ++it;
    }
  }
  stats_.invalidated_drift += evicted;
  drift_blocked_[fingerprint] = blocked_epoch;
  return evicted;
}

bool PlanCache::DriftBlockActive(uint64_t fingerprint,
                                 uint64_t current_epoch) {
  auto it = drift_blocked_.find(fingerprint);
  if (it == drift_blocked_.end()) return false;
  if (current_epoch > it->second) {
    // Statistics were rebuilt since the drift was observed — replanning is
    // meaningful again, so the block lifts itself.
    drift_blocked_.erase(it);
    ++stats_.drift_blocks_lifted;
    return false;
  }
  return true;
}

void PlanCache::ClearDriftBlocks() { drift_blocked_.clear(); }

void PlanCache::Clear() {
  lru_.clear();
  index_.clear();
}

void PlanCache::PublishMetrics(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  const auto sync = [metrics](const char* name, uint64_t value) {
    obs::Counter* counter = metrics->GetCounter(name);
    counter->Increment(value - counter->value());
  };
  sync("perf.cache.plan.hits", stats_.hits);
  sync("perf.cache.plan.misses", stats_.misses);
  sync("perf.cache.plan.insertions", stats_.insertions);
  sync("perf.cache.plan.evictions.lru", stats_.evictions_lru);
  sync("perf.cache.plan.invalidated.epoch", stats_.invalidated_epoch);
  sync("perf.cache.plan.invalidated.drift", stats_.invalidated_drift);
  sync("perf.cache.plan.degraded.fault", stats_.degraded_fault);
  sync("perf.cache.plan.rejected.drifted", stats_.rejected_drifted);
  sync("perf.cache.plan.drift_blocks.lifted", stats_.drift_blocks_lifted);
  metrics->GetGauge("perf.cache.plan.size")
      ->Set(static_cast<double>(lru_.size()));
  metrics->GetGauge("perf.cache.plan.drift_blocked")
      ->Set(static_cast<double>(drift_blocked_.size()));
}

std::string PlanCache::ReportText() const {
  std::string out = StrPrintf(
      "plan cache: %zu / %zu entries, hit rate %.3f\n", lru_.size(), capacity_,
      stats_.HitRate());
  out += StrPrintf(
      "  hits=%llu misses=%llu insertions=%llu evictions=%llu\n",
      static_cast<unsigned long long>(stats_.hits),
      static_cast<unsigned long long>(stats_.misses),
      static_cast<unsigned long long>(stats_.insertions),
      static_cast<unsigned long long>(stats_.evictions_lru));
  out += StrPrintf(
      "  invalidated: epoch=%llu drift=%llu; degraded_fault=%llu "
      "rejected_drifted=%llu drift_blocked=%zu lifted=%llu\n",
      static_cast<unsigned long long>(stats_.invalidated_epoch),
      static_cast<unsigned long long>(stats_.invalidated_drift),
      static_cast<unsigned long long>(stats_.degraded_fault),
      static_cast<unsigned long long>(stats_.rejected_drifted),
      drift_blocked_.size(),
      static_cast<unsigned long long>(stats_.drift_blocks_lifted));
  // Entries in LRU order (most recent first) — capped so huge caches stay
  // printable.
  size_t shown = 0;
  for (const Entry& entry : lru_) {
    if (shown++ >= 16) {
      out += StrPrintf("  ... %zu more\n", lru_.size() - 16);
      break;
    }
    out += StrPrintf(
        "  fp=%016llx T=%.0f epoch=%llu hits=%llu  %s\n",
        static_cast<unsigned long long>(entry.key.fingerprint),
        std::bit_cast<double>(entry.key.threshold_bits),
        static_cast<unsigned long long>(entry.epoch),
        static_cast<unsigned long long>(entry.hits),
        entry.plan != nullptr ? entry.plan->label.c_str() : "?");
  }
  return out;
}

}  // namespace server
}  // namespace robustqo
