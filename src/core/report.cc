#include "core/report.h"

#include <algorithm>

#include "util/string_util.h"

namespace robustqo {
namespace core {

Result<std::vector<ThresholdPreference>> ThresholdPreferenceReport(
    Database* db, const opt::QuerySpec& query,
    std::vector<double> thresholds) {
  std::vector<ThresholdPreference> report;
  report.reserve(thresholds.size());
  for (double threshold : thresholds) {
    opt::OptimizerOptions options;
    options.confidence_threshold_hint = threshold;
    Result<opt::PlannedQuery> plan =
        db->Plan(query, EstimatorKind::kRobustSample, options);
    if (!plan.ok()) return plan.status();
    report.push_back({threshold, plan.value().label,
                      plan.value().estimated_cost,
                      plan.value().estimated_rows});
  }
  return report;
}

std::string FormatThresholdReport(
    const std::vector<ThresholdPreference>& report) {
  std::string out = StrPrintf("%-8s %12s %14s  %s\n", "T", "est rows",
                              "est cost (s)", "chosen plan");
  for (size_t i = 0; i < report.size(); ++i) {
    const ThresholdPreference& row = report[i];
    const bool flipped = i > 0 && row.plan_label != report[i - 1].plan_label;
    out += StrPrintf("%-8.0f %12.1f %14.4f  %s%s\n", row.threshold * 100.0,
                     row.estimated_rows, row.estimated_cost,
                     row.plan_label.c_str(),
                     flipped ? "   <-- preference flips" : "");
  }
  return out;
}

double QError(double estimated, double actual) {
  const double e = std::max(estimated, 1.0);
  const double a = std::max(actual, 1.0);
  return std::max(e / a, a / e);
}

QErrorSummary SummarizeQErrors(std::vector<double> q_errors) {
  QErrorSummary summary;
  if (q_errors.empty()) return summary;
  std::sort(q_errors.begin(), q_errors.end());
  summary.count = q_errors.size();
  summary.max_q = q_errors.back();
  summary.median_q = q_errors[(q_errors.size() - 1) / 2];
  return summary;
}

}  // namespace core
}  // namespace robustqo
