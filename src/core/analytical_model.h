// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// The closed-form analytical model of paper Section 5: a single-table query
// with two candidate plans whose costs are linear in the number of
// satisfying tuples. Selectivity is estimated from an n-tuple random sample
// at confidence threshold T; the number of satisfying sample tuples k is
// Binomial(n, p), the estimate is the Beta(k+1/2, n-k+1/2) quantile at T,
// and the plan choice is a threshold function of k — so the distribution of
// execution time for any true selectivity p has a two-point closed form.

#ifndef ROBUSTQO_CORE_ANALYTICAL_MODEL_H_
#define ROBUSTQO_CORE_ANALYTICAL_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "statistics/selectivity_posterior.h"

namespace robustqo {
namespace core {

/// A query plan whose execution time is linear in the number of satisfying
/// tuples x: cost(x) = fixed + per_tuple * x.
struct LinearCostPlan {
  std::string name;
  double fixed = 0.0;
  double per_tuple = 0.0;

  /// Cost for `x` satisfying tuples.
  double Cost(double x) const { return fixed + per_tuple * x; }

  /// Cost at selectivity `p` of a table with `rows` tuples.
  double CostAtSelectivity(double p, double rows) const {
    return Cost(p * rows);
  }
};

/// The paper's Section 5.1 instantiation: N = 6,000,000, plan P1 resembling
/// a sequential scan (f1 = 35, v1 = 3.5e-6) and plan P2 resembling an index
/// intersection (f2 = 5, v2 = 3.5e-3). Crossover at pc ~ 0.14%.
struct PaperModelParams {
  double table_rows = 6.0e6;
  LinearCostPlan p1{"P1(seqscan)", 35.0, 3.5e-6};
  LinearCostPlan p2{"P2(ixsect)", 5.0, 3.5e-3};
};

/// Perturbed cost model for Figure 8: crossover at ~5.2% selectivity.
PaperModelParams HighCrossoverParams();

/// Two-plan analytical model.
class TwoPlanAnalyticalModel {
 public:
  explicit TwoPlanAnalyticalModel(PaperModelParams params = {});

  const PaperModelParams& params() const { return params_; }

  /// The selectivity where the two cost lines cross:
  /// pc = (f1 - f2) / ((v2 - v1) N). Plan 2 is optimal below pc, plan 1
  /// above (for the paper's parameterization).
  double CrossoverSelectivity() const;

  /// Cost of the plan the optimizer *should* pick at true selectivity p.
  double OptimalCost(double p) const;

  /// The selectivity estimate produced when k of n sample tuples satisfy
  /// the predicate, at confidence threshold T (in (0,1)).
  double EstimateForObservation(uint64_t k, uint64_t n, double threshold,
                                stats::PriorKind prior =
                                    stats::PriorKind::kJeffreys) const;

  /// Plan chosen for observation (k, n) at threshold T: 1 or 2.
  int PlanChoice(uint64_t k, uint64_t n, double threshold,
                 stats::PriorKind prior =
                     stats::PriorKind::kJeffreys) const;

  /// Smallest k for which plan 1 is chosen (n+1 if plan 1 is never chosen —
  /// the "self-adjusting" regime of Section 6.2.4).
  uint64_t Plan1ThresholdK(uint64_t n, double threshold,
                           stats::PriorKind prior =
                               stats::PriorKind::kJeffreys) const;

  /// Pr[plan 1 is chosen] when the true selectivity is p and the sample has
  /// n tuples, at threshold T.
  double ProbabilityPlan1(double p, uint64_t n, double threshold,
                          stats::PriorKind prior =
                              stats::PriorKind::kJeffreys) const;

  /// E[execution time] at true selectivity p (randomness over the sample).
  double ExpectedExecutionTime(double p, uint64_t n, double threshold,
                               stats::PriorKind prior =
                                   stats::PriorKind::kJeffreys) const;

  /// E[execution time^2] at true selectivity p.
  double SecondMomentExecutionTime(double p, uint64_t n, double threshold,
                                   stats::PriorKind prior =
                                       stats::PriorKind::kJeffreys) const;

  /// Mean and standard deviation of execution time over a workload whose
  /// true selectivity is uniform over `selectivities` (paper Figure 6).
  struct WorkloadSummary {
    double mean_seconds = 0.0;
    double std_dev_seconds = 0.0;
  };
  WorkloadSummary SummarizeWorkload(const std::vector<double>& selectivities,
                                    uint64_t n, double threshold,
                                    stats::PriorKind prior =
                                        stats::PriorKind::kJeffreys) const;

 private:
  PaperModelParams params_;
};

}  // namespace core
}  // namespace robustqo

#endif  // ROBUSTQO_CORE_ANALYTICAL_MODEL_H_
