// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Uncertainty-aware EXPLAIN: optimize a query across a range of confidence
// thresholds and report which plan wins where — making the crossover
// structure of the plan space (Figure 3's flip point) visible to a user
// deciding how to set the robustness knob.

#ifndef ROBUSTQO_CORE_REPORT_H_
#define ROBUSTQO_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "optimizer/query.h"

namespace robustqo {
namespace core {

/// One row of the report: at threshold T the optimizer picks `plan_label`
/// with estimated cost `estimated_cost` and estimated output rows
/// `estimated_rows`.
struct ThresholdPreference {
  double threshold = 0.0;
  std::string plan_label;
  double estimated_cost = 0.0;
  double estimated_rows = 0.0;
};

/// Plans `query` at each threshold and records the winner. Thresholds
/// default to {5, 20, 50, 80, 95}%.
Result<std::vector<ThresholdPreference>> ThresholdPreferenceReport(
    Database* db, const opt::QuerySpec& query,
    std::vector<double> thresholds = {0.05, 0.20, 0.50, 0.80, 0.95});

/// Renders the report as an aligned text table, marking the thresholds
/// where the preferred plan flips.
std::string FormatThresholdReport(
    const std::vector<ThresholdPreference>& report);

// ---- Cardinality-estimation accuracy (q-error) ----

/// The q-error of an estimate against the true value: the multiplicative
/// factor by which the estimate is off, symmetric in direction and always
/// >= 1. Both sides are floored at one row so empty results don't blow up
/// the ratio.
double QError(double estimated, double actual);

/// Distribution summary of per-query q-errors.
struct QErrorSummary {
  size_t count = 0;
  double max_q = 0.0;
  double median_q = 0.0;
};

/// Max and median of `q_errors` (empty input -> zeroed summary). Median of
/// an even count is the lower-middle element, keeping it an observed value.
QErrorSummary SummarizeQErrors(std::vector<double> q_errors);

}  // namespace core
}  // namespace robustqo

#endif  // ROBUSTQO_CORE_REPORT_H_
