#include "core/analytical_model.h"

#include <cmath>

#include "stats_math/binomial_distribution.h"
#include "util/macros.h"

namespace robustqo {
namespace core {

PaperModelParams HighCrossoverParams() {
  // Same N; the per-tuple gap is shrunk and the fixed gap widened so the
  // lines cross at ~5.2% instead of ~0.14% (paper Figure 8).
  PaperModelParams params;
  params.p1 = {"P1(seqscan)", 35.0, 3.5e-6};
  params.p2 = {"P2(ixsect)", 5.0, 1.0e-4};
  // pc = (35 - 5) / ((1e-4 - 3.5e-6) * 6e6) ~ 5.18%.
  return params;
}

TwoPlanAnalyticalModel::TwoPlanAnalyticalModel(PaperModelParams params)
    : params_(params) {
  RQO_CHECK_MSG(params_.p2.per_tuple > params_.p1.per_tuple,
                "plan 2 must be the selectivity-sensitive plan");
  RQO_CHECK_MSG(params_.p1.fixed > params_.p2.fixed,
                "plan 1 must have the higher fixed cost");
}

double TwoPlanAnalyticalModel::CrossoverSelectivity() const {
  return (params_.p1.fixed - params_.p2.fixed) /
         ((params_.p2.per_tuple - params_.p1.per_tuple) * params_.table_rows);
}

double TwoPlanAnalyticalModel::OptimalCost(double p) const {
  return std::fmin(params_.p1.CostAtSelectivity(p, params_.table_rows),
                   params_.p2.CostAtSelectivity(p, params_.table_rows));
}

double TwoPlanAnalyticalModel::EstimateForObservation(
    uint64_t k, uint64_t n, double threshold, stats::PriorKind prior) const {
  stats::SelectivityPosterior posterior(k, n, prior);
  return posterior.EstimateAtConfidence(threshold);
}

int TwoPlanAnalyticalModel::PlanChoice(uint64_t k, uint64_t n,
                                       double threshold,
                                       stats::PriorKind prior) const {
  // Above the crossover the flat plan P1 wins; below it P2 wins.
  return EstimateForObservation(k, n, threshold, prior) >
                 CrossoverSelectivity()
             ? 1
             : 2;
}

uint64_t TwoPlanAnalyticalModel::Plan1ThresholdK(
    uint64_t n, double threshold, stats::PriorKind prior) const {
  // The estimate is monotonically increasing in k, so binary-search the
  // smallest k choosing plan 1.
  uint64_t lo = 0;
  uint64_t hi = n + 1;  // n+1 encodes "plan 1 never chosen"
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (mid > n) break;
    if (PlanChoice(mid, n, threshold, prior) == 1) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double TwoPlanAnalyticalModel::ProbabilityPlan1(double p, uint64_t n,
                                                double threshold,
                                                stats::PriorKind prior) const {
  const uint64_t kstar = Plan1ThresholdK(n, threshold, prior);
  if (kstar > n) return 0.0;
  math::BinomialDistribution binom(static_cast<int64_t>(n), p);
  if (kstar == 0) return 1.0;
  return 1.0 - binom.Cdf(static_cast<int64_t>(kstar) - 1);
}

double TwoPlanAnalyticalModel::ExpectedExecutionTime(
    double p, uint64_t n, double threshold, stats::PriorKind prior) const {
  const double prob1 = ProbabilityPlan1(p, n, threshold, prior);
  const double c1 = params_.p1.CostAtSelectivity(p, params_.table_rows);
  const double c2 = params_.p2.CostAtSelectivity(p, params_.table_rows);
  return prob1 * c1 + (1.0 - prob1) * c2;
}

double TwoPlanAnalyticalModel::SecondMomentExecutionTime(
    double p, uint64_t n, double threshold, stats::PriorKind prior) const {
  const double prob1 = ProbabilityPlan1(p, n, threshold, prior);
  const double c1 = params_.p1.CostAtSelectivity(p, params_.table_rows);
  const double c2 = params_.p2.CostAtSelectivity(p, params_.table_rows);
  return prob1 * c1 * c1 + (1.0 - prob1) * c2 * c2;
}

TwoPlanAnalyticalModel::WorkloadSummary
TwoPlanAnalyticalModel::SummarizeWorkload(
    const std::vector<double>& selectivities, uint64_t n, double threshold,
    stats::PriorKind prior) const {
  RQO_CHECK(!selectivities.empty());
  double mean = 0.0;
  double second = 0.0;
  for (double p : selectivities) {
    mean += ExpectedExecutionTime(p, n, threshold, prior);
    second += SecondMomentExecutionTime(p, n, threshold, prior);
  }
  mean /= static_cast<double>(selectivities.size());
  second /= static_cast<double>(selectivities.size());
  WorkloadSummary summary;
  summary.mean_seconds = mean;
  summary.std_dev_seconds = std::sqrt(std::fmax(0.0, second - mean * mean));
  return summary;
}

}  // namespace core
}  // namespace robustqo
