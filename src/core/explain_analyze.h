// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// EXPLAIN ANALYZE: plan a query with a tracer attached, execute it, and
// merge the execution trace back onto the plan tree — per-operator
// estimated vs. actual rows, q-error and simulated cost, plus the
// per-predicate selectivity evidence (sample counts, Beta posterior,
// confidence threshold) the estimator used while planning. Renders as an
// aligned text table, Graphviz dot, or deterministic JSON.
//
// Works in -DROBUSTQO_OBS=OFF builds too: the query still plans and
// executes, but with the instrumentation compiled out the per-operator
// actuals and predicate evidence are simply absent (executed=false).

#ifndef ROBUSTQO_CORE_EXPLAIN_ANALYZE_H_
#define ROBUSTQO_CORE_EXPLAIN_ANALYZE_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "obs/plan_provenance.h"
#include "obs/trace.h"
#include "optimizer/query.h"

namespace robustqo {
namespace core {

/// One plan operator with its planning-time estimate and traced actuals.
struct OperatorReport {
  int depth = 0;           ///< 0 = plan root
  std::string describe;    ///< PhysicalOperator::Describe()
  double estimated_rows = -1.0;  ///< optimizer annotation (-1 = none)
  uint64_t actual_rows = 0;
  /// True when an exec span was matched to this operator; false when
  /// tracing was off, compiled out, or the plan was never executed.
  bool executed = false;
  double q_error = 0.0;    ///< est vs. actual (valid when executed and annotated)
  double subtree_cost_seconds = 0.0;  ///< simulated cost of this subtree
  double self_cost_seconds = 0.0;     ///< subtree minus children
};

/// One cardinality-estimation decision recorded while planning: which
/// evidence source produced the selectivity for a predicate, and — for the
/// robust estimator — the k-of-n sample observation, the Beta posterior it
/// induced and the confidence threshold at which the posterior was
/// inverted (the paper's T% estimate).
struct PredicateReport {
  std::string tables;      ///< comma-joined table set
  std::string predicate;   ///< predicate text (may be empty for "magic")
  std::string source;      ///< "synopsis", "learned", "table-sample",
                           ///< "magic", "independence", "histogram-avi"
  /// Canonical predicate fingerprint (perf/fingerprint.h) — the key the
  /// estimator caches under, and the join key the estimation-quality
  /// monitor uses to pair this estimate with execution actuals. 0 when the
  /// producing event carried none (e.g. "magic", "default-wide").
  uint64_t fingerprint = 0;
  bool has_sample = false;
  uint64_t sample_k = 0;   ///< sample rows satisfying the predicate
  uint64_t sample_n = 0;   ///< sample size
  double posterior_alpha = 0.0;
  double posterior_beta = 0.0;
  double confidence_threshold = 0.0;  ///< 0 when not applicable (histogram)
  double selectivity = -1.0;          ///< -1 = not reported
  double estimated_rows = -1.0;       ///< -1 = not reported
  /// Learned-correction provenance (source == "learned"): the feedback
  /// pseudo-counts merged into the prior and, when sample evidence was
  /// also present, the pre-correction selectivity the estimator would have
  /// reported without learning.
  bool learned = false;
  double learned_k = 0.0;             ///< feedback pseudo-successes (k_eq)
  double learned_n = 0.0;             ///< feedback equivalent sample (n_eq)
  uint64_t learned_observations = 0;  ///< executions behind the evidence
  double selectivity_raw = -1.0;      ///< pre-correction sel (-1 = none)
};

/// One estimator degradation recorded while planning: an evidence tier
/// that was missing or unreadable and the tier the estimator fell back to
/// (see docs/ROBUSTNESS.md for the cascade).
struct DegradationReport {
  std::string tier_from;  ///< "synopsis", "table-sample", "histogram-avi"
  std::string tier_to;    ///< next tier down
  std::string reason;     ///< "missing" or "unavailable" (injected/transient)
  std::string tables;     ///< affected table (set) — comma-joined
};

/// The merged result of planning + executing one query under a tracer.
struct AnalyzedPlan {
  std::string plan_label;
  std::string estimator_name;
  double estimated_cost = 0.0;        ///< optimizer's predicted cost
  double actual_cost_seconds = 0.0;   ///< simulated seconds actually charged
  double estimated_rows = 0.0;        ///< plan-root prediction
  uint64_t actual_rows = 0;           ///< rows the query returned
  /// SPJ-core rows (before aggregation) — the estimator's actual output,
  /// so this pair is the meaningful q-error comparison.
  double estimated_spj_rows = 0.0;
  uint64_t actual_spj_rows = 0;
  double spj_q_error = 0.0;
  /// True when exec tracing produced spans (OBS build with sinks live).
  bool instrumented = false;
  /// Non-empty when execution failed (governor trip, cancellation or an
  /// injected fault): the typed Status rendered as "<Code>: <message>".
  /// The plan tree and any operators that ran before the failure are
  /// still reported.
  std::string execution_error;
  /// Governor accounting for the run (0 when unlimited and untouched).
  uint64_t peak_memory_bytes = 0;
  uint64_t rows_charged = 0;
  std::vector<OperatorReport> operators;    ///< pre-order, root first
  std::vector<PredicateReport> predicates;  ///< planning order, deduplicated
  /// Estimator degradations hit while planning, in occurrence order.
  std::vector<DegradationReport> degradations;
  opt::Optimizer::Metrics optimizer_metrics;
  /// Plan-choice sensitivity across the selectivity posterior. Rendered
  /// (text/JSON/dot) only when `sensitivity.captured`, i.e. when the plan
  /// was made with provenance capture on — output is byte-identical to
  /// pre-provenance builds otherwise.
  obs::PlanSensitivity sensitivity;

  /// Aligned text table (the shell's EXPLAIN ANALYZE output).
  std::string ToText() const;
  /// Graphviz digraph with est/actual/q-error per node.
  std::string ToDot(const std::string& graph_name = "plan") const;
  /// Deterministic JSON object (byte-identical across same-seed runs).
  std::string ToJson() const;
};

/// Zips the plan tree's pre-order with the "exec" spans of `events` (which
/// Run() emits in exactly that order), producing one OperatorReport per
/// plan node. Nodes without a matching span come back executed=false.
std::vector<OperatorReport> AnnotatePlan(
    const exec::PhysicalOperator& root,
    const std::vector<obs::TraceEvent>& events);

/// Extracts per-predicate estimation detail from "estimator" events,
/// deduplicated by (tables, predicate, source) keeping first occurrence.
std::vector<PredicateReport> CollectPredicateReports(
    const std::vector<obs::TraceEvent>& events);

/// Extracts the estimator's tier-fallback decisions from "degraded" events.
std::vector<DegradationReport> CollectDegradations(
    const std::vector<obs::TraceEvent>& events);

/// Plans and executes `query` with a scratch tracer temporarily attached
/// to `db` (any previously attached tracer is restored afterwards), and
/// merges the two trace phases into one report. When `trace_out` is
/// non-null it receives the full record stream — planning events followed
/// by execution spans — ready for obs::ToChromeTrace (the shell's
/// `.trace export`).
Result<AnalyzedPlan> ExplainAnalyze(
    Database* db, const opt::QuerySpec& query,
    EstimatorKind kind = EstimatorKind::kRobustSample,
    const opt::OptimizerOptions& options = {},
    std::vector<obs::TraceEvent>* trace_out = nullptr);

}  // namespace core
}  // namespace robustqo

#endif  // ROBUSTQO_CORE_EXPLAIN_ANALYZE_H_
