// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Database: the convenience facade tying the whole system together —
// catalog + statistics + estimators + optimizer + executor. This is the
// entry point examples and experiment harnesses use; individual subsystems
// remain directly usable for finer control.

#ifndef ROBUSTQO_CORE_DATABASE_H_
#define ROBUSTQO_CORE_DATABASE_H_

#include <memory>
#include <optional>
#include <string>

#include "exec/dml.h"
#include "exec/operator.h"
#include "fault/fault_injector.h"
#include "fault/governor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "statistics/histogram_estimator.h"
#include "statistics/robust_sample_estimator.h"
#include "statistics/statistics_catalog.h"
#include "statistics/workload_prior.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace robustqo {
namespace core {

/// Which cardinality-estimation module the optimizer should use.
enum class EstimatorKind {
  kHistogram,     ///< the baseline: equi-depth histograms + AVI
  kRobustSample,  ///< the paper's robust Bayesian sample-based estimator
};

/// End-to-end result of planning and executing one query.
struct ExecutionResult {
  storage::Table rows;
  /// Simulated execution seconds (the experiments' "execution time").
  double simulated_seconds = 0.0;
  /// Full work counters from execution.
  exec::CostMeter meter;
  /// Size of the SPJ result (rows entering the final aggregation, or the
  /// result rows themselves for aggregate-free queries) — the quantity
  /// execution feedback compares against the optimizer's estimate.
  uint64_t spj_rows = 0;
  /// Optimizer's predicted cost for the chosen plan.
  double estimated_cost = 0.0;
  /// Structure label of the chosen plan (e.g. "Agg(IxSect(...))").
  std::string plan_label;
  /// Printable plan tree.
  std::string plan_tree;
  /// Governor accounting for this query: peak workspace + materialized
  /// bytes and total rows charged (0 when executed without a governor).
  uint64_t peak_memory_bytes = 0;
  uint64_t rows_charged = 0;
};

/// Result of any SQL statement: exactly one of `query` / `dml` is set,
/// matching `kind`.
struct StatementResult {
  sql::StatementKind kind = sql::StatementKind::kQuery;
  std::optional<ExecutionResult> query;
  std::optional<exec::DmlResult> dml;
};

/// An in-memory database with both estimation stacks configured.
class Database {
 public:
  Database();

  storage::Catalog* catalog() { return &catalog_; }
  const storage::Catalog& catalog() const { return catalog_; }
  stats::StatisticsCatalog* statistics() { return statistics_.get(); }

  /// Builds histograms, samples and join synopses for every table — the
  /// UPDATE STATISTICS analogue. Call after loading data (and again after
  /// changing `config.seed` to redraw samples).
  void UpdateStatistics(const stats::StatisticsConfig& config = {});

  /// Sets the system-wide robustness configuration (Section 6.2.5); a
  /// per-query hint in OptimizerOptions overrides it.
  void SetRobustnessLevel(stats::RobustnessLevel level);
  void SetConfidenceThreshold(double threshold);
  double confidence_threshold() const;

  stats::HistogramEstimator* histogram_estimator() {
    return histogram_estimator_.get();
  }
  stats::RobustSampleEstimator* robust_estimator() {
    return robust_estimator_.get();
  }
  stats::CardinalityEstimator* estimator(EstimatorKind kind);

  const exec::CostModel& cost_model() const { return cost_model_; }
  void set_cost_model(const exec::CostModel& model) { cost_model_ = model; }

  /// Parses a SQL statement (see sql/parser.h for the supported subset)
  /// against this database's catalog.
  Result<opt::QuerySpec> ParseSql(const std::string& statement) const;

  /// Parses, plans and executes a SQL statement.
  Result<ExecutionResult> ExecuteSql(
      const std::string& statement,
      EstimatorKind kind = EstimatorKind::kRobustSample,
      const opt::OptimizerOptions& options = {});

  /// Parses and executes any supported statement — SELECT dispatches to
  /// ExecuteSql, INSERT/UPDATE/DELETE to ExecuteDml.
  Result<StatementResult> ExecuteStatement(
      const std::string& statement,
      EstimatorKind kind = EstimatorKind::kRobustSample,
      const opt::OptimizerOptions& options = {});

  /// Executes a parsed DML statement under the database's governor limits
  /// and fault injector: stages the mutation, commits atomically (retrying
  /// transient write faults), bumps the data epoch, and feeds the committed
  /// rows to the statistics reservoir. `snapshot_epoch` pins which row
  /// versions the UPDATE/DELETE targeting scan sees (default: latest).
  Result<exec::DmlResult> ExecuteDml(
      const sql::DmlSpec& dml,
      uint64_t snapshot_epoch = storage::kLatestSnapshot);

  /// Retry schedule for transient (kUnavailable) DML commit failures.
  void SetDmlRetryPolicy(const fault::RetryPolicy& policy) {
    dml_retry_policy_ = policy;
  }
  const fault::RetryPolicy& dml_retry_policy() const {
    return dml_retry_policy_;
  }

  /// Rebuilds statistics for every table the maintenance layer flagged
  /// stale (enough committed modifications, or an explicit drift flag) and
  /// bumps the statistics epoch once per rebuilt table. Returns how many
  /// tables were rebuilt — the background-maintenance analogue of
  /// UpdateStatistics. Cached plans keyed to the old epoch lazily
  /// invalidate on their next lookup.
  uint64_t RebuildPendingStatistics() {
    return statistics_->RebuildAllPending();
  }

  /// Plans `query` with the chosen estimation module.
  Result<opt::PlannedQuery> Plan(const opt::QuerySpec& query,
                                 EstimatorKind kind,
                                 const opt::OptimizerOptions& options = {});

  /// Plans and executes `query`, returning rows plus the simulated cost.
  Result<ExecutionResult> Execute(const opt::QuerySpec& query,
                                  EstimatorKind kind,
                                  const opt::OptimizerOptions& options = {});

  /// Executes an already-built plan under a fresh per-query governor
  /// (configured via SetGovernorLimits) with the database's fault injector
  /// armed. Fails with a typed Status on governor trips
  /// (kResourceExhausted), cancellation (kCancelled) or injected faults —
  /// the process never crashes on a resource-limited or faulty query.
  /// `snapshot_epoch` pins which row versions scans see, so a request
  /// admitted before a DML commit reads the pre-commit state (default:
  /// latest).
  Result<ExecutionResult> ExecutePlan(
      const opt::PlannedQuery& plan,
      uint64_t snapshot_epoch = storage::kLatestSnapshot);

  /// Metrics from the most recent Plan()/Execute() optimization.
  const opt::Optimizer::Metrics& last_optimizer_metrics() const;

  /// Plan-choice sensitivity of the most recent Plan()/Execute()
  /// optimization; `captured` is false unless provenance capture was on.
  const obs::PlanSensitivity& last_plan_sensitivity() const;

  // ---- Plan provenance (strictly read-only w.r.t. plan choice) ----

  /// Default-enables sensitivity capture for every subsequent Plan() that
  /// did not explicitly request it. Off by default: plans, results, and all
  /// pre-existing reports stay byte-identical until a caller opts in.
  void SetProvenanceCapture(bool enabled) { provenance_capture_ = enabled; }
  bool provenance_capture() const { return provenance_capture_; }
  void SetProvenanceTopK(size_t top_k) { provenance_top_k_ = top_k; }
  size_t provenance_top_k() const { return provenance_top_k_; }

  // ---- Observability sinks (borrowed, nullable) ----

  /// Attaches a tracer: every subsequent Plan() records optimizer and
  /// estimator decisions; every ExecutePlan() records per-operator spans.
  /// Pass nullptr to detach. The tracer must outlive its attachment.
  void SetTracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    fault_.set_tracer(tracer);
  }
  obs::Tracer* tracer() const { return tracer_; }

  /// Attaches a metrics registry for query/estimate/executor counters.
  /// Pass nullptr to detach. The registry must outlive its attachment.
  void SetMetrics(obs::MetricsRegistry* metrics) {
    metrics_ = metrics;
    fault_.set_metrics(metrics);
  }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // ---- Robustness: fault injection and per-query resource limits ----

  /// The database's fault injector. Statistics reads probe its
  /// sample/synopsis sites and every ExecutePlan() probes the operator
  /// sites; arm/disarm/reseed through this handle (tests, chaos harness,
  /// the shell's SET FAULT).
  fault::FaultInjector* fault_injector() { return &fault_; }

  /// Per-query budgets applied to every subsequent ExecutePlan(). Limits
  /// of 0 mean unlimited (the default).
  void SetGovernorLimits(const fault::GovernorLimits& limits) {
    governor_limits_ = limits;
  }
  const fault::GovernorLimits& governor_limits() const {
    return governor_limits_;
  }

  // ---- Execution feedback (paper Section 3.3's workload knowledge) ----

  /// When enabled, every Execute() records the query's true SPJ
  /// selectivity into the feedback collector.
  void EnableFeedback(bool enable) { feedback_enabled_ = enable; }
  bool feedback_enabled() const { return feedback_enabled_; }

  /// Observed selectivities collected so far.
  const stats::WorkloadPriorBuilder& feedback() const { return feedback_; }
  stats::WorkloadPriorBuilder* mutable_feedback() { return &feedback_; }

  /// Fits a Beta prior from the collected feedback and installs it as the
  /// robust estimator's prior. Fails (and leaves the prior unchanged) when
  /// too little or degenerate feedback was collected.
  Result<stats::BetaPrior> AdoptFeedbackPrior(size_t min_observations = 10);

  /// Reverts the robust estimator to the non-informative Jeffreys prior.
  void ResetPrior();

  /// Persists every histogram, sample and join synopsis to `directory`
  /// (see statistics/persistence.h for the format).
  Status SaveStatisticsTo(const std::string& directory) const;

  /// Restores previously saved statistics, replacing same-keyed entries.
  Status LoadStatisticsFrom(const std::string& directory);

 private:
  storage::Catalog catalog_;
  std::unique_ptr<stats::StatisticsCatalog> statistics_;
  std::unique_ptr<stats::HistogramEstimator> histogram_estimator_;
  std::unique_ptr<stats::RobustSampleEstimator> robust_estimator_;
  exec::CostModel cost_model_;
  std::unique_ptr<opt::Optimizer> histogram_optimizer_;
  std::unique_ptr<opt::Optimizer> robust_optimizer_;
  opt::Optimizer* last_used_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  fault::FaultInjector fault_;
  fault::GovernorLimits governor_limits_;
  fault::RetryPolicy dml_retry_policy_;
  bool feedback_enabled_ = false;
  stats::WorkloadPriorBuilder feedback_;
  bool provenance_capture_ = false;
  size_t provenance_top_k_ = 3;
};

}  // namespace core
}  // namespace robustqo

#endif  // ROBUSTQO_CORE_DATABASE_H_
