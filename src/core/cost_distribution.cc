#include "core/cost_distribution.h"

#include <cmath>

#include "util/macros.h"

namespace robustqo {
namespace core {

PlanCostDistribution::PlanCostDistribution(
    stats::SelectivityPosterior posterior, LinearCostPlan plan,
    double table_rows)
    : posterior_(std::move(posterior)), plan_(plan), table_rows_(table_rows) {
  RQO_CHECK(table_rows > 0.0);
  RQO_CHECK_MSG(plan_.per_tuple > 0.0,
                "cost must be strictly increasing in selectivity");
}

double PlanCostDistribution::SelectivityForCost(double cost) const {
  const double s =
      (cost - plan_.fixed) / (plan_.per_tuple * table_rows_);
  return std::fmin(1.0, std::fmax(0.0, s));
}

double PlanCostDistribution::CostCdf(double cost) const {
  return posterior_.Cdf(SelectivityForCost(cost));
}

double PlanCostDistribution::CostPdf(double cost) const {
  const double slope = plan_.per_tuple * table_rows_;
  const double s = (cost - plan_.fixed) / slope;
  if (s < 0.0 || s > 1.0) return 0.0;
  return posterior_.Pdf(s) / slope;
}

double PlanCostDistribution::CostQuantile(double threshold) const {
  // The paper's shortcut (Section 3.1.1): invert the selectivity cdf once,
  // then invoke the cost function once.
  const double s = posterior_.EstimateAtConfidence(threshold);
  return plan_.CostAtSelectivity(s, table_rows_);
}

double PlanCostDistribution::CostQuantileByInversion(double threshold) const {
  // Bisection on the explicit execution-cost cdf.
  double lo = plan_.fixed;
  double hi = plan_.CostAtSelectivity(1.0, table_rows_);
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (CostCdf(mid) < threshold) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double PlanCostDistribution::ExpectedCost() const {
  return plan_.fixed +
         plan_.per_tuple * table_rows_ * posterior_.distribution().Mean();
}

double PlanCostDistribution::CostVariance() const {
  const double slope = plan_.per_tuple * table_rows_;
  return slope * slope * posterior_.distribution().Variance();
}

std::optional<double> PreferenceCrossoverThreshold(
    const PlanCostDistribution& a, const PlanCostDistribution& b, double lo,
    double hi) {
  auto diff = [&](double t) { return a.CostQuantile(t) - b.CostQuantile(t); };
  double flo = diff(lo);
  double fhi = diff(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo < 0.0) == (fhi < 0.0)) return std::nullopt;  // no flip
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = diff(mid);
    if (fmid == 0.0) return mid;
    if ((fmid < 0.0) == (flo < 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace core
}  // namespace robustqo
