#include "core/database.h"

#include "obs/obs.h"
#include "sql/parser.h"
#include "statistics/persistence.h"
#include "util/macros.h"

namespace robustqo {
namespace core {

Database::Database() {
  statistics_ = std::make_unique<stats::StatisticsCatalog>(&catalog_);
  histogram_estimator_ =
      std::make_unique<stats::HistogramEstimator>(statistics_.get());
  robust_estimator_ = std::make_unique<stats::RobustSampleEstimator>(
      statistics_.get(), stats::RobustEstimatorConfig{});
  histogram_optimizer_ = std::make_unique<opt::Optimizer>(
      &catalog_, histogram_estimator_.get(), cost_model_);
  robust_optimizer_ = std::make_unique<opt::Optimizer>(
      &catalog_, robust_estimator_.get(), cost_model_);
  last_used_ = robust_optimizer_.get();
  statistics_->SetFaultInjector(&fault_);
}

void Database::UpdateStatistics(const stats::StatisticsConfig& config) {
  statistics_->BuildAllHistograms(config.histogram_buckets);
  statistics_->BuildAllSamples(config);
}

void Database::SetRobustnessLevel(stats::RobustnessLevel level) {
  SetConfidenceThreshold(stats::ConfidenceThresholdFor(level));
}

void Database::SetConfidenceThreshold(double threshold) {
  robust_estimator_->set_confidence_threshold(threshold);
}

double Database::confidence_threshold() const {
  return robust_estimator_->config().confidence_threshold;
}

stats::CardinalityEstimator* Database::estimator(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kHistogram:
      return histogram_estimator_.get();
    case EstimatorKind::kRobustSample:
      return robust_estimator_.get();
  }
  return robust_estimator_.get();
}

Result<opt::QuerySpec> Database::ParseSql(
    const std::string& statement) const {
  return sql::ParseQuery(catalog_, statement);
}

Result<ExecutionResult> Database::ExecuteSql(
    const std::string& statement, EstimatorKind kind,
    const opt::OptimizerOptions& options) {
  Result<opt::QuerySpec> query = ParseSql(statement);
  if (!query.ok()) return query.status();
  return Execute(query.value(), kind, options);
}

Result<StatementResult> Database::ExecuteStatement(
    const std::string& statement, EstimatorKind kind,
    const opt::OptimizerOptions& options) {
  Result<sql::ParsedStatement> parsed =
      sql::ParseStatement(catalog_, statement);
  if (!parsed.ok()) return parsed.status();
  StatementResult result;
  result.kind = parsed.value().kind;
  if (result.kind == sql::StatementKind::kQuery) {
    Result<ExecutionResult> rows = Execute(parsed.value().query, kind, options);
    if (!rows.ok()) return rows.status();
    result.query = std::move(rows).value();
  } else {
    Result<exec::DmlResult> dml = ExecuteDml(parsed.value().dml);
    if (!dml.ok()) return dml.status();
    result.dml = dml.value();
  }
  return result;
}

Result<exec::DmlResult> Database::ExecuteDml(const sql::DmlSpec& dml,
                                             uint64_t snapshot_epoch) {
  exec::ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.cost_model = cost_model_;
  ctx.snapshot_epoch = snapshot_epoch;
  fault::QueryGovernor governor(governor_limits_);
  ctx.governor = &governor;
  ctx.fault = &fault_;
#if ROBUSTQO_OBS_ENABLED
  ctx.tracer = tracer_;
  ctx.metrics = metrics_;
  RQO_IF_OBS(metrics_) {
    metrics_->GetCounter("db.dml_executed")->Increment();
  }
#endif
  exec::DmlExecutor executor(&catalog_, statistics_.get());
  executor.set_retry_policy(dml_retry_policy_);
  Result<exec::DmlResult> result = [&]() -> Result<exec::DmlResult> {
    switch (dml.kind) {
      case sql::StatementKind::kInsert:
        return executor.Insert(&ctx, dml.table, dml.insert_rows);
      case sql::StatementKind::kUpdate:
        return executor.Update(&ctx, dml.table, dml.set_exprs, dml.where);
      case sql::StatementKind::kDelete:
        return executor.Delete(&ctx, dml.table, dml.where);
      case sql::StatementKind::kQuery:
        break;
    }
    return Status::InvalidArgument("not a DML statement");
  }();
#if ROBUSTQO_OBS_ENABLED
  governor.PublishMetrics(metrics_);
  RQO_IF_OBS(metrics_) {
    if (!result.ok()) {
      metrics_->GetCounter("db.dml_failed")->Increment();
    } else {
      metrics_->GetCounter("db.dml_rows_written")
          ->Increment(result.value().rows_inserted +
                      result.value().rows_deleted);
    }
  }
#endif
  return result;
}

Result<opt::PlannedQuery> Database::Plan(const opt::QuerySpec& query,
                                         EstimatorKind kind,
                                         const opt::OptimizerOptions& options) {
  // Rebuild lazily so cost-model changes propagate.
  opt::Optimizer* optimizer = nullptr;
  switch (kind) {
    case EstimatorKind::kHistogram:
      histogram_optimizer_ = std::make_unique<opt::Optimizer>(
          &catalog_, histogram_estimator_.get(), cost_model_);
      optimizer = histogram_optimizer_.get();
      break;
    case EstimatorKind::kRobustSample:
      robust_optimizer_ = std::make_unique<opt::Optimizer>(
          &catalog_, robust_estimator_.get(), cost_model_);
      optimizer = robust_optimizer_.get();
      break;
  }
  last_used_ = optimizer;
  opt::OptimizerOptions effective = options;
  // Database-level provenance capture acts as a default; a caller that
  // explicitly enabled it per-call keeps its own top-K.
  if (provenance_capture_ && !effective.provenance_enabled) {
    effective.provenance_enabled = true;
    effective.provenance_top_k = provenance_top_k_;
  }
#if ROBUSTQO_OBS_ENABLED
  // Database-level sinks act as defaults; explicit per-call sinks win.
  if (effective.tracer == nullptr) effective.tracer = tracer_;
  if (effective.metrics == nullptr) effective.metrics = metrics_;
  RQO_IF_OBS(effective.metrics) {
    effective.metrics->GetCounter("db.queries_planned")->Increment();
  }
#endif
  return optimizer->Optimize(query, effective);
}

Result<ExecutionResult> Database::ExecutePlan(const opt::PlannedQuery& plan,
                                              uint64_t snapshot_epoch) {
  exec::ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.cost_model = cost_model_;
  ctx.snapshot_epoch = snapshot_epoch;
  fault::QueryGovernor governor(governor_limits_);
  ctx.governor = &governor;
  ctx.fault = &fault_;
#if ROBUSTQO_OBS_ENABLED
  ctx.tracer = tracer_;
  ctx.metrics = metrics_;
  RQO_IF_OBS(metrics_) {
    metrics_->GetCounter("db.queries_executed")->Increment();
  }
#endif
  Result<storage::Table> rows = plan.root->Run(&ctx);
#if ROBUSTQO_OBS_ENABLED
  governor.PublishMetrics(metrics_);
  RQO_IF_OBS(metrics_) {
    if (!rows.ok()) metrics_->GetCounter("db.queries_failed")->Increment();
  }
#endif
  if (!rows.ok()) return rows.status();
  const uint64_t spj_rows = ctx.aggregate_input_rows != UINT64_MAX
                                ? ctx.aggregate_input_rows
                                : rows.value().num_rows();
#if ROBUSTQO_OBS_ENABLED
  RQO_IF_OBS(metrics_) {
    metrics_->GetSketch("exec.query.simulated_seconds")
        ->Observe(ctx.meter.total_seconds());
    metrics_->GetSketch("exec.query.rows")
        ->Observe(static_cast<double>(rows.value().num_rows()));
    metrics_->GetSketch("exec.query.spj_rows")
        ->Observe(static_cast<double>(spj_rows));
  }
#endif
  ExecutionResult result{std::move(rows).value(),
                         ctx.meter.total_seconds(),
                         ctx.meter,
                         spj_rows,
                         plan.estimated_cost,
                         plan.label,
                         plan.Explain(),
                         governor.peak_memory_bytes(),
                         governor.rows_charged()};
  return result;
}

Result<ExecutionResult> Database::Execute(const opt::QuerySpec& query,
                                          EstimatorKind kind,
                                          const opt::OptimizerOptions& options) {
  Result<opt::PlannedQuery> plan = Plan(query, kind, options);
  if (!plan.ok()) return plan.status();
  Result<ExecutionResult> exec_result = ExecutePlan(plan.value());
  if (!exec_result.ok()) return exec_result.status();
  ExecutionResult result = std::move(exec_result).value();
  if (feedback_enabled_) {
    auto root = catalog_.FindRootTable(query.TableNames());
    if (root.ok()) {
      const double root_rows = static_cast<double>(
          catalog_.GetTable(root.value())->num_rows());
      if (root_rows > 0.0) {
        feedback_.Observe(static_cast<double>(result.spj_rows) / root_rows);
      }
    }
  }
  return result;
}

Result<stats::BetaPrior> Database::AdoptFeedbackPrior(
    size_t min_observations) {
  Result<stats::BetaPrior> fit = feedback_.Fit(min_observations);
  if (!fit.ok()) return fit;
  robust_estimator_->mutable_config()->custom_prior = fit.value();
  return fit;
}

void Database::ResetPrior() {
  robust_estimator_->mutable_config()->custom_prior.reset();
}

Status Database::SaveStatisticsTo(const std::string& directory) const {
  return stats::SaveStatistics(*statistics_, directory);
}

Status Database::LoadStatisticsFrom(const std::string& directory) {
  return stats::LoadStatistics(directory, statistics_.get());
}

const opt::Optimizer::Metrics& Database::last_optimizer_metrics() const {
  RQO_CHECK(last_used_ != nullptr);
  return last_used_->last_metrics();
}

const obs::PlanSensitivity& Database::last_plan_sensitivity() const {
  RQO_CHECK(last_used_ != nullptr);
  return last_used_->last_sensitivity();
}

}  // namespace core
}  // namespace robustqo
