// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Execution-cost distributions (paper Section 3.1): pushing the selectivity
// posterior through a plan's (monotone) cost function yields a probability
// distribution over execution cost. Includes both the explicit
// change-of-variable derivation (Figures 2-3) and the shortcut the paper
// implements — invert the selectivity cdf once, then cost once
// (Section 3.1.1) — which this module proves equivalent in tests.

#ifndef ROBUSTQO_CORE_COST_DISTRIBUTION_H_
#define ROBUSTQO_CORE_COST_DISTRIBUTION_H_

#include <optional>

#include "core/analytical_model.h"
#include "statistics/selectivity_posterior.h"

namespace robustqo {
namespace core {

/// The execution-cost distribution of one linear-cost plan under an
/// uncertain selectivity described by a Beta posterior.
class PlanCostDistribution {
 public:
  /// `table_rows` converts selectivity into satisfying-tuple counts.
  PlanCostDistribution(stats::SelectivityPosterior posterior,
                       LinearCostPlan plan, double table_rows);

  const LinearCostPlan& plan() const { return plan_; }
  const stats::SelectivityPosterior& posterior() const { return posterior_; }

  /// Selectivity that produces execution cost `cost` (inverse of the cost
  /// function); clamped to [0, 1].
  double SelectivityForCost(double cost) const;

  /// Pr[cost <= c]: the cdf of execution cost, via change of variable.
  double CostCdf(double cost) const;

  /// Density of execution cost at c: f(g^{-1}(c)) / g'(s) with
  /// g'(s) = per_tuple * N.
  double CostPdf(double cost) const;

  /// cdf^{-1}(T): the cost value the optimizer is T-confident not to
  /// exceed. Computed with the paper's shortcut — invert the *selectivity*
  /// cdf, then apply the cost function once.
  double CostQuantile(double threshold) const;

  /// Same quantile computed the roundabout way (bisection on CostCdf); used
  /// to verify the shortcut's equivalence.
  double CostQuantileByInversion(double threshold) const;

  /// E[cost] — exact for linear cost: fixed + per_tuple * N * E[s].
  double ExpectedCost() const;

  /// Var[cost] — exact for linear cost: (per_tuple * N)^2 * Var[s].
  double CostVariance() const;

 private:
  stats::SelectivityPosterior posterior_;
  LinearCostPlan plan_;
  double table_rows_;
};

/// The confidence threshold at which the preferred plan flips between two
/// alternatives (the T where their cost quantiles are equal), if any flip
/// occurs in (lo, hi). Figure 3's ~65% for the paper's example.
std::optional<double> PreferenceCrossoverThreshold(
    const PlanCostDistribution& a, const PlanCostDistribution& b,
    double lo = 0.01, double hi = 0.99);

}  // namespace core
}  // namespace robustqo

#endif  // ROBUSTQO_CORE_COST_DISTRIBUTION_H_
