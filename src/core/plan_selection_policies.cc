#include "core/plan_selection_policies.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/macros.h"

namespace robustqo {
namespace core {

namespace {

// 4-point Gauss-Legendre nodes/weights on [-1, 1].
constexpr double kNodes[4] = {-0.8611363115940526, -0.3399810435848563,
                              0.3399810435848563, 0.8611363115940526};
constexpr double kWeights[4] = {0.3478548451374538, 0.6521451548625461,
                                0.6521451548625461, 0.3478548451374538};

}  // namespace

double ExpectedCost(const CostedPlan& plan,
                    const stats::SelectivityPosterior& posterior) {
  // Integrate in quantile space: E[cost(S)] = ∫₀¹ cost(F⁻¹(u)) du. This
  // adapts the node placement to the posterior automatically — crucial
  // because selectivity posteriors routinely concentrate their whole mass
  // in a sliver of [0, 1]. cost∘F⁻¹ is smooth for smooth costs, so
  // panel-wise Gauss-Legendre converges quickly.
  const int panels = 64;
  double total = 0.0;
  for (int p = 0; p < panels; ++p) {
    const double a = static_cast<double>(p) / panels;
    const double b = static_cast<double>(p + 1) / panels;
    const double half = 0.5 * (b - a);
    const double mid = 0.5 * (a + b);
    double panel = 0.0;
    for (int i = 0; i < 4; ++i) {
      const double u = mid + half * kNodes[i];
      panel += kWeights[i] *
               plan.cost(posterior.distribution().InverseCdf(u));
    }
    total += panel * half;
  }
  return total;
}

double PolicyScore(const CostedPlan& plan,
                   const stats::SelectivityPosterior& posterior,
                   SelectionPolicy policy, double threshold) {
  switch (policy) {
    case SelectionPolicy::kClassicalPointEstimate:
      return plan.cost(posterior.Mean());
    case SelectionPolicy::kLeastExpectedCost:
      return ExpectedCost(plan, posterior);
    case SelectionPolicy::kConfidenceThreshold:
      return plan.cost(posterior.EstimateAtConfidence(threshold));
  }
  return std::numeric_limits<double>::infinity();
}

size_t SelectPlan(const std::vector<CostedPlan>& plans,
                  const stats::SelectivityPosterior& posterior,
                  SelectionPolicy policy, double threshold) {
  RQO_CHECK(!plans.empty());
  size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < plans.size(); ++i) {
    const double score = PolicyScore(plans[i], posterior, policy, threshold);
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

namespace {

// Evaluation grid over the posterior's central credible region, in
// quantile space so it adapts to however tightly the mass concentrates.
std::vector<double> CredibleGrid(const stats::SelectivityPosterior& posterior,
                                 double credible_mass) {
  RQO_CHECK(credible_mass > 0.0 && credible_mass < 1.0);
  const double lo_q = 0.5 * (1.0 - credible_mass);
  const double hi_q = 1.0 - lo_q;
  const int points = 101;
  std::vector<double> grid;
  grid.reserve(points);
  for (int i = 0; i < points; ++i) {
    const double u = lo_q + (hi_q - lo_q) * i / (points - 1);
    grid.push_back(posterior.distribution().InverseCdf(u));
  }
  return grid;
}

}  // namespace

double MaxRegret(const std::vector<CostedPlan>& plans, size_t plan_index,
                 const stats::SelectivityPosterior& posterior,
                 double credible_mass) {
  RQO_CHECK(plan_index < plans.size());
  double worst = 0.0;
  for (double s : CredibleGrid(posterior, credible_mass)) {
    double best = std::numeric_limits<double>::infinity();
    for (const CostedPlan& plan : plans) {
      best = std::min(best, plan.cost(s));
    }
    worst = std::max(worst, plans[plan_index].cost(s) - best);
  }
  return worst;
}

size_t SelectPlanMinimaxRegret(const std::vector<CostedPlan>& plans,
                               const stats::SelectivityPosterior& posterior,
                               double credible_mass) {
  RQO_CHECK(!plans.empty());
  size_t best = 0;
  double best_regret = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < plans.size(); ++i) {
    const double regret = MaxRegret(plans, i, posterior, credible_mass);
    if (regret < best_regret) {
      best_regret = regret;
      best = i;
    }
  }
  return best;
}

CostedPlan LinearPlan(std::string name, double fixed, double slope) {
  return {std::move(name),
          [fixed, slope](double s) { return fixed + slope * s; }};
}

CostedPlan KneePlan(std::string name, double fixed, double slope_lo,
                    double knee_selectivity, double slope_hi) {
  RQO_CHECK(knee_selectivity >= 0.0 && knee_selectivity <= 1.0);
  return {std::move(name), [fixed, slope_lo, knee_selectivity,
                            slope_hi](double s) {
            if (s <= knee_selectivity) return fixed + slope_lo * s;
            return fixed + slope_lo * knee_selectivity +
                   slope_hi * (s - knee_selectivity);
          }};
}

}  // namespace core
}  // namespace robustqo
