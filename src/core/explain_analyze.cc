#include "core/explain_analyze.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "core/report.h"
#include "util/string_util.h"

namespace robustqo {
namespace core {

namespace {

const std::string* FindAttr(const obs::TraceAttrs& attrs,
                            const std::string& key) {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

double AttrDouble(const obs::TraceAttrs& attrs, const std::string& key,
                  double fallback) {
  const std::string* v = FindAttr(attrs, key);
  return v == nullptr ? fallback : std::strtod(v->c_str(), nullptr);
}

uint64_t AttrUint(const obs::TraceAttrs& attrs, const std::string& key,
                  uint64_t fallback) {
  const std::string* v = FindAttr(attrs, key);
  return v == nullptr ? fallback : std::strtoull(v->c_str(), nullptr, 10);
}

std::string AttrString(const obs::TraceAttrs& attrs, const std::string& key) {
  const std::string* v = FindAttr(attrs, key);
  return v == nullptr ? std::string() : *v;
}

/// One executed operator: begin-order position plus its end-record results.
struct ExecSpan {
  std::string name;
  uint64_t rows_out = 0;
  double cost_seconds = 0.0;
};

std::vector<ExecSpan> CollectExecSpans(
    const std::vector<obs::TraceEvent>& events) {
  std::vector<ExecSpan> spans;
  std::map<uint64_t, size_t> position;  // span id -> index in `spans`
  for (const obs::TraceEvent& e : events) {
    if (e.kind == obs::TraceKind::kSpanBegin) {
      if (e.category != "exec") continue;
      position[e.span_id] = spans.size();
      spans.push_back({e.name, 0, 0.0});
    } else if (e.kind == obs::TraceKind::kSpanEnd) {
      // End records carry no category; match them to begins by span id.
      auto it = position.find(e.span_id);
      if (it == position.end()) continue;
      spans[it->second].rows_out = AttrUint(e.attrs, "rows_out", 0);
      spans[it->second].cost_seconds = AttrDouble(e.attrs, "cost_seconds", 0.0);
    }
  }
  return spans;
}

// Pre-order walk zipping plan nodes against `spans`; `next` advances only
// on a name match, so one mismatch fails soft (that subtree reports
// executed=false) instead of mislabeling later operators.
void Annotate(const exec::PhysicalOperator& op, int depth,
              const std::vector<ExecSpan>& spans, size_t* next,
              std::vector<OperatorReport>* out) {
  OperatorReport report;
  report.depth = depth;
  report.describe = op.Describe();
  report.estimated_rows = op.planner_estimated_rows();
  if (*next < spans.size() && spans[*next].name == report.describe) {
    const ExecSpan& span = spans[(*next)++];
    report.executed = true;
    report.actual_rows = span.rows_out;
    report.subtree_cost_seconds = span.cost_seconds;
    if (report.estimated_rows >= 0.0) {
      report.q_error = QError(report.estimated_rows,
                              static_cast<double>(span.rows_out));
    }
  }
  const size_t my_index = out->size();
  out->push_back(std::move(report));
  double children_cost = 0.0;
  for (const exec::PhysicalOperator* child : op.children()) {
    const size_t child_index = out->size();
    Annotate(*child, depth + 1, spans, next, out);
    children_cost += (*out)[child_index].subtree_cost_seconds;
  }
  (*out)[my_index].self_cost_seconds =
      std::max(0.0, (*out)[my_index].subtree_cost_seconds - children_cost);
}

std::string EscapeDotLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string JsonNumber(double value) { return StrPrintf("%.9g", value); }

}  // namespace

std::vector<OperatorReport> AnnotatePlan(
    const exec::PhysicalOperator& root,
    const std::vector<obs::TraceEvent>& events) {
  const std::vector<ExecSpan> spans = CollectExecSpans(events);
  std::vector<OperatorReport> out;
  size_t next = 0;
  Annotate(root, 0, spans, &next, &out);
  return out;
}

std::vector<PredicateReport> CollectPredicateReports(
    const std::vector<obs::TraceEvent>& events) {
  std::vector<PredicateReport> out;
  std::map<std::string, bool> seen;
  for (const obs::TraceEvent& e : events) {
    if (e.kind != obs::TraceKind::kEvent || e.category != "estimator" ||
        e.name == "degraded") {  // tier fallbacks render separately
      continue;
    }
    PredicateReport report;
    report.tables = AttrString(e.attrs, "tables");
    report.predicate = AttrString(e.attrs, "predicate");
    report.source = AttrString(e.attrs, "source");
    const std::string key =
        report.tables + "|" + report.predicate + "|" + report.source;
    if (seen[key]) continue;
    seen[key] = true;
    report.fingerprint = AttrUint(e.attrs, "fingerprint", 0);
    report.has_sample = FindAttr(e.attrs, "n") != nullptr;
    report.sample_k = AttrUint(e.attrs, "k", 0);
    report.sample_n = AttrUint(e.attrs, "n", 0);
    report.posterior_alpha = AttrDouble(e.attrs, "posterior_alpha", 0.0);
    report.posterior_beta = AttrDouble(e.attrs, "posterior_beta", 0.0);
    report.confidence_threshold = AttrDouble(e.attrs, "threshold", 0.0);
    report.selectivity = AttrDouble(e.attrs, "selectivity", -1.0);
    report.estimated_rows = AttrDouble(e.attrs, "est_rows", -1.0);
    report.learned = report.source == "learned";
    if (report.learned) {
      report.learned_k = AttrDouble(e.attrs, "learned_k", 0.0);
      report.learned_n = AttrDouble(e.attrs, "learned_n", 0.0);
      report.learned_observations = AttrUint(e.attrs, "learned_obs", 0);
      report.selectivity_raw = AttrDouble(e.attrs, "selectivity_raw", -1.0);
    }
    out.push_back(std::move(report));
  }
  return out;
}

std::vector<DegradationReport> CollectDegradations(
    const std::vector<obs::TraceEvent>& events) {
  std::vector<DegradationReport> out;
  for (const obs::TraceEvent& e : events) {
    if (e.kind != obs::TraceKind::kEvent || e.category != "estimator" ||
        e.name != "degraded") {
      continue;
    }
    DegradationReport report;
    report.tier_from = AttrString(e.attrs, "tier_from");
    report.tier_to = AttrString(e.attrs, "tier_to");
    report.reason = AttrString(e.attrs, "reason");
    report.tables = AttrString(e.attrs, "tables");
    out.push_back(std::move(report));
  }
  return out;
}

std::string AnalyzedPlan::ToText() const {
  std::string out = "EXPLAIN ANALYZE\n";
  out += StrPrintf("plan:      %s\n", plan_label.c_str());
  out += StrPrintf("estimator: %s\n", estimator_name.c_str());
  if (!execution_error.empty()) {
    out += StrPrintf("error:     %s\n", execution_error.c_str());
  }
  out += StrPrintf("cost:      estimated %.4f s, actual %.4f s\n",
                   estimated_cost, actual_cost_seconds);
  out += StrPrintf(
      "SPJ rows:  estimated %.1f, actual %llu   (q-error %.2f)\n",
      estimated_spj_rows, static_cast<unsigned long long>(actual_spj_rows),
      spj_q_error);
  if (peak_memory_bytes > 0 || rows_charged > 0) {
    out += StrPrintf(
        "governor:  peak memory %llu bytes, %llu rows charged\n",
        static_cast<unsigned long long>(peak_memory_bytes),
        static_cast<unsigned long long>(rows_charged));
  }
  out += StrPrintf(
      "optimizer: %zu candidates costed, %zu estimates (%zu uncached)\n",
      optimizer_metrics.candidates, optimizer_metrics.estimator_calls,
      optimizer_metrics.estimator_misses);
  {
    const size_t cache_hits = optimizer_metrics.probe_cache_hits +
                              optimizer_metrics.beta_cache_hits;
    const size_t cache_misses = optimizer_metrics.probe_cache_misses +
                                optimizer_metrics.beta_cache_misses;
    if (cache_hits + cache_misses > 0) {
      out += StrPrintf(
          "perf:      cache %zu hits / %zu misses "
          "(probe %zu/%zu, inverse-beta %zu/%zu)\n",
          cache_hits, cache_misses, optimizer_metrics.probe_cache_hits,
          optimizer_metrics.probe_cache_misses,
          optimizer_metrics.beta_cache_hits,
          optimizer_metrics.beta_cache_misses);
    }
  }
  out += "operators:\n";
  out += StrPrintf("  %12s %12s %8s %13s  %s\n", "est rows", "actual rows",
                   "q-err", "self cost(s)", "operator");
  for (const OperatorReport& op : operators) {
    const std::string name = std::string(2 * op.depth, ' ') + op.describe;
    const std::string est = op.estimated_rows >= 0.0
                                ? StrPrintf("%.1f", op.estimated_rows)
                                : "-";
    const std::string act =
        op.executed
            ? StrPrintf("%llu", static_cast<unsigned long long>(op.actual_rows))
            : "-";
    const std::string q = op.executed && op.estimated_rows >= 0.0
                              ? StrPrintf("%.2f", op.q_error)
                              : "-";
    const std::string self =
        op.executed ? StrPrintf("%.6f", op.self_cost_seconds) : "-";
    out += StrPrintf("  %12s %12s %8s %13s  %s\n", est.c_str(), act.c_str(),
                     q.c_str(), self.c_str(), name.c_str());
  }
  if (!instrumented) {
    out +=
        "  (no execution trace: observability disabled in this build or no "
        "spans recorded)\n";
  }
  if (!predicates.empty()) {
    out += "predicate estimates:\n";
    for (const PredicateReport& p : predicates) {
      out += StrPrintf("  [%s] {%s}", p.source.c_str(), p.tables.c_str());
      if (p.has_sample) {
        out += StrPrintf(
            " k=%llu/n=%llu Beta(%.2f,%.2f)",
            static_cast<unsigned long long>(p.sample_k),
            static_cast<unsigned long long>(p.sample_n), p.posterior_alpha,
            p.posterior_beta);
      }
      if (p.learned) {
        out += StrPrintf(" learned k_eq=%.1f/n_eq=%.1f obs=%llu", p.learned_k,
                         p.learned_n,
                         static_cast<unsigned long long>(
                             p.learned_observations));
      }
      if (p.confidence_threshold > 0.0) {
        out += StrPrintf(" T=%.0f%%", p.confidence_threshold * 100.0);
      }
      if (p.selectivity_raw >= 0.0) {
        out += StrPrintf(" sel_raw=%.4g", p.selectivity_raw);
      }
      if (p.selectivity >= 0.0) out += StrPrintf(" sel=%.4g", p.selectivity);
      if (p.estimated_rows >= 0.0) {
        out += StrPrintf(" est_rows=%.4g", p.estimated_rows);
      }
      if (!p.predicate.empty()) out += " :: " + p.predicate;
      out += "\n";
    }
  }
  if (!degradations.empty()) {
    out += "estimator degradations:\n";
    for (const DegradationReport& d : degradations) {
      out += StrPrintf("  %s -> %s (%s) {%s}\n", d.tier_from.c_str(),
                       d.tier_to.c_str(), d.reason.c_str(), d.tables.c_str());
    }
  }
  if (sensitivity.captured) {
    out += "sensitivity:\n";
    if (!sensitivity.available) {
      out += StrPrintf("  unavailable: %s\n",
                       sensitivity.unavailable_reason.c_str());
    } else {
      out += StrPrintf("  T=%.4g  quantile:", sensitivity.threshold);
      for (double q : sensitivity.grid) {
        out += StrPrintf(" %12s", obs::QuantileLabel(q).c_str());
      }
      out += "\n  posterior selectivity:";
      for (double s : sensitivity.selectivity) {
        out += StrPrintf(" %12.6g", s);
      }
      out += "\n";
      for (size_t i = 0; i < sensitivity.candidates.size(); ++i) {
        const obs::CandidateCurve& c = sensitivity.candidates[i];
        out += StrPrintf(
            "  %-22s", i == 0 ? "[winner]"
                              : StrPrintf("[#%zu]", i + 1).c_str());
        for (double v : c.cost_at) out += StrPrintf(" %12.6g", v);
        out += StrPrintf("  %s%s\n", c.label.c_str(),
                         c.curve_available ? "" : " (flat: no curve)");
      }
    }
    out += StrPrintf("  verdict: %s\n", sensitivity.verdict.c_str());
  }
  return out;
}

std::string AnalyzedPlan::ToDot(const std::string& graph_name) const {
  std::string out = "digraph " + graph_name + " {\n";
  out += "  rankdir=BT;\n";
  // Pre-order + depth reconstructs the tree: a node's parent is the most
  // recent node one level shallower.
  std::vector<size_t> last_at_depth;
  for (size_t i = 0; i < operators.size(); ++i) {
    const OperatorReport& op = operators[i];
    std::string label = EscapeDotLabel(op.describe);
    if (op.estimated_rows >= 0.0) {
      label += StrPrintf("\\nest %.1f", op.estimated_rows);
    }
    if (op.executed) {
      label += StrPrintf("\\nactual %llu",
                         static_cast<unsigned long long>(op.actual_rows));
      if (op.estimated_rows >= 0.0) {
        label += StrPrintf(" (q %.2f)", op.q_error);
      }
      label += StrPrintf("\\ncost %.6f s", op.subtree_cost_seconds);
    }
    out += StrPrintf("  n%zu [shape=box, label=\"%s\"];\n", i, label.c_str());
    if (op.depth > 0 &&
        static_cast<size_t>(op.depth) <= last_at_depth.size()) {
      out += StrPrintf("  n%zu -> n%zu;\n", i, last_at_depth[op.depth - 1]);
    }
    if (last_at_depth.size() <= static_cast<size_t>(op.depth)) {
      last_at_depth.resize(op.depth + 1, 0);
    }
    last_at_depth[op.depth] = i;
  }
  if (sensitivity.captured && !sensitivity.verdict.empty()) {
    out += StrPrintf("  sensitivity [shape=note, label=\"%s\"];\n",
                     EscapeDotLabel(sensitivity.verdict).c_str());
  }
  out += "}\n";
  return out;
}

std::string AnalyzedPlan::ToJson() const {
  std::string out = "{";
  out += "\"plan\":\"" + JsonEscape(plan_label) + "\"";
  out += ",\"estimator\":\"" + JsonEscape(estimator_name) + "\"";
  out += ",\"estimated_cost\":" + JsonNumber(estimated_cost);
  out += ",\"actual_cost_seconds\":" + JsonNumber(actual_cost_seconds);
  out += ",\"estimated_rows\":" + JsonNumber(estimated_rows);
  out += ",\"actual_rows\":" +
         StrPrintf("%llu", static_cast<unsigned long long>(actual_rows));
  out += ",\"estimated_spj_rows\":" + JsonNumber(estimated_spj_rows);
  out += ",\"actual_spj_rows\":" +
         StrPrintf("%llu", static_cast<unsigned long long>(actual_spj_rows));
  out += ",\"spj_q_error\":" + JsonNumber(spj_q_error);
  out += std::string(",\"instrumented\":") + (instrumented ? "true" : "false");
  out += ",\"execution_error\":\"" + JsonEscape(execution_error) + "\"";
  out += ",\"peak_memory_bytes\":" +
         StrPrintf("%llu", static_cast<unsigned long long>(peak_memory_bytes));
  out += ",\"rows_charged\":" +
         StrPrintf("%llu", static_cast<unsigned long long>(rows_charged));
  out += StrPrintf(
      ",\"optimizer\":{\"candidates\":%zu,\"estimator_calls\":%zu,"
      "\"estimator_misses\":%zu}",
      optimizer_metrics.candidates, optimizer_metrics.estimator_calls,
      optimizer_metrics.estimator_misses);
  out += StrPrintf(
      ",\"perf\":{\"perf.cache.hit\":%zu,\"perf.cache.miss\":%zu,"
      "\"probe_cache_hits\":%zu,\"probe_cache_misses\":%zu,"
      "\"beta_cache_hits\":%zu,\"beta_cache_misses\":%zu}",
      optimizer_metrics.probe_cache_hits + optimizer_metrics.beta_cache_hits,
      optimizer_metrics.probe_cache_misses +
          optimizer_metrics.beta_cache_misses,
      optimizer_metrics.probe_cache_hits,
      optimizer_metrics.probe_cache_misses,
      optimizer_metrics.beta_cache_hits, optimizer_metrics.beta_cache_misses);
  out += ",\"operators\":[";
  for (size_t i = 0; i < operators.size(); ++i) {
    const OperatorReport& op = operators[i];
    if (i > 0) out += ",";
    out += "{\"op\":\"" + JsonEscape(op.describe) + "\"";
    out += StrPrintf(",\"depth\":%d", op.depth);
    out += ",\"estimated_rows\":" + JsonNumber(op.estimated_rows);
    out += std::string(",\"executed\":") + (op.executed ? "true" : "false");
    if (op.executed) {
      out += ",\"actual_rows\":" +
             StrPrintf("%llu", static_cast<unsigned long long>(op.actual_rows));
      out += ",\"q_error\":" + JsonNumber(op.q_error);
      out += ",\"subtree_cost_seconds\":" + JsonNumber(op.subtree_cost_seconds);
      out += ",\"self_cost_seconds\":" + JsonNumber(op.self_cost_seconds);
    }
    out += "}";
  }
  out += "],\"predicates\":[";
  for (size_t i = 0; i < predicates.size(); ++i) {
    const PredicateReport& p = predicates[i];
    if (i > 0) out += ",";
    out += "{\"tables\":\"" + JsonEscape(p.tables) + "\"";
    out += ",\"predicate\":\"" + JsonEscape(p.predicate) + "\"";
    out += ",\"source\":\"" + JsonEscape(p.source) + "\"";
    if (p.fingerprint != 0) {
      out += StrPrintf(",\"fingerprint\":\"0x%016llx\"",
                       static_cast<unsigned long long>(p.fingerprint));
    }
    if (p.has_sample) {
      out += StrPrintf(",\"k\":%llu,\"n\":%llu",
                       static_cast<unsigned long long>(p.sample_k),
                       static_cast<unsigned long long>(p.sample_n));
      out += ",\"posterior_alpha\":" + JsonNumber(p.posterior_alpha);
      out += ",\"posterior_beta\":" + JsonNumber(p.posterior_beta);
    }
    if (p.confidence_threshold > 0.0) {
      out += ",\"threshold\":" + JsonNumber(p.confidence_threshold);
    }
    if (p.learned) {
      out += ",\"learned\":{\"k_eq\":" + JsonNumber(p.learned_k);
      out += ",\"n_eq\":" + JsonNumber(p.learned_n);
      out += StrPrintf(",\"observations\":%llu}",
                       static_cast<unsigned long long>(
                           p.learned_observations));
      if (p.selectivity_raw >= 0.0) {
        out += ",\"selectivity_raw\":" + JsonNumber(p.selectivity_raw);
      }
    }
    if (p.selectivity >= 0.0) {
      out += ",\"selectivity\":" + JsonNumber(p.selectivity);
    }
    if (p.estimated_rows >= 0.0) {
      out += ",\"estimated_rows\":" + JsonNumber(p.estimated_rows);
    }
    out += "}";
  }
  out += "],\"degradations\":[";
  for (size_t i = 0; i < degradations.size(); ++i) {
    const DegradationReport& d = degradations[i];
    if (i > 0) out += ",";
    out += "{\"tier_from\":\"" + JsonEscape(d.tier_from) + "\"";
    out += ",\"tier_to\":\"" + JsonEscape(d.tier_to) + "\"";
    out += ",\"reason\":\"" + JsonEscape(d.reason) + "\"";
    out += ",\"tables\":\"" + JsonEscape(d.tables) + "\"}";
  }
  out += "]";
  if (sensitivity.captured) {
    out += ",\"sensitivity\":" + obs::SensitivityJson(sensitivity);
  }
  out += "}";
  return out;
}

Result<AnalyzedPlan> ExplainAnalyze(Database* db, const opt::QuerySpec& query,
                                    EstimatorKind kind,
                                    const opt::OptimizerOptions& options,
                                    std::vector<obs::TraceEvent>* trace_out) {
  obs::Tracer tracer;
  struct TracerSwap {
    Database* db;
    obs::Tracer* saved;
    ~TracerSwap() { db->SetTracer(saved); }
  } swap{db, db->tracer()};
  db->SetTracer(&tracer);

  Result<opt::PlannedQuery> plan = db->Plan(query, kind, options);
  if (!plan.ok()) return plan.status();

  AnalyzedPlan out;
  out.predicates = CollectPredicateReports(tracer.events());
  out.degradations = CollectDegradations(tracer.events());
  out.optimizer_metrics = db->last_optimizer_metrics();
  out.sensitivity = db->last_plan_sensitivity();
  if (trace_out != nullptr) {
    *trace_out = tracer.events();  // planning phase; exec spans appended below
  }
  tracer.Clear();

  out.plan_label = plan.value().label;
  out.estimator_name = db->estimator(kind)->name();
  out.estimated_cost = plan.value().estimated_cost;
  out.estimated_rows = plan.value().estimated_rows;
  out.estimated_spj_rows = plan.value().estimated_spj_rows;

  // Execution failures (governor trips, cancellation, injected faults) do
  // not abort the report: the plan, predicate evidence and whatever
  // operators completed before the failure are still worth showing.
  Result<ExecutionResult> result = db->ExecutePlan(plan.value());
  if (result.ok()) {
    out.actual_cost_seconds = result.value().simulated_seconds;
    out.actual_rows = result.value().rows.num_rows();
    out.actual_spj_rows = result.value().spj_rows;
    out.spj_q_error = QError(out.estimated_spj_rows,
                             static_cast<double>(out.actual_spj_rows));
    out.peak_memory_bytes = result.value().peak_memory_bytes;
    out.rows_charged = result.value().rows_charged;
  } else {
    out.execution_error = result.status().ToString();
  }
  out.operators = AnnotatePlan(*plan.value().root, tracer.events());
  out.instrumented =
      !out.operators.empty() && out.operators.front().executed;
  if (trace_out != nullptr) {
    // The tracer's logical clock restarted at the Clear() between phases;
    // re-sequence the execution events after the planning events so the
    // combined trace has one strictly increasing timeline.
    uint64_t seq_offset = 0;
    if (!trace_out->empty()) seq_offset = trace_out->back().seq + 1;
    for (obs::TraceEvent event : tracer.events()) {
      event.seq += seq_offset;
      trace_out->push_back(std::move(event));
    }
  }
  return out;
}

}  // namespace core
}  // namespace robustqo
