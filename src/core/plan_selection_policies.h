// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Plan-selection policies under selectivity uncertainty. The paper's
// Related-Work discussion (Sections 2.2 and 4) contrasts three ways of
// using a selectivity distribution to rank candidate plans:
//
//  * kClassicalPointEstimate — collapse the distribution to its expected
//    value first, then cost each plan once (what traditional optimizers
//    effectively do);
//  * kLeastExpectedCost — rank by E[cost(s)] over the posterior (Chu,
//    Halpern & Gehrke [6,7]; Donjerkovic & Ramakrishnan [10]). Differs
//    from the classical choice exactly when cost is nonlinear in s;
//  * kConfidenceThreshold — the paper's proposal: rank by the cost at
//    selectivity cdf^{-1}(T).
//
// Policies operate on arbitrary (monotone) cost functions, so the
// LEC-vs-classical divergence on nonlinear costs (e.g. a memory-spill
// knee) is directly demonstrable; see bench/ablation_policies.

#ifndef ROBUSTQO_CORE_PLAN_SELECTION_POLICIES_H_
#define ROBUSTQO_CORE_PLAN_SELECTION_POLICIES_H_

#include <functional>
#include <string>
#include <vector>

#include "statistics/selectivity_posterior.h"

namespace robustqo {
namespace core {

/// A candidate plan: name + execution cost as a function of selectivity
/// (must be non-negative over [0, 1]; monotonicity is not required for
/// expected-cost ranking, only for the threshold policy's guarantees).
struct CostedPlan {
  std::string name;
  std::function<double(double selectivity)> cost;
};

/// How to condense the posterior when ranking plans.
enum class SelectionPolicy {
  kClassicalPointEstimate,
  kLeastExpectedCost,
  kConfidenceThreshold,
};

/// The score a policy assigns to one plan (lower is better).
/// `threshold` is used only by kConfidenceThreshold.
double PolicyScore(const CostedPlan& plan,
                   const stats::SelectivityPosterior& posterior,
                   SelectionPolicy policy, double threshold = 0.8);

/// E[plan.cost(s)] under the posterior, by fixed-order Gauss-Legendre
/// quadrature against the Beta density (exact enough for smooth costs:
/// 128 panels x 4-point rule).
double ExpectedCost(const CostedPlan& plan,
                    const stats::SelectivityPosterior& posterior);

/// Index of the plan the policy selects from `plans` (lowest score; ties
/// broken by position). Requires non-empty `plans`.
size_t SelectPlan(const std::vector<CostedPlan>& plans,
                  const stats::SelectivityPosterior& posterior,
                  SelectionPolicy policy, double threshold = 0.8);

/// Minimax-regret selection (the robust-optimization alternative explored
/// by later work on robust plans): for each plan, its regret at
/// selectivity s is cost(s) minus the best plan's cost at s; the chosen
/// plan minimizes the maximum regret over the posterior's central
/// `credible_mass` region. Unlike the scalar policies above, regret is a
/// property of the *set* of plans, not of one plan in isolation.
size_t SelectPlanMinimaxRegret(const std::vector<CostedPlan>& plans,
                               const stats::SelectivityPosterior& posterior,
                               double credible_mass = 0.98);

/// The maximum regret of `plan_index` over the central credible region
/// (the objective SelectPlanMinimaxRegret minimizes).
double MaxRegret(const std::vector<CostedPlan>& plans, size_t plan_index,
                 const stats::SelectivityPosterior& posterior,
                 double credible_mass = 0.98);

/// Convenience: a linear cost function fixed + slope * s.
CostedPlan LinearPlan(std::string name, double fixed, double slope);

/// Convenience: a piecewise-linear cost with a knee — linear with
/// `slope_lo` below `knee_selectivity`, then `slope_hi` (models e.g. a
/// hash table spilling to disk once the build side outgrows memory).
CostedPlan KneePlan(std::string name, double fixed, double slope_lo,
                    double knee_selectivity, double slope_hi);

}  // namespace core
}  // namespace robustqo

#endif  // ROBUSTQO_CORE_PLAN_SELECTION_POLICIES_H_
