#include "statistics/workload_prior.h"

#include <algorithm>

#include "stats_math/descriptive.h"

namespace robustqo {
namespace stats {

void WorkloadPriorBuilder::Observe(double selectivity) {
  observations_.push_back(std::clamp(selectivity, 0.0, 1.0));
}

Result<BetaPrior> WorkloadPriorBuilder::Fit(size_t min_observations) const {
  if (observations_.size() < min_observations) {
    return Status::InvalidArgument("too few workload observations");
  }
  const double m = math::Mean(observations_);
  const double v = math::SampleVariance(observations_);
  // Guard against effectively-constant observations (rounding can leave a
  // sub-epsilon variance that would explode the moment equations).
  if (v <= 1e-12 || m <= 0.0 || m >= 1.0) {
    return Status::InvalidArgument(
        "degenerate selectivity distribution; keep the Jeffreys prior");
  }
  const double common = m * (1.0 - m) / v - 1.0;
  if (common <= 0.0) {
    // Variance exceeds the Bernoulli bound; no Beta matches these moments.
    return Status::InvalidArgument("variance too large for a Beta fit");
  }
  auto clamp_shape = [](double x) { return std::clamp(x, 0.05, 1.0e4); };
  return BetaPrior{clamp_shape(m * common), clamp_shape((1.0 - m) * common)};
}

}  // namespace stats
}  // namespace robustqo
