// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// The Bayesian selectivity posterior of paper Section 3.3: observing that
// k of n uniformly sampled tuples satisfy a predicate, the conditional
// density of the true selectivity p is Beta(k + a0, n - k + b0) where
// Beta(a0, b0) is the prior — Jeffreys (1/2, 1/2) by default, uniform (1, 1)
// as the alternative the paper compares against in Figure 4.

#ifndef ROBUSTQO_STATISTICS_SELECTIVITY_POSTERIOR_H_
#define ROBUSTQO_STATISTICS_SELECTIVITY_POSTERIOR_H_

#include <cstdint>
#include <string>

#include "stats_math/beta_distribution.h"

namespace robustqo {
namespace stats {

/// Prior over selectivity used for Bayesian inference.
enum class PriorKind {
  kJeffreys,  ///< Beta(1/2, 1/2) — the non-informative Jeffreys prior.
  kUniform,   ///< Beta(1, 1) — all selectivities equally likely a priori.
};

/// Shape parameters of a prior.
struct BetaPrior {
  double alpha;
  double beta;

  static BetaPrior For(PriorKind kind);
};

/// Posterior distribution for a predicate's selectivity after observing a
/// random sample.
class SelectivityPosterior {
 public:
  /// Posterior from `k` of `n` sample tuples satisfying the predicate,
  /// under the given named prior. Requires k <= n. n == 0 reproduces the
  /// prior itself (no evidence).
  SelectivityPosterior(uint64_t k, uint64_t n,
                       PriorKind prior = PriorKind::kJeffreys);

  /// Posterior under an arbitrary Beta(alpha0, beta0) prior, e.g. a
  /// workload-derived informative prior or the "magic distribution" of
  /// Section 3.5.
  SelectivityPosterior(uint64_t k, uint64_t n, BetaPrior prior);

  uint64_t k() const { return k_; }
  uint64_t n() const { return n_; }

  /// The full posterior Beta distribution.
  const math::BetaDistribution& distribution() const { return dist_; }

  /// Posterior density at selectivity z.
  double Pdf(double z) const { return dist_.Pdf(z); }

  /// Pr[p <= z | X].
  double Cdf(double z) const { return dist_.Cdf(z); }

  /// The paper's robust point estimate: the selectivity s with
  /// cdf(s) = T, i.e. the optimizer is T-confident the true selectivity
  /// does not exceed s. `confidence_threshold` in (0, 1).
  double EstimateAtConfidence(double confidence_threshold) const;

  /// Posterior mean (k + a0) / (n + a0 + b0) — what a non-robust
  /// expected-value estimator would report.
  double Mean() const { return dist_.Mean(); }

  /// The classical maximum-likelihood estimate k / n (what [1] uses).
  double MaxLikelihoodEstimate() const;

 private:
  uint64_t k_;
  uint64_t n_;
  math::BetaDistribution dist_;
};

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_SELECTIVITY_POSTERIOR_H_
