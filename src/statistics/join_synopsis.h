// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Join synopses (Acharya, Gibbons, Poosala & Ramaswamy [1], as adopted by
// the paper in Section 3.2): for a relation R with foreign keys, a uniform
// random sample of R joined with the *full* referenced relations, following
// foreign keys recursively. Any foreign-key join rooted at R projects out of
// this synopsis as a uniform random sample of the join result, so the
// selectivity of an SPJ expression rooted at R can be estimated by simply
// evaluating its predicates on the synopsis rows.

#ifndef ROBUSTQO_STATISTICS_JOIN_SYNOPSIS_H_
#define ROBUSTQO_STATISTICS_JOIN_SYNOPSIS_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "statistics/sample.h"
#include "storage/catalog.h"
#include "util/rng.h"

namespace robustqo {
namespace stats {

/// A join synopsis rooted at one table.
class JoinSynopsis {
 public:
  /// Samples `sample_size` tuples from `root_table` and joins each with the
  /// referenced rows along every foreign-key path reachable from the root.
  /// Requires: acyclic FK graph, unique column names across the involved
  /// tables (TPC-H style), FK integrity (every FK value resolves).
  JoinSynopsis(const storage::Catalog& catalog, const std::string& root_table,
               size_t sample_size, SamplingMode mode, Rng* rng);

  /// Reconstructs a synopsis from previously saved wide rows (persistence).
  static JoinSynopsis FromSavedRows(std::string root_table,
                                    uint64_t root_row_count,
                                    std::set<std::string> covered_tables,
                                    std::unique_ptr<storage::Table> rows);

  const std::string& root_table() const { return root_table_; }

  /// Row count of the root table (the population the selectivity fraction
  /// applies to: an SPJ expression rooted at R has cardinality sel * |R|).
  uint64_t root_row_count() const { return root_row_count_; }

  /// Number of synopsis tuples (n in the paper's notation).
  uint64_t size() const { return rows_->num_rows(); }

  /// Tables whose columns appear in the synopsis (root + FK closure).
  const std::set<std::string>& covered_tables() const {
    return covered_tables_;
  }

  /// True iff the synopsis can answer an expression over `tables` (i.e. it
  /// covers all of them and is rooted at the expression's root).
  bool Covers(const std::set<std::string>& tables) const;

  /// The wide synopsis rows: root columns followed by the columns of every
  /// reachable referenced table.
  const storage::Table& rows() const { return *rows_; }

 private:
  JoinSynopsis() = default;

  std::string root_table_;
  uint64_t root_row_count_ = 0;
  std::set<std::string> covered_tables_;
  std::unique_ptr<storage::Table> rows_;
};

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_JOIN_SYNOPSIS_H_
