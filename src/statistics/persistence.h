// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Persistence of summary statistics: a real DBMS keeps its statistics in
// the system catalog across restarts; this module saves and restores every
// histogram, sample and join synopsis of a StatisticsCatalog to a plain
// directory of versioned text files (one per entry), so statistics built
// over a large database need not be recomputed per process.
//
// File format (version 1), one entry per file:
//   robustqo-statistics-v1 <histogram|sample|synopsis>
//   key <table> [<column>]
//   rows <total/source/root row count>
//   [covers <t1>,<t2>,...]                     (synopsis only)
//   [schema <name>:<TYPE>(,<name>:<TYPE>)*]    (sample/synopsis)
//   data
//   ...one line per bucket (lo hi rows distinct) or per CSV tuple...

#ifndef ROBUSTQO_STATISTICS_PERSISTENCE_H_
#define ROBUSTQO_STATISTICS_PERSISTENCE_H_

#include <string>

#include "statistics/statistics_catalog.h"
#include "util/status.h"

namespace robustqo {
namespace stats {

/// Writes every histogram, sample and synopsis of `statistics` into
/// `directory` (created if absent). Existing statistics files in the
/// directory are overwritten.
Status SaveStatistics(const StatisticsCatalog& statistics,
                      const std::string& directory);

/// Loads every statistics file from `directory` into `statistics`
/// (replacing same-keyed entries). Unknown files are ignored; malformed
/// statistics files fail with InvalidArgument naming the file.
Status LoadStatistics(const std::string& directory,
                      StatisticsCatalog* statistics);

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_PERSISTENCE_H_
