#include "statistics/histogram_estimator.h"

#include <optional>

#include "expr/analysis.h"
#include "obs/obs.h"
#include "statistics/magic.h"
#include "util/string_util.h"

namespace robustqo {
namespace stats {

namespace {

// The single table among `tables` owning every column of `conjunct`;
// nullopt if the columns span tables or belong to none of them.
std::optional<std::string> OwnerTable(const storage::Catalog& catalog,
                                      const std::set<std::string>& tables,
                                      const expr::Expr& conjunct) {
  std::set<std::string> columns;
  conjunct.CollectColumns(&columns);
  if (columns.empty()) return std::nullopt;
  std::optional<std::string> owner;
  for (const std::string& column : columns) {
    std::optional<std::string> this_owner;
    for (const std::string& table : tables) {
      const storage::Table* t = catalog.GetTable(table);
      if (t != nullptr && t->schema().HasColumn(column)) {
        this_owner = table;
        break;
      }
    }
    if (!this_owner.has_value()) return std::nullopt;
    if (owner.has_value() && *owner != *this_owner) return std::nullopt;
    owner = this_owner;
  }
  return owner;
}

// Selectivity of one conjunct using the histogram on its column, AVI-style.
double ConjunctSelectivity(const StatisticsCatalog& statistics,
                           const std::string& table,
                           const expr::ExprPtr& conjunct) {
  auto range = expr::TryExtractColumnRange(conjunct);
  if (!range.has_value()) {
    // Non-sargable (arithmetic, LIKE, OR, ...): magic number.
    return kMagicUnknownSelectivity;
  }
  const EquiDepthHistogram* hist =
      statistics.GetHistogram(table, range->column);
  if (hist == nullptr) {
    return range->IsPoint() ? kMagicEqualitySelectivity
                            : kMagicRangeSelectivity;
  }
  if (range->IsPoint()) return hist->EstimateEqualSelectivity(*range->lo);
  return hist->EstimateRangeSelectivity(range->lo, range->hi);
}

}  // namespace

Result<double> HistogramEstimator::EstimateTableSelectivity(
    const std::string& table, const expr::ExprPtr& predicate) {
  if (predicate == nullptr) return 1.0;
  double selectivity = 1.0;
  for (const auto& conjunct : expr::SplitConjuncts(predicate)) {
    selectivity *=
        ConjunctSelectivity(*statistics_, table, conjunct);  // AVI product
  }
  return selectivity;
}

Result<double> HistogramEstimator::EstimateDistinctValues(
    const std::string& table, const std::string& column) {
  const EquiDepthHistogram* hist = statistics_->GetHistogram(table, column);
  if (hist == nullptr) {
    return Status::NotFound("no histogram on " + table + "." + column);
  }
  return static_cast<double>(hist->TotalDistinct());
}

Result<double> HistogramEstimator::EstimateRows(
    const CardinalityRequest& request) {
  const storage::Catalog& catalog = statistics_->catalog();
  auto root = catalog.FindRootTable(request.tables);
  if (!root.ok()) return root.status();
  const storage::Table* root_table = catalog.GetTable(root.value());
  double rows = static_cast<double>(root_table->num_rows());

  if (request.predicate == nullptr) return rows;

  // AVI across conjuncts; the containment assumption makes each FK join
  // cardinality-preserving on the root side, so per-table selectivities
  // simply multiply into the root row count.
  const auto conjuncts = expr::SplitConjuncts(request.predicate);
  for (const auto& conjunct : conjuncts) {
    auto owner = OwnerTable(catalog, request.tables, *conjunct);
    const std::string table_for_stats = owner.value_or(root.value());
    const double sel =
        ConjunctSelectivity(*statistics_, table_for_stats, conjunct);
    rows *= sel;
    RQO_IF_OBS(tracer_) {
      tracer_->Event("estimator", "histogram",
                     {{"tables", table_for_stats},
                      {"predicate", conjunct->ToString()},
                      {"source", "histogram-avi"},
                      {"selectivity", obs::AttrF(sel)}});
    }
  }
  RQO_IF_OBS(tracer_) {
    std::vector<std::string> names(request.tables.begin(),
                                   request.tables.end());
    tracer_->Event("estimator", "histogram",
                   {{"tables", StrJoin(names, ",")},
                    {"predicate", request.predicate->ToString()},
                    {"source", "histogram-avi"},
                    {"conjuncts", obs::AttrU64(conjuncts.size())},
                    {"est_rows", obs::AttrF(rows)}});
  }
  return rows;
}

}  // namespace stats
}  // namespace robustqo
