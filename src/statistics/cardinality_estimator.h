// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// The cardinality-estimation interface the optimizer calls. Exactly one
// method matters: given an SPJ subexpression (a set of FK-joined tables plus
// a conjunctive predicate), estimate the number of result rows. Swapping
// the implementation — histogram/AVI baseline vs the robust sample-based
// estimator — is the entire integration surface of the paper's technique
// (Section 3.1.1: "changes ... can be entirely isolated within the
// cardinality estimation module").

#ifndef ROBUSTQO_STATISTICS_CARDINALITY_ESTIMATOR_H_
#define ROBUSTQO_STATISTICS_CARDINALITY_ESTIMATOR_H_

#include <set>
#include <string>

#include "expr/expression.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace robustqo {
namespace stats {

/// An SPJ subexpression whose result size the optimizer wants.
struct CardinalityRequest {
  /// Tables joined in the subexpression (all joins are FK joins implied by
  /// the catalog's FK graph). A single-table request has one entry.
  std::set<std::string> tables;
  /// Conjunction of all selection predicates applying to these tables; may
  /// be null, meaning TRUE.
  expr::ExprPtr predicate;
};

/// Abstract cardinality estimation module.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Estimated number of rows produced by the subexpression.
  virtual Result<double> EstimateRows(const CardinalityRequest& request) = 0;

  /// Estimated selectivity relative to the expression's root-table
  /// population (rows / |root|).
  Result<double> EstimateSelectivity(const CardinalityRequest& request,
                                     double root_rows);

  /// Estimated number of distinct values of `table.column` (used for
  /// GROUP BY output sizing, paper Section 3.5). Default: Unsupported;
  /// callers fall back to a heuristic.
  virtual Result<double> EstimateDistinctValues(const std::string& table,
                                                const std::string& column);

  /// Display name for reports ("histogram", "robust-sample@T=0.80", ...).
  virtual std::string name() const = 0;

  /// Optional structured-trace sink (borrowed, nullable). Implementations
  /// emit one "estimator" event per estimate — sample k/n, posterior
  /// parameters, fallback path — when a tracer is attached.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Optional metrics sink (borrowed, nullable). Implementations count
  /// degradations ("estimator.degraded.*") and retries here.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

 protected:
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_CARDINALITY_ESTIMATOR_H_
