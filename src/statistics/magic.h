// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Fallbacks for predicates with no usable statistics (paper Section 3.5):
// classic "magic number" constants (after Selinger et al. [30]) and the
// paper's proposed "magic distribution", whose quantile at the confidence
// threshold varies the magic number with the robustness setting.

#ifndef ROBUSTQO_STATISTICS_MAGIC_H_
#define ROBUSTQO_STATISTICS_MAGIC_H_

#include "stats_math/beta_distribution.h"

namespace robustqo {
namespace stats {

/// Selectivity guess for an equality predicate with no statistics.
inline constexpr double kMagicEqualitySelectivity = 0.1;

/// Selectivity guess for a range predicate with no statistics.
inline constexpr double kMagicRangeSelectivity = 1.0 / 3.0;

/// Selectivity guess for an arbitrary (opaque) predicate with no statistics.
inline constexpr double kMagicUnknownSelectivity = 1.0 / 3.0;

/// The "magic distribution": a wide Beta whose mean equals the classic 1/3
/// range magic number (Beta(1/2, 1) has mean 1/3) but whose quantiles make
/// the effective magic number respond to the confidence threshold —
/// conservative settings assume more rows, aggressive settings fewer.
const math::BetaDistribution& MagicDistribution();

/// Quantile of the magic distribution at `confidence_threshold`.
double MagicSelectivityAtConfidence(double confidence_threshold);

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_MAGIC_H_
