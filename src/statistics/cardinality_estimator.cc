#include "statistics/cardinality_estimator.h"

namespace robustqo {
namespace stats {

Result<double> CardinalityEstimator::EstimateDistinctValues(
    const std::string& table, const std::string& column) {
  return Status::Unsupported("no distinct-value estimate for " + table +
                             "." + column);
}

Result<double> CardinalityEstimator::EstimateSelectivity(
    const CardinalityRequest& request, double root_rows) {
  if (root_rows <= 0.0) return 0.0;
  Result<double> rows = EstimateRows(request);
  if (!rows.ok()) return rows.status();
  return rows.value() / root_rows;
}

}  // namespace stats
}  // namespace robustqo
