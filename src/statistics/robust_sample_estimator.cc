#include "statistics/robust_sample_estimator.h"

#include <optional>
#include <vector>

#include "expr/analysis.h"
#include "obs/obs.h"
#include "perf/batch_eval.h"
#include "perf/fingerprint.h"
#include "perf/task_pool.h"
#include "statistics/distinct_estimator.h"
#include "statistics/magic.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace robustqo {
namespace stats {

namespace {

std::string JoinTableNames(const std::set<std::string>& tables) {
  std::vector<std::string> names(tables.begin(), tables.end());
  return StrJoin(names, ",");
}

// Whether at least one conjunct of `pred` is backed by a real histogram on
// `table` — the evidence bar for the tier-3 fallback. (The histogram
// estimator itself never fails: it papers over missing histograms with
// magic constants, which is exactly what tier 4 must replace with the wide
// posterior.)
bool HasHistogramEvidence(const StatisticsCatalog& statistics,
                          const std::string& table,
                          const expr::ExprPtr& pred) {
  for (const auto& conjunct : expr::SplitConjuncts(pred)) {
    auto range = expr::TryExtractColumnRange(conjunct);
    if (range.has_value() &&
        statistics.GetHistogram(table, range->column) != nullptr) {
      return true;
    }
  }
  return false;
}

}  // namespace

double ConfidenceThresholdFor(RobustnessLevel level) {
  switch (level) {
    case RobustnessLevel::kAggressive:
      return 0.50;
    case RobustnessLevel::kModerate:
      return 0.80;
    case RobustnessLevel::kConservative:
      return 0.95;
  }
  return 0.80;
}

RobustEstimatorConfig RobustEstimatorConfig::For(RobustnessLevel level) {
  RobustEstimatorConfig config;
  config.confidence_threshold = ConfidenceThresholdFor(level);
  return config;
}

void RobustSampleEstimator::RecordDegradation(const char* tier_from,
                                              const char* tier_to,
                                              const char* reason,
                                              const std::string& scope,
                                              const char* counter) const {
  RQO_IF_OBS(metrics_) { metrics_->GetCounter(counter)->Increment(); }
  RQO_IF_OBS(tracer_) {
    tracer_->Event("estimator", "degraded",
                   {{"tier_from", tier_from},
                    {"tier_to", tier_to},
                    {"reason", reason},
                    {"tables", scope}});
  }
}

void RobustSampleEstimator::RecordCacheEvent(const char* cache,
                                             bool hit) const {
  RQO_IF_OBS(metrics_) {
    metrics_->GetCounter(hit ? "perf.cache.hit" : "perf.cache.miss")
        ->Increment();
    metrics_
        ->GetCounter(std::string(hit ? "perf.cache.hit." : "perf.cache.miss.") +
                     cache)
        ->Increment();
  }
}

double RobustSampleEstimator::InvertAtThreshold(
    const SelectivityPosterior& posterior) const {
  RQO_CHECK_MSG(config_.confidence_threshold > 0.0 &&
                    config_.confidence_threshold < 1.0,
                "confidence threshold must be in (0, 1)");
  bool hit = false;
  const math::BetaDistribution& d = posterior.distribution();
  const double value = beta_cache_->Value(d.alpha(), d.beta(),
                                         config_.confidence_threshold, &hit);
  // Inside an optimizer call, classify hit/miss per query (first inversion
  // of a key this query = miss, repeats = hits) rather than by global LRU
  // residency, so EXPLAIN ANALYZE counters don't depend on what ran
  // before. The returned value comes from the LRU either way.
  if (probe_cache_ != nullptr) {
    hit = probe_cache_->NoteBetaInversion(d.alpha(), d.beta(),
                                          config_.confidence_threshold);
  }
  RecordCacheEvent("beta", hit);
  return value;
}

std::optional<learn::LearnedEvidence> RobustSampleEstimator::LearnedLookup(
    uint64_t fingerprint) {
  if (!LearningActive()) return std::nullopt;
  Status fault = feedback_store_->CheckApply();
  if (!fault.ok()) {
    // The feedback path is (injected-)unavailable: degrade to the
    // uncorrected estimate rather than fail the query.
    RQO_IF_OBS(metrics_) {
      metrics_->GetCounter("estimator.learned.unavailable")->Increment();
    }
    return std::nullopt;
  }
  std::optional<learn::LearnedEvidence> learned =
      feedback_store_->Lookup(fingerprint, statistics_->epoch());
  RQO_IF_OBS(metrics_) {
    metrics_
        ->GetCounter(learned.has_value() ? "estimator.learned.hit"
                                         : "estimator.learned.miss")
        ->Increment();
  }
  return learned;
}

BetaPrior RobustSampleEstimator::MergedPrior(
    const learn::LearnedEvidence& learned) const {
  const BetaPrior prior = config_.EffectivePrior();
  return BetaPrior{prior.alpha + learned.k_eq,
                   prior.beta + (learned.n_eq - learned.k_eq)};
}

double RobustSampleEstimator::DefaultWideSelectivity() const {
  const double s0 = kMagicUnknownSelectivity;
  const double n_eq = config_.default_equivalent_n;
  // Prior-only posterior (no evidence): Beta(s0*n_eq, (1-s0)*n_eq) has mean
  // s0 but the weight of only ~n_eq observations, so the quantile at T
  // spreads far from the mean — conservative settings assume many rows.
  SelectivityPosterior wide(0, 0, BetaPrior{s0 * n_eq, (1.0 - s0) * n_eq});
  return InvertAtThreshold(wide);
}

Result<RobustSampleEstimator::Observation> RobustSampleEstimator::Observe(
    const CardinalityRequest& request) const {
  Result<const JoinSynopsis*> synopsis = fault::RetryWithBackoff(
      config_.retry,
      [&] { return statistics_->TryFindCoveringSynopsis(request.tables); },
      nullptr, metrics_);
  if (!synopsis.ok()) return synopsis.status();
  Observation obs;
  obs.sample_size = synopsis.value()->size();
  obs.root_rows = synopsis.value()->root_row_count();
  if (request.predicate == nullptr) {
    obs.satisfying = synopsis.value()->size();
    return obs;
  }
  // The probe is memoized per (synopsis, predicate fingerprint): the join
  // enumerator re-costs the same conjunct set under every join order, and
  // only the first costing scans the synopsis.
  const std::string source = "synopsis:" + JoinTableNames(request.tables);
  const uint64_t fingerprint = perf::FingerprintExpr(*request.predicate);
  if (probe_cache_ != nullptr) {
    std::optional<perf::ProbeCount> cached =
        probe_cache_->Lookup(source, fingerprint);
    if (cached.has_value() && cached->sample_size == obs.sample_size) {
      RecordCacheEvent("probe", true);
      obs.satisfying = cached->satisfying;
      return obs;
    }
    RecordCacheEvent("probe", false);
  }
  obs.satisfying =
      perf::BatchCountSatisfying(*request.predicate, synopsis.value()->rows());
  if (probe_cache_ != nullptr) {
    probe_cache_->Insert(source, fingerprint,
                         {obs.satisfying, obs.sample_size});
  }
  return obs;
}

Result<SelectivityPosterior> RobustSampleEstimator::EstimatePosterior(
    const CardinalityRequest& request) const {
  Result<Observation> obs = Observe(request);
  if (!obs.ok()) return obs.status();
  return SelectivityPosterior(obs.value().satisfying,
                              obs.value().sample_size, config_.EffectivePrior());
}

Result<double> RobustSampleEstimator::EstimateRows(
    const CardinalityRequest& request) {
  const storage::Catalog& catalog = statistics_->catalog();
  auto root = catalog.FindRootTable(request.tables);
  if (!root.ok()) return root.status();
  const double root_rows =
      static_cast<double>(catalog.GetTable(root.value())->num_rows());
  if (request.predicate == nullptr) return root_rows;

  // Tier 1: a covering join synopsis (transient read failures retried with
  // deterministic backoff inside Observe).
  Result<Observation> obs = Observe(request);
  if (obs.ok()) {
    const BetaPrior prior = config_.EffectivePrior();
    SelectivityPosterior posterior(obs.value().satisfying,
                                   obs.value().sample_size, prior);
    std::optional<learn::LearnedEvidence> learned;
    if (LearningActive()) {
      learned = LearnedLookup(perf::FingerprintExpr(*request.predicate));
    }
    if (learned.has_value()) {
      // Learned correction: execution feedback for this exact predicate
      // shape folds into the prior, pulling the posterior toward the
      // selectivity executions actually measured. The uncorrected
      // inversion is kept as selectivity_raw for provenance.
      const double raw = InvertAtThreshold(posterior);
      SelectivityPosterior corrected(obs.value().satisfying,
                                     obs.value().sample_size,
                                     MergedPrior(*learned));
      const double selectivity = InvertAtThreshold(corrected);
      RQO_IF_OBS(metrics_) {
        metrics_->GetCounter("estimator.learned.corrected")->Increment();
      }
      RQO_IF_OBS(tracer_) {
        const math::BetaDistribution& d = corrected.distribution();
        tracer_->Event(
            "estimator", "robust",
            {{"tables", JoinTableNames(request.tables)},
             {"predicate", request.predicate->ToString()},
             {"source", "learned"},
             {"fingerprint", robustqo::obs::AttrU64(
                  perf::FingerprintExpr(*request.predicate))},
             {"k", robustqo::obs::AttrU64(obs.value().satisfying)},
             {"n", robustqo::obs::AttrU64(obs.value().sample_size)},
             {"learned_k", robustqo::obs::AttrF(learned->k_eq)},
             {"learned_n", robustqo::obs::AttrF(learned->n_eq)},
             {"learned_obs", robustqo::obs::AttrU64(learned->observations)},
             {"posterior_alpha", robustqo::obs::AttrF(d.alpha())},
             {"posterior_beta", robustqo::obs::AttrF(d.beta())},
             {"threshold", robustqo::obs::AttrF(config_.confidence_threshold)},
             {"selectivity_raw", robustqo::obs::AttrF(raw)},
             {"selectivity", robustqo::obs::AttrF(selectivity)},
             {"est_rows", robustqo::obs::AttrF(selectivity * root_rows)}});
      }
      return selectivity * root_rows;
    }
    const double selectivity = InvertAtThreshold(posterior);
    RQO_IF_OBS(tracer_) {
      tracer_->Event(
          "estimator", "robust",
          {{"tables", JoinTableNames(request.tables)},
           {"predicate", request.predicate->ToString()},
           {"source", "synopsis"},
           {"fingerprint",
            robustqo::obs::AttrU64(perf::FingerprintExpr(*request.predicate))},
           {"k", robustqo::obs::AttrU64(obs.value().satisfying)},
           {"n", robustqo::obs::AttrU64(obs.value().sample_size)},
           {"posterior_alpha", robustqo::obs::AttrF(
                static_cast<double>(obs.value().satisfying) + prior.alpha)},
           {"posterior_beta",
            robustqo::obs::AttrF(static_cast<double>(obs.value().sample_size -
                                                     obs.value().satisfying) +
                                 prior.beta)},
           {"threshold", robustqo::obs::AttrF(config_.confidence_threshold)},
           {"selectivity", robustqo::obs::AttrF(selectivity)},
           {"est_rows", robustqo::obs::AttrF(selectivity * root_rows)}});
    }
    return selectivity * root_rows;
  }
  const bool synopsis_unavailable =
      obs.status().code() == StatusCode::kUnavailable;

  // Learned tier: before falling back to per-table sample probes, consult
  // execution feedback for the full predicate shape. If past executions of
  // this fingerprint taught the store the joint selectivity, that measured
  // evidence beats re-deriving it from per-table independence assumptions.
  if (LearningActive()) {
    std::optional<learn::LearnedEvidence> learned =
        LearnedLookup(perf::FingerprintExpr(*request.predicate));
    if (learned.has_value()) {
      SelectivityPosterior posterior(0, 0, MergedPrior(*learned));
      const double selectivity = InvertAtThreshold(posterior);
      RecordDegradation("synopsis", "learned",
                        synopsis_unavailable ? "unavailable" : "missing",
                        JoinTableNames(request.tables),
                        "estimator.degraded.to_learned");
      RQO_IF_OBS(metrics_) {
        metrics_->GetCounter("estimator.learned.recovered")->Increment();
      }
      RQO_IF_OBS(tracer_) {
        const math::BetaDistribution& d = posterior.distribution();
        tracer_->Event(
            "estimator", "robust",
            {{"tables", JoinTableNames(request.tables)},
             {"predicate", request.predicate->ToString()},
             {"source", "learned"},
             {"fingerprint", robustqo::obs::AttrU64(
                  perf::FingerprintExpr(*request.predicate))},
             {"learned_k", robustqo::obs::AttrF(learned->k_eq)},
             {"learned_n", robustqo::obs::AttrF(learned->n_eq)},
             {"learned_obs", robustqo::obs::AttrU64(learned->observations)},
             {"posterior_alpha", robustqo::obs::AttrF(d.alpha())},
             {"posterior_beta", robustqo::obs::AttrF(d.beta())},
             {"threshold", robustqo::obs::AttrF(config_.confidence_threshold)},
             {"selectivity", robustqo::obs::AttrF(selectivity)},
             {"est_rows", robustqo::obs::AttrF(selectivity * root_rows)}});
      }
      return selectivity * root_rows;
    }
  }
  RecordDegradation("synopsis", "table-sample",
                    synopsis_unavailable ? "unavailable" : "missing",
                    JoinTableNames(request.tables),
                    synopsis_unavailable
                        ? "estimator.degraded.synopsis_unavailable"
                        : "estimator.degraded.synopsis_miss");

  // Tier 2 (Section 3.5): independent per-table samples + AVI +
  // containment. Each table's predicate slice is estimated robustly from
  // that table's own sample; cross-table independence is then assumed.
  // Tables whose sample is missing or unreadable degrade further on their
  // own: histogram/AVI baseline (tier 3), then the default-wide posterior
  // (tier 4).
  //
  // The per-table probes are independent, so they run in three phases to
  // keep results bit-identical at every thread count (docs/PERFORMANCE.md):
  //   A. sequential: predicate split, sample resolution (fault sites +
  //      retries), probe-cache lookups;
  //   B. parallel (TaskPool): the pure sample scans, each writing only its
  //      own slot;
  //   C. sequential, in table order: cache fills, posterior inversion,
  //      trace/metric emission, and the ordered selectivity product.
  struct TableProbe {
    std::string table;
    expr::ExprPtr pred;
    size_t num_conjuncts = 0;
    uint64_t fingerprint = 0;
    const TableSample* sample = nullptr;
    bool sample_unavailable = false;
    bool have_count = false;  // k valid without scanning (cache hit)
    uint64_t k = 0;
    std::optional<learn::LearnedEvidence> learned;  // phase-A lookup
  };
  std::vector<TableProbe> probes;
  probes.reserve(request.tables.size());
  for (const std::string& table : request.tables) {
    const storage::Table* t = catalog.GetTable(table);
    std::vector<expr::ExprPtr> mine;
    for (const auto& conjunct : expr::SplitConjuncts(request.predicate)) {
      std::set<std::string> columns;
      conjunct->CollectColumns(&columns);
      bool all_mine = !columns.empty();
      for (const std::string& c : columns) {
        if (!t->schema().HasColumn(c)) {
          all_mine = false;
          break;
        }
      }
      if (all_mine) mine.push_back(conjunct);
    }
    if (mine.empty()) continue;
    TableProbe probe;
    probe.table = table;
    probe.num_conjuncts = mine.size();
    probe.pred = expr::And(std::move(mine));

    Result<const TableSample*> sample = fault::RetryWithBackoff(
        config_.retry, [&] { return statistics_->TryGetSample(table); },
        nullptr, metrics_);
    if (sample.ok()) {
      probe.sample = sample.value();
      probe.fingerprint = perf::FingerprintExpr(*probe.pred);
      probe.learned = LearnedLookup(probe.fingerprint);
      if (probe_cache_ != nullptr) {
        std::optional<perf::ProbeCount> cached = probe_cache_->Lookup(
            "sample:" + probe.table, probe.fingerprint);
        if (cached.has_value() &&
            cached->sample_size == probe.sample->size()) {
          RecordCacheEvent("probe", true);
          probe.k = cached->satisfying;
          probe.have_count = true;
        } else {
          RecordCacheEvent("probe", false);
        }
      }
    } else {
      probe.sample_unavailable =
          sample.status().code() == StatusCode::kUnavailable;
      if (LearningActive()) {
        probe.fingerprint = perf::FingerprintExpr(*probe.pred);
        probe.learned = LearnedLookup(probe.fingerprint);
      }
    }
    probes.push_back(std::move(probe));
  }

  std::vector<size_t> scans;
  for (size_t i = 0; i < probes.size(); ++i) {
    if (probes[i].sample != nullptr && !probes[i].have_count) scans.push_back(i);
  }
  perf::TaskPool::Global()->ParallelFor(scans.size(), [&](size_t j) {
    TableProbe& probe = probes[scans[j]];
    probe.k = perf::BatchCountSatisfying(*probe.pred, probe.sample->rows());
    probe.have_count = true;
  });

  double selectivity = 1.0;
  for (const TableProbe& probe : probes) {
    const std::string& table = probe.table;
    const expr::ExprPtr& table_pred = probe.pred;
    if (probe.sample != nullptr) {
      if (probe_cache_ != nullptr) {
        probe_cache_->Insert("sample:" + table, probe.fingerprint,
                             {probe.k, probe.sample->size()});
      }
      const uint64_t k = probe.k;
      const BetaPrior prior = config_.EffectivePrior();
      SelectivityPosterior posterior(k, probe.sample->size(), prior);
      if (probe.learned.has_value()) {
        // Learned correction on the per-table slice: same prior merge as
        // the tier-1 path, uncorrected inversion kept as selectivity_raw.
        const double raw = InvertAtThreshold(posterior);
        SelectivityPosterior corrected(k, probe.sample->size(),
                                       MergedPrior(*probe.learned));
        const double factor = InvertAtThreshold(corrected);
        selectivity *= factor;
        RQO_IF_OBS(metrics_) {
          metrics_->GetCounter("estimator.learned.corrected")->Increment();
        }
        RQO_IF_OBS(tracer_) {
          const math::BetaDistribution& d = corrected.distribution();
          tracer_->Event(
              "estimator", "robust",
              {{"tables", table},
               {"predicate", table_pred->ToString()},
               {"source", "learned"},
               {"fingerprint", robustqo::obs::AttrU64(probe.fingerprint)},
               {"k", robustqo::obs::AttrU64(k)},
               {"n", robustqo::obs::AttrU64(probe.sample->size())},
               {"learned_k", robustqo::obs::AttrF(probe.learned->k_eq)},
               {"learned_n", robustqo::obs::AttrF(probe.learned->n_eq)},
               {"learned_obs",
                robustqo::obs::AttrU64(probe.learned->observations)},
               {"posterior_alpha", robustqo::obs::AttrF(d.alpha())},
               {"posterior_beta", robustqo::obs::AttrF(d.beta())},
               {"threshold",
                robustqo::obs::AttrF(config_.confidence_threshold)},
               {"selectivity_raw", robustqo::obs::AttrF(raw)},
               {"selectivity", robustqo::obs::AttrF(factor)}});
        }
        continue;
      }
      const double factor = InvertAtThreshold(posterior);
      selectivity *= factor;
      RQO_IF_OBS(tracer_) {
        tracer_->Event(
            "estimator", "robust",
            {{"tables", table},
             {"predicate", table_pred->ToString()},
             {"source", "table-sample"},
             {"fingerprint", robustqo::obs::AttrU64(probe.fingerprint)},
             {"k", robustqo::obs::AttrU64(k)},
             {"n", robustqo::obs::AttrU64(probe.sample->size())},
             {"posterior_alpha",
              robustqo::obs::AttrF(static_cast<double>(k) + prior.alpha)},
             {"posterior_beta",
              robustqo::obs::AttrF(
                  static_cast<double>(probe.sample->size() - k) +
                  prior.beta)},
             {"threshold", robustqo::obs::AttrF(config_.confidence_threshold)},
             {"selectivity", robustqo::obs::AttrF(factor)}});
      }
      continue;
    }
    const bool sample_unavailable = probe.sample_unavailable;
    RQO_IF_OBS(metrics_) {
      metrics_
          ->GetCounter(sample_unavailable
                           ? "estimator.degraded.sample_unavailable"
                           : "estimator.degraded.sample_miss")
          ->Increment();
    }

    // Learned tier (per-table slice): the sample is gone, but execution
    // feedback for this slice's fingerprint survives as a posterior of its
    // own — consulted before the histogram/AVI baseline.
    if (probe.learned.has_value()) {
      SelectivityPosterior posterior(0, 0, MergedPrior(*probe.learned));
      const double factor = InvertAtThreshold(posterior);
      selectivity *= factor;
      RecordDegradation("table-sample", "learned",
                        sample_unavailable ? "unavailable" : "missing", table,
                        "estimator.degraded.to_learned");
      RQO_IF_OBS(metrics_) {
        metrics_->GetCounter("estimator.learned.recovered")->Increment();
      }
      RQO_IF_OBS(tracer_) {
        const math::BetaDistribution& d = posterior.distribution();
        tracer_->Event(
            "estimator", "robust",
            {{"tables", table},
             {"predicate", table_pred->ToString()},
             {"source", "learned"},
             {"fingerprint", robustqo::obs::AttrU64(probe.fingerprint)},
             {"learned_k", robustqo::obs::AttrF(probe.learned->k_eq)},
             {"learned_n", robustqo::obs::AttrF(probe.learned->n_eq)},
             {"learned_obs",
              robustqo::obs::AttrU64(probe.learned->observations)},
             {"posterior_alpha", robustqo::obs::AttrF(d.alpha())},
             {"posterior_beta", robustqo::obs::AttrF(d.beta())},
             {"threshold", robustqo::obs::AttrF(config_.confidence_threshold)},
             {"selectivity", robustqo::obs::AttrF(factor)}});
      }
      continue;
    }

    // Tier 3: the histogram/AVI baseline over the same statistics store
    // (only when a real histogram backs at least one conjunct — the
    // histogram estimator itself silently substitutes magic constants).
    if (HasHistogramEvidence(*statistics_, table, table_pred)) {
      Result<double> hist_factor =
          histogram_fallback_.EstimateTableSelectivity(table, table_pred);
      if (hist_factor.ok()) {
        selectivity *= hist_factor.value();
        RecordDegradation("table-sample", "histogram-avi",
                          sample_unavailable ? "unavailable" : "missing",
                          table, "estimator.degraded.to_histogram");
        RQO_IF_OBS(tracer_) {
          tracer_->Event(
              "estimator", "robust",
              {{"tables", table},
               {"predicate", table_pred->ToString()},
               {"source", "histogram-avi"},
               {"fingerprint",
                robustqo::obs::AttrU64(perf::FingerprintExpr(*table_pred))},
               {"threshold",
                robustqo::obs::AttrF(config_.confidence_threshold)},
               {"selectivity", robustqo::obs::AttrF(hist_factor.value())}});
        }
        continue;
      }
    }

    // Tier 4: default selectivity from the wide prior-only posterior, one
    // factor per stat-less conjunct.
    const double wide = DefaultWideSelectivity();
    for (size_t i = 0; i < probe.num_conjuncts; ++i) selectivity *= wide;
    RecordDegradation("histogram-avi", "default-wide", "missing", table,
                      "estimator.degraded.to_default");
    RQO_IF_OBS(tracer_) {
      tracer_->Event(
          "estimator", "robust",
          {{"tables", table},
           {"source", "default-wide"},
           {"conjuncts", robustqo::obs::AttrU64(probe.num_conjuncts)},
           {"threshold", robustqo::obs::AttrF(config_.confidence_threshold)},
           {"selectivity", robustqo::obs::AttrF(wide)}});
    }
  }
  RQO_IF_OBS(tracer_) {
    tracer_->Event("estimator", "robust",
                   {{"tables", JoinTableNames(request.tables)},
                    {"predicate", request.predicate->ToString()},
                    {"source", "independence"},
                    {"fingerprint", robustqo::obs::AttrU64(
                         perf::FingerprintExpr(*request.predicate))},
                    {"threshold",
                     robustqo::obs::AttrF(config_.confidence_threshold)},
                    {"selectivity", robustqo::obs::AttrF(selectivity)},
                    {"est_rows",
                     robustqo::obs::AttrF(selectivity * root_rows)}});
  }
  return selectivity * root_rows;
}

Result<double> RobustSampleEstimator::EstimateDistinctValues(
    const std::string& table, const std::string& column) {
  Result<const TableSample*> sample = fault::RetryWithBackoff(
      config_.retry, [&] { return statistics_->TryGetSample(table); },
      nullptr, metrics_);
  if (!sample.ok()) return sample.status();
  Result<SampleFrequencyProfile> profile =
      ProfileSampleColumn(*sample.value(), column);
  if (!profile.ok()) return profile.status();
  // With-replacement draws can repeat rows; the population the profile
  // scales to is still the base table size.
  return EstimateDistinct(profile.value(), sample.value()->source_row_count(),
                          DistinctMethod::kGee);
}

std::string RobustSampleEstimator::name() const {
  return StrPrintf("robust-sample@T=%.0f%%",
                   config_.confidence_threshold * 100.0);
}

}  // namespace stats
}  // namespace robustqo
