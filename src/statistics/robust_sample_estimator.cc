#include "statistics/robust_sample_estimator.h"

#include <optional>

#include "expr/analysis.h"
#include "obs/obs.h"
#include "statistics/distinct_estimator.h"
#include "statistics/magic.h"
#include "util/string_util.h"

namespace robustqo {
namespace stats {

namespace {

std::string JoinTableNames(const std::set<std::string>& tables) {
  std::vector<std::string> names(tables.begin(), tables.end());
  return StrJoin(names, ",");
}

}  // namespace

double ConfidenceThresholdFor(RobustnessLevel level) {
  switch (level) {
    case RobustnessLevel::kAggressive:
      return 0.50;
    case RobustnessLevel::kModerate:
      return 0.80;
    case RobustnessLevel::kConservative:
      return 0.95;
  }
  return 0.80;
}

RobustEstimatorConfig RobustEstimatorConfig::For(RobustnessLevel level) {
  RobustEstimatorConfig config;
  config.confidence_threshold = ConfidenceThresholdFor(level);
  return config;
}

Result<RobustSampleEstimator::Observation> RobustSampleEstimator::Observe(
    const CardinalityRequest& request) const {
  const JoinSynopsis* synopsis =
      statistics_->FindCoveringSynopsis(request.tables);
  if (synopsis == nullptr) {
    return Status::NotFound("no covering join synopsis");
  }
  Observation obs;
  obs.sample_size = synopsis->size();
  obs.root_rows = synopsis->root_row_count();
  obs.satisfying =
      request.predicate == nullptr
          ? synopsis->size()
          : expr::CountSatisfying(*request.predicate, synopsis->rows());
  return obs;
}

Result<SelectivityPosterior> RobustSampleEstimator::EstimatePosterior(
    const CardinalityRequest& request) const {
  Result<Observation> obs = Observe(request);
  if (!obs.ok()) return obs.status();
  return SelectivityPosterior(obs.value().satisfying,
                              obs.value().sample_size, config_.EffectivePrior());
}

Result<double> RobustSampleEstimator::EstimateRows(
    const CardinalityRequest& request) {
  const storage::Catalog& catalog = statistics_->catalog();
  auto root = catalog.FindRootTable(request.tables);
  if (!root.ok()) return root.status();
  const double root_rows =
      static_cast<double>(catalog.GetTable(root.value())->num_rows());

  // Primary path: a covering join synopsis.
  Result<Observation> obs = Observe(request);
  if (obs.ok()) {
    if (request.predicate == nullptr) return root_rows;
    const BetaPrior prior = config_.EffectivePrior();
    SelectivityPosterior posterior(obs.value().satisfying,
                                   obs.value().sample_size, prior);
    const double selectivity =
        posterior.EstimateAtConfidence(config_.confidence_threshold);
    RQO_IF_OBS(tracer_) {
      tracer_->Event(
          "estimator", "robust",
          {{"tables", JoinTableNames(request.tables)},
           {"predicate", request.predicate->ToString()},
           {"source", "synopsis"},
           {"k", robustqo::obs::AttrU64(obs.value().satisfying)},
           {"n", robustqo::obs::AttrU64(obs.value().sample_size)},
           {"posterior_alpha", robustqo::obs::AttrF(
                static_cast<double>(obs.value().satisfying) + prior.alpha)},
           {"posterior_beta",
            robustqo::obs::AttrF(static_cast<double>(obs.value().sample_size -
                                                     obs.value().satisfying) +
                                 prior.beta)},
           {"threshold", robustqo::obs::AttrF(config_.confidence_threshold)},
           {"selectivity", robustqo::obs::AttrF(selectivity)},
           {"est_rows", robustqo::obs::AttrF(selectivity * root_rows)}});
    }
    return selectivity * root_rows;
  }

  // Fallback 1 (Section 3.5): independent per-table samples + AVI +
  // containment. Each table's predicate slice is estimated robustly from
  // that table's own sample; cross-table independence is then assumed.
  if (request.predicate == nullptr) return root_rows;
  double selectivity = 1.0;
  bool any_sample_missing = false;
  for (const std::string& table : request.tables) {
    const storage::Table* t = catalog.GetTable(table);
    std::vector<expr::ExprPtr> mine;
    for (const auto& conjunct : expr::SplitConjuncts(request.predicate)) {
      std::set<std::string> columns;
      conjunct->CollectColumns(&columns);
      bool all_mine = !columns.empty();
      for (const std::string& c : columns) {
        if (!t->schema().HasColumn(c)) {
          all_mine = false;
          break;
        }
      }
      if (all_mine) mine.push_back(conjunct);
    }
    if (mine.empty()) continue;
    const TableSample* sample = statistics_->GetSample(table);
    if (sample == nullptr) {
      any_sample_missing = true;
      // Fallback 2: magic distribution, quantile at the same threshold, one
      // factor per stat-less conjunct.
      for (size_t i = 0; i < mine.size(); ++i) {
        selectivity *=
            MagicSelectivityAtConfidence(config_.confidence_threshold);
      }
      RQO_IF_OBS(tracer_) {
        tracer_->Event(
            "estimator", "robust",
            {{"tables", table},
             {"source", "magic"},
             {"conjuncts", robustqo::obs::AttrU64(mine.size())},
             {"threshold",
              robustqo::obs::AttrF(config_.confidence_threshold)}});
      }
      continue;
    }
    expr::ExprPtr table_pred = expr::And(std::move(mine));
    const uint64_t k = expr::CountSatisfying(*table_pred, sample->rows());
    const BetaPrior prior = config_.EffectivePrior();
    SelectivityPosterior posterior(k, sample->size(), prior);
    const double factor =
        posterior.EstimateAtConfidence(config_.confidence_threshold);
    selectivity *= factor;
    RQO_IF_OBS(tracer_) {
      tracer_->Event(
          "estimator", "robust",
          {{"tables", table},
           {"predicate", table_pred->ToString()},
           {"source", "table-sample"},
           {"k", robustqo::obs::AttrU64(k)},
           {"n", robustqo::obs::AttrU64(sample->size())},
           {"posterior_alpha",
            robustqo::obs::AttrF(static_cast<double>(k) + prior.alpha)},
           {"posterior_beta",
            robustqo::obs::AttrF(static_cast<double>(sample->size() - k) +
                                 prior.beta)},
           {"threshold", robustqo::obs::AttrF(config_.confidence_threshold)},
           {"selectivity", robustqo::obs::AttrF(factor)}});
    }
  }
  (void)any_sample_missing;
  RQO_IF_OBS(tracer_) {
    tracer_->Event("estimator", "robust",
                   {{"tables", JoinTableNames(request.tables)},
                    {"predicate", request.predicate->ToString()},
                    {"source", "independence"},
                    {"threshold",
                     robustqo::obs::AttrF(config_.confidence_threshold)},
                    {"selectivity", robustqo::obs::AttrF(selectivity)},
                    {"est_rows",
                     robustqo::obs::AttrF(selectivity * root_rows)}});
  }
  return selectivity * root_rows;
}

Result<double> RobustSampleEstimator::EstimateDistinctValues(
    const std::string& table, const std::string& column) {
  const TableSample* sample = statistics_->GetSample(table);
  if (sample == nullptr) {
    return Status::NotFound("no sample for " + table);
  }
  Result<SampleFrequencyProfile> profile =
      ProfileSampleColumn(*sample, column);
  if (!profile.ok()) return profile.status();
  // With-replacement draws can repeat rows; the population the profile
  // scales to is still the base table size.
  return EstimateDistinct(profile.value(), sample->source_row_count(),
                          DistinctMethod::kGee);
}

std::string RobustSampleEstimator::name() const {
  return StrPrintf("robust-sample@T=%.0f%%",
                   config_.confidence_threshold * 100.0);
}

}  // namespace stats
}  // namespace robustqo
