#include "statistics/robust_sample_estimator.h"

#include <optional>

#include "expr/analysis.h"
#include "statistics/distinct_estimator.h"
#include "statistics/magic.h"
#include "util/string_util.h"

namespace robustqo {
namespace stats {

double ConfidenceThresholdFor(RobustnessLevel level) {
  switch (level) {
    case RobustnessLevel::kAggressive:
      return 0.50;
    case RobustnessLevel::kModerate:
      return 0.80;
    case RobustnessLevel::kConservative:
      return 0.95;
  }
  return 0.80;
}

RobustEstimatorConfig RobustEstimatorConfig::For(RobustnessLevel level) {
  RobustEstimatorConfig config;
  config.confidence_threshold = ConfidenceThresholdFor(level);
  return config;
}

Result<RobustSampleEstimator::Observation> RobustSampleEstimator::Observe(
    const CardinalityRequest& request) const {
  const JoinSynopsis* synopsis =
      statistics_->FindCoveringSynopsis(request.tables);
  if (synopsis == nullptr) {
    return Status::NotFound("no covering join synopsis");
  }
  Observation obs;
  obs.sample_size = synopsis->size();
  obs.root_rows = synopsis->root_row_count();
  obs.satisfying =
      request.predicate == nullptr
          ? synopsis->size()
          : expr::CountSatisfying(*request.predicate, synopsis->rows());
  return obs;
}

Result<SelectivityPosterior> RobustSampleEstimator::EstimatePosterior(
    const CardinalityRequest& request) const {
  Result<Observation> obs = Observe(request);
  if (!obs.ok()) return obs.status();
  return SelectivityPosterior(obs.value().satisfying,
                              obs.value().sample_size, config_.EffectivePrior());
}

Result<double> RobustSampleEstimator::EstimateRows(
    const CardinalityRequest& request) {
  const storage::Catalog& catalog = statistics_->catalog();
  auto root = catalog.FindRootTable(request.tables);
  if (!root.ok()) return root.status();
  const double root_rows =
      static_cast<double>(catalog.GetTable(root.value())->num_rows());

  // Primary path: a covering join synopsis.
  Result<Observation> obs = Observe(request);
  if (obs.ok()) {
    if (request.predicate == nullptr) return root_rows;
    SelectivityPosterior posterior(obs.value().satisfying,
                                   obs.value().sample_size, config_.EffectivePrior());
    return posterior.EstimateAtConfidence(config_.confidence_threshold) *
           root_rows;
  }

  // Fallback 1 (Section 3.5): independent per-table samples + AVI +
  // containment. Each table's predicate slice is estimated robustly from
  // that table's own sample; cross-table independence is then assumed.
  if (request.predicate == nullptr) return root_rows;
  double selectivity = 1.0;
  bool any_sample_missing = false;
  for (const std::string& table : request.tables) {
    const storage::Table* t = catalog.GetTable(table);
    std::vector<expr::ExprPtr> mine;
    for (const auto& conjunct : expr::SplitConjuncts(request.predicate)) {
      std::set<std::string> columns;
      conjunct->CollectColumns(&columns);
      bool all_mine = !columns.empty();
      for (const std::string& c : columns) {
        if (!t->schema().HasColumn(c)) {
          all_mine = false;
          break;
        }
      }
      if (all_mine) mine.push_back(conjunct);
    }
    if (mine.empty()) continue;
    const TableSample* sample = statistics_->GetSample(table);
    if (sample == nullptr) {
      any_sample_missing = true;
      // Fallback 2: magic distribution, quantile at the same threshold, one
      // factor per stat-less conjunct.
      for (size_t i = 0; i < mine.size(); ++i) {
        selectivity *=
            MagicSelectivityAtConfidence(config_.confidence_threshold);
      }
      continue;
    }
    expr::ExprPtr table_pred = expr::And(std::move(mine));
    const uint64_t k = expr::CountSatisfying(*table_pred, sample->rows());
    SelectivityPosterior posterior(k, sample->size(), config_.EffectivePrior());
    selectivity *=
        posterior.EstimateAtConfidence(config_.confidence_threshold);
  }
  (void)any_sample_missing;
  return selectivity * root_rows;
}

Result<double> RobustSampleEstimator::EstimateDistinctValues(
    const std::string& table, const std::string& column) {
  const TableSample* sample = statistics_->GetSample(table);
  if (sample == nullptr) {
    return Status::NotFound("no sample for " + table);
  }
  Result<SampleFrequencyProfile> profile =
      ProfileSampleColumn(*sample, column);
  if (!profile.ok()) return profile.status();
  // With-replacement draws can repeat rows; the population the profile
  // scales to is still the base table size.
  return EstimateDistinct(profile.value(), sample->source_row_count(),
                          DistinctMethod::kGee);
}

std::string RobustSampleEstimator::name() const {
  return StrPrintf("robust-sample@T=%.0f%%",
                   config_.confidence_threshold * 100.0);
}

}  // namespace stats
}  // namespace robustqo
