#include "statistics/magic.h"

namespace robustqo {
namespace stats {

const math::BetaDistribution& MagicDistribution() {
  static const math::BetaDistribution* dist =
      new math::BetaDistribution(0.5, 1.0);
  return *dist;
}

double MagicSelectivityAtConfidence(double confidence_threshold) {
  return MagicDistribution().InverseCdf(confidence_threshold);
}

}  // namespace stats
}  // namespace robustqo
