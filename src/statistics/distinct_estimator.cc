#include "statistics/distinct_estimator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "util/macros.h"

namespace robustqo {
namespace stats {

SampleFrequencyProfile ProfileValues(const std::vector<int64_t>& values) {
  SampleFrequencyProfile profile;
  profile.sample_size = values.size();
  std::unordered_map<int64_t, uint64_t> counts;
  counts.reserve(values.size() * 2);
  for (int64_t v : values) ++counts[v];
  profile.distinct_in_sample = counts.size();
  uint64_t max_count = 0;
  for (const auto& [value, count] : counts) {
    max_count = std::max(max_count, count);
  }
  profile.frequency_of_frequencies.assign(max_count + 1, 0);
  for (const auto& [value, count] : counts) {
    ++profile.frequency_of_frequencies[count];
  }
  return profile;
}

Result<SampleFrequencyProfile> ProfileSampleColumn(const TableSample& sample,
                                                   const std::string& column) {
  const storage::Table& rows = sample.rows();
  auto idx = rows.schema().ColumnIndex(column);
  if (!idx.ok()) return idx.status();
  const storage::ColumnVector& col = rows.column(idx.value());
  std::vector<int64_t> values;
  values.reserve(rows.num_rows());
  for (storage::Rid r = 0; r < rows.num_rows(); ++r) {
    if (storage::IsIntegerPhysical(col.type())) {
      values.push_back(col.Int64At(r));
    } else if (col.type() == storage::DataType::kDouble) {
      // Bit-pattern identity: exact-equality distinctness for doubles.
      const double d = col.DoubleAt(r);
      int64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      values.push_back(bits);
    } else {
      return Status::Unsupported("string columns not supported");
    }
  }
  return ProfileValues(values);
}

double EstimateDistinct(const SampleFrequencyProfile& profile,
                        uint64_t population_size, DistinctMethod method) {
  RQO_CHECK(population_size >= profile.sample_size ||
            profile.sample_size == 0);
  const double n = static_cast<double>(profile.sample_size);
  const double big_n = static_cast<double>(population_size);
  const double d = static_cast<double>(profile.distinct_in_sample);
  if (profile.sample_size == 0 || population_size == 0) return 0.0;

  double estimate = d;
  switch (method) {
    case DistinctMethod::kGee: {
      const double f1 = static_cast<double>(profile.f(1));
      double rest = 0.0;
      for (size_t i = 2; i < profile.frequency_of_frequencies.size(); ++i) {
        rest += static_cast<double>(profile.frequency_of_frequencies[i]);
      }
      estimate = std::sqrt(big_n / n) * f1 + rest;
      break;
    }
    case DistinctMethod::kChao: {
      const double f1 = static_cast<double>(profile.f(1));
      const double f2 = static_cast<double>(profile.f(2));
      estimate = f2 > 0.0 ? d + (f1 * f1) / (2.0 * f2)
                          : d + f1 * (f1 - 1.0) / 2.0;
      break;
    }
    case DistinctMethod::kNaiveScaleUp: {
      estimate = d * big_n / n;
      break;
    }
  }
  return std::clamp(estimate, d, big_n);
}

}  // namespace stats
}  // namespace robustqo
