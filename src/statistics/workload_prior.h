// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Workload-informed priors (paper Section 3.3: "If we have some prior
// knowledge about the query workload, we may be able to use that knowledge
// to estimate f(z)"). Collects the true selectivities of past queries —
// e.g. from execution feedback — and fits a Beta prior by the method of
// moments. Feeding that prior into SelectivityPosterior sharpens estimates
// for workloads whose selectivities cluster (most OLTP-ish workloads hit
// tiny selectivities, making the fitted prior much more informative than
// Jeffreys).

#ifndef ROBUSTQO_STATISTICS_WORKLOAD_PRIOR_H_
#define ROBUSTQO_STATISTICS_WORKLOAD_PRIOR_H_

#include <cstddef>
#include <vector>

#include "statistics/selectivity_posterior.h"
#include "util/status.h"

namespace robustqo {
namespace stats {

/// Accumulates observed query selectivities and fits a Beta prior.
class WorkloadPriorBuilder {
 public:
  /// Records one observed selectivity in [0, 1] (values are clamped).
  void Observe(double selectivity);

  /// Number of observations so far.
  size_t count() const { return observations_.size(); }

  /// Method-of-moments Beta fit:
  ///   m = mean, v = variance,
  ///   alpha = m * (m (1-m) / v - 1),  beta = (1-m) * (m (1-m) / v - 1).
  /// Fails with InvalidArgument when fewer than `min_observations`
  /// selectivities were recorded or the variance is degenerate; shape
  /// parameters are clamped to [0.05, 10000] for numerical sanity.
  Result<BetaPrior> Fit(size_t min_observations = 10) const;

  /// The recorded observations (for diagnostics/tests).
  const std::vector<double>& observations() const { return observations_; }

  void Clear() { observations_.clear(); }

 private:
  std::vector<double> observations_;
};

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_WORKLOAD_PRIOR_H_
