#include "statistics/selectivity_posterior.h"

#include "util/macros.h"

namespace robustqo {
namespace stats {

BetaPrior BetaPrior::For(PriorKind kind) {
  switch (kind) {
    case PriorKind::kJeffreys:
      return {0.5, 0.5};
    case PriorKind::kUniform:
      return {1.0, 1.0};
  }
  return {0.5, 0.5};
}

namespace {
math::BetaDistribution MakePosterior(uint64_t k, uint64_t n, BetaPrior prior) {
  RQO_CHECK_MSG(k <= n, "k must not exceed n");
  return math::BetaDistribution(prior.alpha + static_cast<double>(k),
                                prior.beta + static_cast<double>(n - k));
}
}  // namespace

SelectivityPosterior::SelectivityPosterior(uint64_t k, uint64_t n,
                                           PriorKind prior)
    : k_(k), n_(n), dist_(MakePosterior(k, n, BetaPrior::For(prior))) {}

SelectivityPosterior::SelectivityPosterior(uint64_t k, uint64_t n,
                                           BetaPrior prior)
    : k_(k), n_(n), dist_(MakePosterior(k, n, prior)) {}

double SelectivityPosterior::EstimateAtConfidence(
    double confidence_threshold) const {
  RQO_CHECK_MSG(confidence_threshold > 0.0 && confidence_threshold < 1.0,
                "confidence threshold must be in (0, 1)");
  return dist_.InverseCdf(confidence_threshold);
}

double SelectivityPosterior::MaxLikelihoodEstimate() const {
  if (n_ == 0) return 0.0;
  return static_cast<double>(k_) / static_cast<double>(n_);
}

}  // namespace stats
}  // namespace robustqo
