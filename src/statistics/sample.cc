#include "statistics/sample.h"

#include <algorithm>

#include "util/macros.h"

namespace robustqo {
namespace stats {

TableSample::TableSample(const storage::Table& table, size_t sample_size,
                         SamplingMode mode, Rng* rng)
    : source_table_(table.name()), source_row_count_(table.VisibleRowCount()) {
  RQO_CHECK(rng != nullptr);
  rows_ = std::make_unique<storage::Table>(table.name() + "$sample",
                                           table.schema());
  if (source_row_count_ == 0) return;

  // Versioned tables sample the *visible* rows only: dead versions left by
  // UPDATE/DELETE are physical storage, not data. Unversioned tables keep
  // the direct-RID draw (bit-identical to the pre-DML code path).
  std::vector<storage::Rid> visible;
  if (table.versioned()) {
    visible.reserve(static_cast<size_t>(source_row_count_));
    for (storage::Rid r = 0; r < table.num_rows(); ++r) {
      if (table.VisibleAt(r)) visible.push_back(r);
    }
  }
  const uint64_t population =
      table.versioned() ? visible.size() : table.num_rows();

  std::vector<uint64_t> picks;
  if (mode == SamplingMode::kWithReplacement) {
    picks = rng->SampleWithReplacement(population, sample_size);
  } else {
    const size_t k =
        std::min<size_t>(sample_size, static_cast<size_t>(population));
    picks = rng->SampleWithoutReplacement(population, k);
  }
  rows_->Reserve(picks.size());
  source_rids_.reserve(picks.size());
  for (uint64_t pick : picks) {
    const storage::Rid rid = table.versioned() ? visible[pick] : pick;
    rows_->AppendRow(table.RowAt(rid));
    source_rids_.push_back(rid);
  }
}

TableSample TableSample::FromSavedRows(
    std::string source_table, uint64_t source_row_count,
    std::unique_ptr<storage::Table> rows) {
  RQO_CHECK(rows != nullptr);
  TableSample sample;
  sample.source_table_ = std::move(source_table);
  sample.source_row_count_ = source_row_count;
  sample.rows_ = std::move(rows);
  return sample;
}

}  // namespace stats
}  // namespace robustqo
