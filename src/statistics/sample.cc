#include "statistics/sample.h"

#include <algorithm>

#include "util/macros.h"

namespace robustqo {
namespace stats {

TableSample::TableSample(const storage::Table& table, size_t sample_size,
                         SamplingMode mode, Rng* rng)
    : source_table_(table.name()), source_row_count_(table.num_rows()) {
  RQO_CHECK(rng != nullptr);
  rows_ = std::make_unique<storage::Table>(table.name() + "$sample",
                                           table.schema());
  if (table.num_rows() == 0) return;

  std::vector<uint64_t> picks;
  if (mode == SamplingMode::kWithReplacement) {
    picks = rng->SampleWithReplacement(table.num_rows(), sample_size);
  } else {
    const size_t k =
        std::min<size_t>(sample_size, static_cast<size_t>(table.num_rows()));
    picks = rng->SampleWithoutReplacement(table.num_rows(), k);
  }
  rows_->Reserve(picks.size());
  source_rids_.reserve(picks.size());
  for (uint64_t rid : picks) {
    rows_->AppendRow(table.RowAt(rid));
    source_rids_.push_back(rid);
  }
}

TableSample TableSample::FromSavedRows(
    std::string source_table, uint64_t source_row_count,
    std::unique_ptr<storage::Table> rows) {
  RQO_CHECK(rows != nullptr);
  TableSample sample;
  sample.source_table_ = std::move(source_table);
  sample.source_row_count_ = source_row_count;
  sample.rows_ = std::move(rows);
  return sample;
}

}  // namespace stats
}  // namespace robustqo
