// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Equi-depth histogram on one column. This models the "standard
// histogram-based estimation module" of the commercial DBMS the paper
// compares against (Section 6.1: ~250 buckets, each storing an attribute
// value plus row and distinct-value counters).

#ifndef ROBUSTQO_STATISTICS_HISTOGRAM_H_
#define ROBUSTQO_STATISTICS_HISTOGRAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storage/table.h"

namespace robustqo {
namespace stats {

/// One histogram bucket covering the key range [lo, hi].
struct HistogramBucket {
  double lo = 0.0;
  double hi = 0.0;
  uint64_t row_count = 0;
  uint64_t distinct_count = 0;
};

/// Equi-depth (equal-height) histogram over a numeric column.
class EquiDepthHistogram {
 public:
  /// Builds a histogram with at most `max_buckets` buckets over
  /// `table.column(column_name)` (must be numeric-physical).
  EquiDepthHistogram(const storage::Table& table,
                     const std::string& column_name, size_t max_buckets = 250);

  /// Reconstructs a histogram from previously saved buckets (persistence).
  static EquiDepthHistogram FromBuckets(std::string column_name,
                                        uint64_t total_rows,
                                        std::vector<HistogramBucket> buckets);

  const std::string& column_name() const { return column_name_; }
  uint64_t total_rows() const { return total_rows_; }
  size_t num_buckets() const { return buckets_.size(); }
  const std::vector<HistogramBucket>& buckets() const { return buckets_; }

  /// Estimated fraction of rows with value in [lo, hi] (either bound open).
  /// Uses the uniform-spread assumption within buckets.
  double EstimateRangeSelectivity(std::optional<double> lo,
                                  std::optional<double> hi) const;

  /// Estimated fraction of rows equal to `v` (bucket rows / bucket
  /// distincts / total).
  double EstimateEqualSelectivity(double v) const;

  /// Sum over buckets of distinct counts (an upper bound on the column's
  /// distinct count — values never span buckets in this build).
  uint64_t TotalDistinct() const;

 private:
  EquiDepthHistogram() = default;

  // Fraction of `bucket`'s rows falling in [lo, hi] clipped to the bucket.
  double BucketOverlapFraction(const HistogramBucket& bucket, double lo,
                               double hi) const;

  std::string column_name_;
  uint64_t total_rows_ = 0;
  std::vector<HistogramBucket> buckets_;
};

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_HISTOGRAM_H_
