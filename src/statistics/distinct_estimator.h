// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Distinct-value estimation from a random sample (paper Section 3.5:
// "Incorporating other operators" — GROUP BY output size depends on the
// number of distinct attribute combinations, and known distinct-value
// estimators, e.g. Haas et al. [13], adapt directly to our samples).
//
// Implemented estimators:
//  * GEE  (Charikar et al.): sqrt(N/n) * f1 + sum_{i>=2} f_i — the
//    guaranteed-error estimator; our default.
//  * Chao: d + f1^2 / (2 f2) — a lower-bound-style estimator, good when
//    the frequency distribution is not too skewed.
//  * Naive: d * N / n capped at N — scale-up of the observed distinct
//    count; included as the baseline the literature improves on.

#ifndef ROBUSTQO_STATISTICS_DISTINCT_ESTIMATOR_H_
#define ROBUSTQO_STATISTICS_DISTINCT_ESTIMATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "statistics/sample.h"
#include "util/status.h"

namespace robustqo {
namespace stats {

/// Which distinct-value estimator to apply.
enum class DistinctMethod {
  kGee,
  kChao,
  kNaiveScaleUp,
};

/// Frequency statistics of a sample: d = distinct values seen, f[i] =
/// number of values seen exactly i times (f[0] unused).
struct SampleFrequencyProfile {
  uint64_t sample_size = 0;
  uint64_t distinct_in_sample = 0;
  std::vector<uint64_t> frequency_of_frequencies;  // index 1..max

  uint64_t f(size_t i) const {
    return i < frequency_of_frequencies.size()
               ? frequency_of_frequencies[i]
               : 0;
  }
};

/// Builds the frequency profile of integer-physical sample values.
SampleFrequencyProfile ProfileValues(const std::vector<int64_t>& values);

/// Builds the profile of column `column` of `sample`, which must be
/// integer-physical (dates/ints; doubles are bucketized by bit pattern).
Result<SampleFrequencyProfile> ProfileSampleColumn(const TableSample& sample,
                                                   const std::string& column);

/// Estimates the number of distinct values in a population of
/// `population_size` rows given a profile of an n-row uniform sample.
/// The result is clamped to [distinct_in_sample, population_size].
double EstimateDistinct(const SampleFrequencyProfile& profile,
                        uint64_t population_size,
                        DistinctMethod method = DistinctMethod::kGee);

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_DISTINCT_ESTIMATOR_H_
