#include "statistics/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace robustqo {
namespace stats {

EquiDepthHistogram::EquiDepthHistogram(const storage::Table& table,
                                       const std::string& column_name,
                                       size_t max_buckets)
    : column_name_(column_name), total_rows_(table.VisibleRowCount()) {
  RQO_CHECK(max_buckets >= 1);
  const storage::ColumnVector& col = table.column(column_name);
  RQO_CHECK_MSG(col.type() != storage::DataType::kString,
                "histograms require numeric-physical columns");

  if (total_rows_ == 0) return;

  // Only the latest-visible row versions feed the histogram; dead versions
  // of updated/deleted rows are physically present but not data.
  std::vector<double> values;
  values.reserve(static_cast<size_t>(total_rows_));
  if (storage::IsIntegerPhysical(col.type())) {
    for (uint64_t i = 0; i < table.num_rows(); ++i) {
      if (table.VisibleAt(i)) {
        values.push_back(static_cast<double>(col.Int64At(i)));
      }
    }
  } else {
    for (uint64_t i = 0; i < table.num_rows(); ++i) {
      if (table.VisibleAt(i)) values.push_back(col.DoubleAt(i));
    }
  }
  std::sort(values.begin(), values.end());
  const uint64_t n = values.size();

  // Equi-depth split with the constraint that equal values never straddle a
  // bucket boundary (runs of duplicates are kept together, as real systems
  // do, so EstimateEqualSelectivity has clean semantics).
  const uint64_t target_depth =
      std::max<uint64_t>(1, (n + max_buckets - 1) / max_buckets);
  size_t i = 0;
  while (i < n) {
    HistogramBucket bucket;
    bucket.lo = values[i];
    uint64_t rows = 0;
    uint64_t distinct = 0;
    double prev = NAN;
    while (i < n) {
      const double v = values[i];
      const bool new_value = rows == 0 || v != prev;
      if (rows >= target_depth && new_value) break;
      if (new_value) ++distinct;
      prev = v;
      ++rows;
      ++i;
    }
    bucket.hi = prev;
    bucket.row_count = rows;
    bucket.distinct_count = distinct;
    buckets_.push_back(bucket);
  }
}

EquiDepthHistogram EquiDepthHistogram::FromBuckets(
    std::string column_name, uint64_t total_rows,
    std::vector<HistogramBucket> buckets) {
  EquiDepthHistogram hist;
  hist.column_name_ = std::move(column_name);
  hist.total_rows_ = total_rows;
  hist.buckets_ = std::move(buckets);
  return hist;
}

double EquiDepthHistogram::BucketOverlapFraction(const HistogramBucket& bucket,
                                                 double lo, double hi) const {
  if (hi < bucket.lo || lo > bucket.hi) return 0.0;
  if (lo <= bucket.lo && hi >= bucket.hi) return 1.0;
  const double width = bucket.hi - bucket.lo;
  if (width <= 0.0) return 1.0;  // single-value bucket, already overlapping
  const double clip_lo = std::max(lo, bucket.lo);
  const double clip_hi = std::min(hi, bucket.hi);
  return std::max(0.0, (clip_hi - clip_lo) / width);
}

double EquiDepthHistogram::EstimateRangeSelectivity(
    std::optional<double> lo, std::optional<double> hi) const {
  if (total_rows_ == 0) return 0.0;
  const double lo_v = lo.value_or(-HUGE_VAL);
  const double hi_v = hi.value_or(HUGE_VAL);
  if (lo_v > hi_v) return 0.0;
  double rows = 0.0;
  for (const auto& bucket : buckets_) {
    rows += BucketOverlapFraction(bucket, lo_v, hi_v) *
            static_cast<double>(bucket.row_count);
  }
  return rows / static_cast<double>(total_rows_);
}

double EquiDepthHistogram::EstimateEqualSelectivity(double v) const {
  if (total_rows_ == 0) return 0.0;
  for (const auto& bucket : buckets_) {
    if (v >= bucket.lo && v <= bucket.hi) {
      if (bucket.distinct_count == 0) return 0.0;
      return static_cast<double>(bucket.row_count) /
             static_cast<double>(bucket.distinct_count) /
             static_cast<double>(total_rows_);
    }
  }
  return 0.0;
}

uint64_t EquiDepthHistogram::TotalDistinct() const {
  uint64_t total = 0;
  for (const auto& bucket : buckets_) total += bucket.distinct_count;
  return total;
}

}  // namespace stats
}  // namespace robustqo
