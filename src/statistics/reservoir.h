// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Reservoir sampling for incremental sample maintenance. The paper's
// precomputation phase runs "periodically whenever a sufficient number of
// database modifications have occurred" (Section 3.2); a reservoir keeps
// the sample uniform under inserts *between* rebuilds, and
// SampleMaintenancePolicy decides when a full rebuild (which also
// refreshes join synopses) is due.

#ifndef ROBUSTQO_STATISTICS_RESERVOIR_H_
#define ROBUSTQO_STATISTICS_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "util/macros.h"
#include "util/rng.h"

namespace robustqo {
namespace stats {

/// Algorithm-R reservoir: after observing any stream prefix of length
/// m >= capacity, the reservoir holds a uniform without-replacement sample
/// of size `capacity` of that prefix.
template <typename T>
class ReservoirSample {
 public:
  ReservoirSample(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {
    RQO_CHECK(capacity > 0);
    items_.reserve(capacity);
  }

  /// Observes one stream element.
  void Add(const T& item) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(item);
      return;
    }
    const uint64_t j = rng_.NextBounded(seen_);
    if (j < capacity_) items_[static_cast<size_t>(j)] = item;
  }

  /// Elements observed so far.
  uint64_t seen() const { return seen_; }
  size_t capacity() const { return capacity_; }
  const std::vector<T>& items() const { return items_; }

  void Reset() {
    items_.clear();
    seen_ = 0;
  }

 private:
  size_t capacity_;
  Rng rng_;
  std::vector<T> items_;
  uint64_t seen_ = 0;
};

/// Decides when summary statistics are stale enough for a rebuild —
/// the UPDATE STATISTICS trigger heuristic.
class SampleMaintenancePolicy {
 public:
  /// Rebuild once modifications exceed `rebuild_fraction` of the table
  /// size at the last rebuild (default 20%, a common DBMS heuristic).
  explicit SampleMaintenancePolicy(double rebuild_fraction = 0.20)
      : rebuild_fraction_(rebuild_fraction) {}

  /// Records that statistics were (re)built over `table_rows` rows.
  void RecordRebuild(uint64_t table_rows) {
    rows_at_rebuild_ = table_rows;
    modifications_ = 0;
  }

  /// Records `count` inserted/updated/deleted rows.
  void RecordModifications(uint64_t count) { modifications_ += count; }

  /// True when a rebuild is due.
  bool RebuildDue() const {
    if (rows_at_rebuild_ == 0) return true;  // never built
    return static_cast<double>(modifications_) >=
           rebuild_fraction_ * static_cast<double>(rows_at_rebuild_);
  }

  uint64_t modifications_since_rebuild() const { return modifications_; }

 private:
  double rebuild_fraction_;
  uint64_t rows_at_rebuild_ = 0;
  uint64_t modifications_ = 0;
};

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_RESERVOIR_H_
