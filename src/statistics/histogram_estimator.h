// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// The baseline: per-column equi-depth histograms combined under the
// attribute-value-independence (AVI) assumption, with the containment
// assumption for foreign-key joins — the estimation strategy of the
// commercial system the paper modifies. Its failure mode on correlated
// predicates is precisely what the experiments of Section 6 exercise.

#ifndef ROBUSTQO_STATISTICS_HISTOGRAM_ESTIMATOR_H_
#define ROBUSTQO_STATISTICS_HISTOGRAM_ESTIMATOR_H_

#include <string>

#include "statistics/cardinality_estimator.h"
#include "statistics/statistics_catalog.h"

namespace robustqo {
namespace stats {

/// Histogram + AVI cardinality estimator.
class HistogramEstimator : public CardinalityEstimator {
 public:
  explicit HistogramEstimator(const StatisticsCatalog* statistics)
      : statistics_(statistics) {}

  /// Estimate = |root| * Π over tables t of sel(t), where sel(t) is the
  /// product of per-conjunct selectivities (AVI): sargable conjuncts use
  /// the histogram on their column; anything else gets a magic number.
  Result<double> EstimateRows(const CardinalityRequest& request) override;

  /// Selectivity of `predicate` against a single table.
  Result<double> EstimateTableSelectivity(const std::string& table,
                                          const expr::ExprPtr& predicate);

  /// Distinct count from the column's histogram (sum of per-bucket
  /// distinct counters — exact up to histogram construction).
  Result<double> EstimateDistinctValues(const std::string& table,
                                        const std::string& column) override;

  std::string name() const override { return "histogram-avi"; }

 private:
  const StatisticsCatalog* statistics_;
};

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_HISTOGRAM_ESTIMATOR_H_
