#include "statistics/statistics_catalog.h"

#include <algorithm>
#include <functional>

#include "util/macros.h"

namespace robustqo {
namespace stats {

namespace {
std::string HistKey(const std::string& table, const std::string& column) {
  return table + "." + column;
}
}  // namespace

void StatisticsCatalog::BuildAllHistograms(size_t buckets) {
  for (const std::string& name : catalog_->TableNames()) {
    const storage::Table* table = catalog_->GetTable(name);
    for (const auto& col : table->schema().columns()) {
      if (col.type == storage::DataType::kString) continue;
      histograms_[HistKey(name, col.name)] =
          std::make_unique<EquiDepthHistogram>(*table, col.name, buckets);
    }
  }
  BumpEpoch();
}

Status StatisticsCatalog::BuildHistogram(const std::string& table,
                                         const std::string& column,
                                         size_t buckets) {
  const storage::Table* t = catalog_->GetTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (!t->schema().HasColumn(column)) {
    return Status::NotFound("column " + table + "." + column);
  }
  histograms_[HistKey(table, column)] =
      std::make_unique<EquiDepthHistogram>(*t, column, buckets);
  BumpEpoch();
  return Status::OK();
}

void StatisticsCatalog::BuildAllSamples(const StatisticsConfig& config) {
  build_config_ = config;
  Rng rng(config.seed);
  for (const std::string& name : catalog_->TableNames()) {
    const storage::Table* table = catalog_->GetTable(name);
    Rng table_rng = rng.Fork();
    samples_[name] = std::make_unique<TableSample>(
        *table, config.sample_size, config.sampling_mode, &table_rng);
    Rng synopsis_rng = rng.Fork();
    synopses_[name] = std::make_unique<JoinSynopsis>(
        *catalog_, name, config.sample_size, config.sampling_mode,
        &synopsis_rng);
    // A full build is the maintenance baseline: restart the modification
    // counter and the reservoir's stream, clear any pending flag.
    Maintenance* state = GetOrCreateMaintenance(name);
    state->policy.RecordRebuild(table->VisibleRowCount());
    state->reservoir->Reset();
    state->pending_rebuild = false;
  }
  BumpEpoch();
}

Status StatisticsCatalog::BuildJoinSynopsis(const std::string& root_table,
                                            const StatisticsConfig& config) {
  if (catalog_->GetTable(root_table) == nullptr) {
    return Status::NotFound("table " + root_table);
  }
  Rng rng(config.seed);
  synopses_[root_table] = std::make_unique<JoinSynopsis>(
      *catalog_, root_table, config.sample_size, config.sampling_mode, &rng);
  BumpEpoch();
  return Status::OK();
}

void StatisticsCatalog::ClearSamples() {
  samples_.clear();
  synopses_.clear();
  BumpEpoch();
}

void StatisticsCatalog::DropSynopsis(const std::string& root_table) {
  // Only the synopsis: the table's own sample stays, so the estimator can
  // degrade one tier (synopsis -> per-table sample) instead of two.
  synopses_.erase(root_table);
  BumpEpoch();
}

void StatisticsCatalog::ClearHistograms() {
  histograms_.clear();
  BumpEpoch();
}

void StatisticsCatalog::InstallHistogram(
    const std::string& table, const std::string& column,
    std::unique_ptr<EquiDepthHistogram> histogram) {
  histograms_[HistKey(table, column)] = std::move(histogram);
  BumpEpoch();
}

void StatisticsCatalog::InstallSample(std::unique_ptr<TableSample> sample) {
  RQO_CHECK(sample != nullptr);
  samples_[sample->source_table()] = std::move(sample);
  BumpEpoch();
}

void StatisticsCatalog::InstallSynopsis(
    std::unique_ptr<JoinSynopsis> synopsis) {
  RQO_CHECK(synopsis != nullptr);
  synopses_[synopsis->root_table()] = std::move(synopsis);
  BumpEpoch();
}

const EquiDepthHistogram* StatisticsCatalog::GetHistogram(
    const std::string& table, const std::string& column) const {
  auto it = histograms_.find(HistKey(table, column));
  return it == histograms_.end() ? nullptr : it->second.get();
}

const TableSample* StatisticsCatalog::GetSample(
    const std::string& table) const {
  auto it = samples_.find(table);
  return it == samples_.end() ? nullptr : it->second.get();
}

const JoinSynopsis* StatisticsCatalog::GetSynopsis(
    const std::string& root_table) const {
  auto it = synopses_.find(root_table);
  return it == synopses_.end() ? nullptr : it->second.get();
}

const JoinSynopsis* StatisticsCatalog::FindCoveringSynopsis(
    const std::set<std::string>& tables) const {
  auto root = catalog_->FindRootTable(tables);
  if (!root.ok()) return nullptr;
  const JoinSynopsis* synopsis = GetSynopsis(root.value());
  if (synopsis == nullptr || !synopsis->Covers(tables)) return nullptr;
  return synopsis;
}

Result<const TableSample*> StatisticsCatalog::TryGetSample(
    const std::string& table) const {
  if (fault_ != nullptr) {
    Status injected = fault_->Check(fault::sites::kSampleRead);
    if (!injected.ok()) {
      return Status(injected.code(),
                    injected.message() + " reading sample for " + table);
    }
  }
  const TableSample* sample = GetSample(table);
  if (sample == nullptr) return Status::NotFound("no sample for " + table);
  return sample;
}

Result<const JoinSynopsis*> StatisticsCatalog::TryFindCoveringSynopsis(
    const std::set<std::string>& tables) const {
  if (fault_ != nullptr) {
    Status injected = fault_->Check(fault::sites::kSynopsisRead);
    if (!injected.ok()) return injected;
  }
  const JoinSynopsis* synopsis = FindCoveringSynopsis(tables);
  if (synopsis == nullptr) {
    return Status::NotFound("no covering join synopsis");
  }
  return synopsis;
}

std::vector<std::pair<std::string, const EquiDepthHistogram*>>
StatisticsCatalog::AllHistograms() const {
  std::vector<std::pair<std::string, const EquiDepthHistogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [key, hist] : histograms_) {
    out.emplace_back(key, hist.get());
  }
  return out;
}

std::vector<const TableSample*> StatisticsCatalog::AllSamples() const {
  std::vector<const TableSample*> out;
  out.reserve(samples_.size());
  for (const auto& [key, sample] : samples_) out.push_back(sample.get());
  return out;
}

std::vector<const JoinSynopsis*> StatisticsCatalog::AllSynopses() const {
  std::vector<const JoinSynopsis*> out;
  out.reserve(synopses_.size());
  for (const auto& [key, synopsis] : synopses_) {
    out.push_back(synopsis.get());
  }
  return out;
}

StatisticsCatalog::Maintenance* StatisticsCatalog::GetOrCreateMaintenance(
    const std::string& table) {
  auto it = maintenance_.find(table);
  if (it == maintenance_.end()) {
    Maintenance state;
    // Each table's reservoir draws from an independent deterministic
    // stream (same per-site idiom as the fault injector).
    state.reservoir = std::make_unique<ReservoirSample<ReservoirRow>>(
        build_config_.sample_size,
        build_config_.seed ^ std::hash<std::string>{}(table));
    it = maintenance_.emplace(table, std::move(state)).first;
  }
  return &it->second;
}

Status StatisticsCatalog::ObserveCommit(
    const std::string& table, const std::vector<ReservoirRow>& inserted_rows,
    uint64_t rows_deleted) {
  if (catalog_->GetTable(table) == nullptr) {
    return Status::NotFound("table " + table);
  }
  // Fault probe first, mutation after: a fired site leaves reservoir and
  // policy exactly as they were, and the caller rolls the write back.
  if (fault_ != nullptr) {
    Status injected = fault_->Check(fault::sites::kReservoirUpdate);
    if (!injected.ok()) {
      return Status(injected.code(), injected.message() +
                                         " updating reservoir for " + table);
    }
  }
  Maintenance* state = GetOrCreateMaintenance(table);
  for (const ReservoirRow& row : inserted_rows) state->reservoir->Add(row);
  state->policy.RecordModifications(inserted_rows.size() + rows_deleted);
  if (state->policy.RebuildDue()) state->pending_rebuild = true;
  return Status::OK();
}

void StatisticsCatalog::MarkPendingRebuild(const std::string& table) {
  if (catalog_->GetTable(table) == nullptr) return;
  GetOrCreateMaintenance(table)->pending_rebuild = true;
}

std::vector<std::string> StatisticsCatalog::TablesPendingRebuild() const {
  std::vector<std::string> tables;
  for (const auto& [table, state] : maintenance_) {
    if (state.pending_rebuild) tables.push_back(table);
  }
  return tables;  // maintenance_ is an ordered map: already sorted
}

Status StatisticsCatalog::RebuildTableStatistics(const std::string& table) {
  const storage::Table* t = catalog_->GetTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);

  for (const auto& col : t->schema().columns()) {
    if (col.type == storage::DataType::kString) continue;
    histograms_[HistKey(table, col.name)] = std::make_unique<EquiDepthHistogram>(
        *t, col.name, build_config_.histogram_buckets);
  }

  // Redraw the sample and every synopsis whose FK closure includes this
  // table. Folding the epoch into the seed makes successive rebuilds
  // independent draws while staying deterministic.
  const uint64_t rebuild_seed = build_config_.seed + epoch_ + 1;
  {
    Rng rng(rebuild_seed ^ std::hash<std::string>{}(table));
    samples_[table] = std::make_unique<TableSample>(
        *t, build_config_.sample_size, build_config_.sampling_mode, &rng);
  }
  std::vector<std::string> roots;
  for (const auto& [root, synopsis] : synopses_) {
    if (synopsis->covered_tables().count(table) > 0) roots.push_back(root);
  }
  std::sort(roots.begin(), roots.end());
  for (const std::string& root : roots) {
    Rng rng(rebuild_seed ^ std::hash<std::string>{}(root));
    synopses_[root] = std::make_unique<JoinSynopsis>(
        *catalog_, root, build_config_.sample_size,
        build_config_.sampling_mode, &rng);
  }

  Maintenance* state = GetOrCreateMaintenance(table);
  state->policy.RecordRebuild(t->VisibleRowCount());
  state->reservoir->Reset();
  state->pending_rebuild = false;
  BumpEpoch();
  return Status::OK();
}

uint64_t StatisticsCatalog::RebuildAllPending() {
  uint64_t rebuilt = 0;
  for (const std::string& table : TablesPendingRebuild()) {
    if (RebuildTableStatistics(table).ok()) ++rebuilt;
  }
  return rebuilt;
}

std::vector<StatisticsCatalog::MaintenanceEntry>
StatisticsCatalog::MaintenanceState() const {
  std::vector<MaintenanceEntry> entries;
  entries.reserve(maintenance_.size());
  for (const auto& [table, state] : maintenance_) {
    MaintenanceEntry entry;
    entry.table = table;
    entry.reservoir_seen = state.reservoir->seen();
    entry.reservoir_filled = state.reservoir->items().size();
    entry.reservoir_capacity = state.reservoir->capacity();
    entry.modifications = state.policy.modifications_since_rebuild();
    entry.pending_rebuild = state.pending_rebuild;
    entries.push_back(entry);
  }
  return entries;
}

const ReservoirSample<StatisticsCatalog::ReservoirRow>*
StatisticsCatalog::Reservoir(const std::string& table) const {
  auto it = maintenance_.find(table);
  return it == maintenance_.end() ? nullptr : it->second.reservoir.get();
}

size_t StatisticsCatalog::ApproximateSummaryBytes() const {
  size_t bytes = 0;
  for (const auto& [key, hist] : histograms_) {
    // value + row counter + distinct counter per bucket (8 + 4 + 4).
    bytes += hist->num_buckets() * 16;
  }
  for (const auto& [key, sample] : samples_) {
    bytes += static_cast<size_t>(sample->size()) *
             sample->rows().schema().num_columns() * 8;
  }
  for (const auto& [key, synopsis] : synopses_) {
    bytes += static_cast<size_t>(synopsis->size()) *
             synopsis->rows().schema().num_columns() * 8;
  }
  return bytes;
}

}  // namespace stats
}  // namespace robustqo
