#include "statistics/statistics_catalog.h"

#include "util/macros.h"

namespace robustqo {
namespace stats {

namespace {
std::string HistKey(const std::string& table, const std::string& column) {
  return table + "." + column;
}
}  // namespace

void StatisticsCatalog::BuildAllHistograms(size_t buckets) {
  for (const std::string& name : catalog_->TableNames()) {
    const storage::Table* table = catalog_->GetTable(name);
    for (const auto& col : table->schema().columns()) {
      if (col.type == storage::DataType::kString) continue;
      histograms_[HistKey(name, col.name)] =
          std::make_unique<EquiDepthHistogram>(*table, col.name, buckets);
    }
  }
  BumpEpoch();
}

Status StatisticsCatalog::BuildHistogram(const std::string& table,
                                         const std::string& column,
                                         size_t buckets) {
  const storage::Table* t = catalog_->GetTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (!t->schema().HasColumn(column)) {
    return Status::NotFound("column " + table + "." + column);
  }
  histograms_[HistKey(table, column)] =
      std::make_unique<EquiDepthHistogram>(*t, column, buckets);
  BumpEpoch();
  return Status::OK();
}

void StatisticsCatalog::BuildAllSamples(const StatisticsConfig& config) {
  Rng rng(config.seed);
  for (const std::string& name : catalog_->TableNames()) {
    const storage::Table* table = catalog_->GetTable(name);
    Rng table_rng = rng.Fork();
    samples_[name] = std::make_unique<TableSample>(
        *table, config.sample_size, config.sampling_mode, &table_rng);
    Rng synopsis_rng = rng.Fork();
    synopses_[name] = std::make_unique<JoinSynopsis>(
        *catalog_, name, config.sample_size, config.sampling_mode,
        &synopsis_rng);
  }
  BumpEpoch();
}

Status StatisticsCatalog::BuildJoinSynopsis(const std::string& root_table,
                                            const StatisticsConfig& config) {
  if (catalog_->GetTable(root_table) == nullptr) {
    return Status::NotFound("table " + root_table);
  }
  Rng rng(config.seed);
  synopses_[root_table] = std::make_unique<JoinSynopsis>(
      *catalog_, root_table, config.sample_size, config.sampling_mode, &rng);
  BumpEpoch();
  return Status::OK();
}

void StatisticsCatalog::ClearSamples() {
  samples_.clear();
  synopses_.clear();
  BumpEpoch();
}

void StatisticsCatalog::DropSynopsis(const std::string& root_table) {
  // Only the synopsis: the table's own sample stays, so the estimator can
  // degrade one tier (synopsis -> per-table sample) instead of two.
  synopses_.erase(root_table);
  BumpEpoch();
}

void StatisticsCatalog::ClearHistograms() {
  histograms_.clear();
  BumpEpoch();
}

void StatisticsCatalog::InstallHistogram(
    const std::string& table, const std::string& column,
    std::unique_ptr<EquiDepthHistogram> histogram) {
  histograms_[HistKey(table, column)] = std::move(histogram);
  BumpEpoch();
}

void StatisticsCatalog::InstallSample(std::unique_ptr<TableSample> sample) {
  RQO_CHECK(sample != nullptr);
  samples_[sample->source_table()] = std::move(sample);
  BumpEpoch();
}

void StatisticsCatalog::InstallSynopsis(
    std::unique_ptr<JoinSynopsis> synopsis) {
  RQO_CHECK(synopsis != nullptr);
  synopses_[synopsis->root_table()] = std::move(synopsis);
  BumpEpoch();
}

const EquiDepthHistogram* StatisticsCatalog::GetHistogram(
    const std::string& table, const std::string& column) const {
  auto it = histograms_.find(HistKey(table, column));
  return it == histograms_.end() ? nullptr : it->second.get();
}

const TableSample* StatisticsCatalog::GetSample(
    const std::string& table) const {
  auto it = samples_.find(table);
  return it == samples_.end() ? nullptr : it->second.get();
}

const JoinSynopsis* StatisticsCatalog::GetSynopsis(
    const std::string& root_table) const {
  auto it = synopses_.find(root_table);
  return it == synopses_.end() ? nullptr : it->second.get();
}

const JoinSynopsis* StatisticsCatalog::FindCoveringSynopsis(
    const std::set<std::string>& tables) const {
  auto root = catalog_->FindRootTable(tables);
  if (!root.ok()) return nullptr;
  const JoinSynopsis* synopsis = GetSynopsis(root.value());
  if (synopsis == nullptr || !synopsis->Covers(tables)) return nullptr;
  return synopsis;
}

Result<const TableSample*> StatisticsCatalog::TryGetSample(
    const std::string& table) const {
  if (fault_ != nullptr) {
    Status injected = fault_->Check(fault::sites::kSampleRead);
    if (!injected.ok()) {
      return Status(injected.code(),
                    injected.message() + " reading sample for " + table);
    }
  }
  const TableSample* sample = GetSample(table);
  if (sample == nullptr) return Status::NotFound("no sample for " + table);
  return sample;
}

Result<const JoinSynopsis*> StatisticsCatalog::TryFindCoveringSynopsis(
    const std::set<std::string>& tables) const {
  if (fault_ != nullptr) {
    Status injected = fault_->Check(fault::sites::kSynopsisRead);
    if (!injected.ok()) return injected;
  }
  const JoinSynopsis* synopsis = FindCoveringSynopsis(tables);
  if (synopsis == nullptr) {
    return Status::NotFound("no covering join synopsis");
  }
  return synopsis;
}

std::vector<std::pair<std::string, const EquiDepthHistogram*>>
StatisticsCatalog::AllHistograms() const {
  std::vector<std::pair<std::string, const EquiDepthHistogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [key, hist] : histograms_) {
    out.emplace_back(key, hist.get());
  }
  return out;
}

std::vector<const TableSample*> StatisticsCatalog::AllSamples() const {
  std::vector<const TableSample*> out;
  out.reserve(samples_.size());
  for (const auto& [key, sample] : samples_) out.push_back(sample.get());
  return out;
}

std::vector<const JoinSynopsis*> StatisticsCatalog::AllSynopses() const {
  std::vector<const JoinSynopsis*> out;
  out.reserve(synopses_.size());
  for (const auto& [key, synopsis] : synopses_) {
    out.push_back(synopsis.get());
  }
  return out;
}

size_t StatisticsCatalog::ApproximateSummaryBytes() const {
  size_t bytes = 0;
  for (const auto& [key, hist] : histograms_) {
    // value + row counter + distinct counter per bucket (8 + 4 + 4).
    bytes += hist->num_buckets() * 16;
  }
  for (const auto& [key, sample] : samples_) {
    bytes += static_cast<size_t>(sample->size()) *
             sample->rows().schema().num_columns() * 8;
  }
  for (const auto& [key, synopsis] : synopses_) {
    bytes += static_cast<size_t>(synopsis->size()) *
             synopsis->rows().schema().num_columns() * 8;
  }
  return bytes;
}

}  // namespace stats
}  // namespace robustqo
