// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// StatisticsCatalog: the summary-statistics store a DBMS maintains —
// per-column histograms, per-table uniform samples, and join synopses. The
// Build* functions are the UPDATE STATISTICS analogue (paper Section 3.2,
// precomputation phase).

#ifndef ROBUSTQO_STATISTICS_STATISTICS_CATALOG_H_
#define ROBUSTQO_STATISTICS_STATISTICS_CATALOG_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault_injector.h"
#include "statistics/histogram.h"
#include "statistics/join_synopsis.h"
#include "statistics/reservoir.h"
#include "statistics/sample.h"
#include "storage/catalog.h"
#include "util/rng.h"
#include "util/status.h"

namespace robustqo {
namespace stats {

/// Knobs for statistics construction.
struct StatisticsConfig {
  /// Tuples per sample / join synopsis (the paper uses 500 by default).
  size_t sample_size = 500;
  /// Buckets per histogram (the paper's baseline system uses ~250).
  size_t histogram_buckets = 250;
  /// Sampling model; with-replacement matches the Bayesian analysis.
  SamplingMode sampling_mode = SamplingMode::kWithReplacement;
  /// Seed for all sample draws; vary to repeat an experiment over
  /// different random samples (the paper averages over 12-20 draws).
  uint64_t seed = 42;
};

/// Owns all summary statistics for one database.
class StatisticsCatalog {
 public:
  explicit StatisticsCatalog(const storage::Catalog* catalog)
      : catalog_(catalog) {}
  StatisticsCatalog(const StatisticsCatalog&) = delete;
  StatisticsCatalog& operator=(const StatisticsCatalog&) = delete;

  const storage::Catalog& catalog() const { return *catalog_; }

  /// Builds a histogram on every numeric column of every table.
  void BuildAllHistograms(size_t buckets = 250);

  /// Builds a histogram on one column.
  Status BuildHistogram(const std::string& table, const std::string& column,
                        size_t buckets = 250);

  /// Builds per-table samples and per-root join synopses for every table,
  /// using `config`. Rebuilding with a different seed redraws every sample.
  void BuildAllSamples(const StatisticsConfig& config);

  /// Builds the join synopsis rooted at one table.
  Status BuildJoinSynopsis(const std::string& root_table,
                           const StatisticsConfig& config);

  /// Drops every sample and synopsis (e.g. to model the no-statistics
  /// fallbacks of Section 3.5).
  void ClearSamples();
  /// Drops the synopsis rooted at one table (per-table samples stay).
  void DropSynopsis(const std::string& root_table);
  /// Drops all histograms.
  void ClearHistograms();

  /// Installs externally constructed statistics (used by persistence;
  /// replaces any existing entry for the same key).
  void InstallHistogram(const std::string& table, const std::string& column,
                        std::unique_ptr<EquiDepthHistogram> histogram);
  void InstallSample(std::unique_ptr<TableSample> sample);
  void InstallSynopsis(std::unique_ptr<JoinSynopsis> synopsis);

  /// Lookup; nullptr when absent.
  const EquiDepthHistogram* GetHistogram(const std::string& table,
                                         const std::string& column) const;
  const TableSample* GetSample(const std::string& table) const;
  const JoinSynopsis* GetSynopsis(const std::string& root_table) const;

  /// The synopsis that can answer an SPJ expression over `tables` (rooted
  /// at the FK-root of the set); nullptr if none was built.
  const JoinSynopsis* FindCoveringSynopsis(
      const std::set<std::string>& tables) const;

  /// Fault-aware accessors: the statistics-store reads that can fail
  /// transiently in a real system. They probe the injector's sample-read /
  /// synopsis-read sites (kUnavailable when a fault fires) and report
  /// genuinely absent statistics as kNotFound — so callers can distinguish
  /// "retry may help" from "degrade now".
  Result<const TableSample*> TryGetSample(const std::string& table) const;
  Result<const JoinSynopsis*> TryFindCoveringSynopsis(
      const std::set<std::string>& tables) const;

  /// Installs the fault injector probed by the Try* accessors (borrowed,
  /// nullable = reads never fail).
  void SetFaultInjector(fault::FaultInjector* fault) { fault_ = fault; }
  fault::FaultInjector* fault_injector() const { return fault_; }

  /// Total bytes of summary data held, approximated as 8 bytes per numeric
  /// cell (for the storage-parity discussion of Section 6.1).
  size_t ApproximateSummaryBytes() const;

  /// Monotonically increasing statistics epoch. Every mutation of the
  /// summary store — histogram/sample/synopsis builds, drops, and installs
  /// — bumps it, so any consumer that captured statistics-derived state
  /// (most importantly the server's plan cache, which keys entries by
  /// epoch) can detect staleness with one integer compare. Exported as the
  /// `stats.epoch` gauge; never decreases, never resets.
  uint64_t epoch() const { return epoch_; }

  /// Enumeration for persistence/diagnostics. Histogram keys are
  /// "table.column"; samples/synopses are keyed by table.
  std::vector<std::pair<std::string, const EquiDepthHistogram*>>
  AllHistograms() const;
  std::vector<const TableSample*> AllSamples() const;
  std::vector<const JoinSynopsis*> AllSynopses() const;

  // --- Online maintenance (paper Section 3.2's "periodically whenever a
  // sufficient number of database modifications have occurred", made
  // continuous) ---------------------------------------------------------
  //
  // Committed DML feeds a per-table Algorithm-R reservoir (a uniform
  // sample of the insert stream since the last rebuild) and a
  // SampleMaintenancePolicy; once modifications pass the policy's
  // threshold the table is flagged pending and the next background
  // rebuild redraws its histograms/sample/synopses and bumps the
  // statistics epoch — which is what lazily invalidates cached plans.

  /// The per-tuple reservoir row type.
  using ReservoirRow = std::vector<storage::Value>;

  /// Observes one committed batch against `table`. Probes the
  /// stats.reservoir.update fault site first and mutates nothing when it
  /// fires — callers run this as the last fallible step before a commit
  /// publishes, so sample and table always move together. Does NOT bump
  /// the statistics epoch (only a rebuild changes estimates).
  Status ObserveCommit(const std::string& table,
                       const std::vector<ReservoirRow>& inserted_rows,
                       uint64_t rows_deleted);

  /// Marks `table` stale regardless of modification volume (the quality
  /// monitor's drift flag routes here).
  void MarkPendingRebuild(const std::string& table);

  /// Tables currently flagged for rebuild (sorted).
  std::vector<std::string> TablesPendingRebuild() const;
  bool RebuildPending() const { return !TablesPendingRebuild().empty(); }

  /// Rebuilds histograms, the table sample, and every synopsis covering
  /// `table` from current (visible) data; resets the table's maintenance
  /// state and bumps the statistics epoch.
  Status RebuildTableStatistics(const std::string& table);

  /// Rebuilds every pending table; returns how many were rebuilt.
  uint64_t RebuildAllPending();

  /// Per-table maintenance snapshot for the shell's `.epoch` view.
  struct MaintenanceEntry {
    std::string table;
    uint64_t reservoir_seen = 0;      ///< stream length since last rebuild
    size_t reservoir_filled = 0;      ///< rows currently held
    size_t reservoir_capacity = 0;
    uint64_t modifications = 0;       ///< rows touched since last rebuild
    bool pending_rebuild = false;
  };
  std::vector<MaintenanceEntry> MaintenanceState() const;

  /// The reservoir for `table` (nullptr before its first observed commit);
  /// test hook for the deterministic-replacement and rollback-consistency
  /// suites.
  const ReservoirSample<ReservoirRow>* Reservoir(
      const std::string& table) const;

  /// The configuration the next background rebuild uses — remembered from
  /// the last BuildAllSamples call.
  const StatisticsConfig& build_config() const { return build_config_; }

 private:
  void BumpEpoch() { ++epoch_; }

  struct Maintenance {
    std::unique_ptr<ReservoirSample<ReservoirRow>> reservoir;
    SampleMaintenancePolicy policy;
    bool pending_rebuild = false;
  };
  Maintenance* GetOrCreateMaintenance(const std::string& table);

  const storage::Catalog* catalog_;
  uint64_t epoch_ = 0;
  fault::FaultInjector* fault_ = nullptr;
  std::unordered_map<std::string, std::unique_ptr<EquiDepthHistogram>>
      histograms_;  // "table.column"
  std::unordered_map<std::string, std::unique_ptr<TableSample>> samples_;
  std::unordered_map<std::string, std::unique_ptr<JoinSynopsis>> synopses_;
  std::map<std::string, Maintenance> maintenance_;
  StatisticsConfig build_config_;
};

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_STATISTICS_CATALOG_H_
