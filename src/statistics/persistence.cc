#include "statistics/persistence.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "storage/csv.h"
#include "util/string_util.h"

namespace robustqo {
namespace stats {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMagic = "robustqo-statistics-v1";

std::string SafeName(std::string s) {
  for (char& c : s) {
    if (c == '.' || c == '/' || c == '\\') c = '_';
  }
  return s;
}

Result<storage::DataType> TypeFromName(const std::string& name) {
  if (name == "INT64") return storage::DataType::kInt64;
  if (name == "DOUBLE") return storage::DataType::kDouble;
  if (name == "STRING") return storage::DataType::kString;
  if (name == "DATE") return storage::DataType::kDate;
  return Status::InvalidArgument("unknown type " + name);
}

std::string SchemaLine(const storage::Schema& schema) {
  std::vector<std::string> parts;
  parts.reserve(schema.num_columns());
  for (const auto& col : schema.columns()) {
    parts.push_back(col.name + ":" + storage::DataTypeName(col.type));
  }
  return StrJoin(parts, ",");
}

Result<storage::Schema> ParseSchemaLine(const std::string& line) {
  std::vector<storage::ColumnDef> defs;
  std::stringstream stream(line);
  std::string part;
  while (std::getline(stream, part, ',')) {
    const size_t colon = part.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad schema entry: " + part);
    }
    Result<storage::DataType> type = TypeFromName(part.substr(colon + 1));
    if (!type.ok()) return type.status();
    defs.push_back({part.substr(0, colon), type.value()});
  }
  if (defs.empty()) return Status::InvalidArgument("empty schema line");
  return storage::Schema(std::move(defs));
}

Status WriteHistogram(const std::string& key, const EquiDepthHistogram& hist,
                      const fs::path& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::Internal("cannot write " + path.string());
  // key is "table.column"; split on the first dot.
  const size_t dot = key.find('.');
  out << kMagic << " histogram\n";
  out << "key " << key.substr(0, dot) << " " << key.substr(dot + 1) << "\n";
  out << "rows " << hist.total_rows() << "\n";
  out << "data\n";
  for (const auto& bucket : hist.buckets()) {
    out << StrPrintf("%.17g %.17g %llu %llu\n", bucket.lo, bucket.hi,
                     static_cast<unsigned long long>(bucket.row_count),
                     static_cast<unsigned long long>(bucket.distinct_count));
  }
  return out.good() ? Status::OK() : Status::Internal("write failed");
}

Status WriteTupleEntry(const char* kind, const std::string& table,
                       uint64_t rows_meta, const std::string& covers_line,
                       const storage::Table& tuples, const fs::path& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::Internal("cannot write " + path.string());
  out << kMagic << " " << kind << "\n";
  out << "key " << table << "\n";
  out << "rows " << rows_meta << "\n";
  if (!covers_line.empty()) out << "covers " << covers_line << "\n";
  out << "schema " << SchemaLine(tuples.schema()) << "\n";
  out << "data\n";
  storage::CsvOptions options;
  options.has_header = false;
  RQO_RETURN_NOT_OK(storage::WriteCsv(tuples, &out, options));
  return out.good() ? Status::OK() : Status::Internal("write failed");
}

struct EntryHeader {
  std::string kind;
  std::string table;
  std::string column;  // histograms only
  uint64_t rows = 0;
  std::set<std::string> covers;
  std::string schema_line;
};

Result<EntryHeader> ReadHeader(std::istream* in, const std::string& file) {
  EntryHeader header;
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument(file + ": empty file");
  }
  std::stringstream magic(line);
  std::string tag;
  magic >> tag >> header.kind;
  if (tag != kMagic) {
    return Status::InvalidArgument(file + ": bad magic");
  }
  while (std::getline(*in, line) && line != "data") {
    std::stringstream stream(line);
    std::string field;
    stream >> field;
    if (field == "key") {
      stream >> header.table >> header.column;
    } else if (field == "rows") {
      stream >> header.rows;
    } else if (field == "covers") {
      std::string rest;
      stream >> rest;
      std::stringstream covers(rest);
      std::string t;
      while (std::getline(covers, t, ',')) header.covers.insert(t);
    } else if (field == "schema") {
      header.schema_line = line.substr(7);
    } else {
      return Status::InvalidArgument(file + ": unknown field " + field);
    }
  }
  if (line != "data") {
    return Status::InvalidArgument(file + ": missing data section");
  }
  return header;
}

Status LoadOneFile(const fs::path& path, StatisticsCatalog* statistics) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path.string());
  Result<EntryHeader> header = ReadHeader(&in, path.filename().string());
  if (!header.ok()) return header.status();
  const EntryHeader& h = header.value();

  if (h.kind == "histogram") {
    std::vector<HistogramBucket> buckets;
    HistogramBucket bucket;
    unsigned long long rows = 0;
    unsigned long long distinct = 0;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (std::sscanf(line.c_str(), "%lg %lg %llu %llu", &bucket.lo,
                      &bucket.hi, &rows, &distinct) != 4) {
        return Status::InvalidArgument(path.string() + ": bad bucket line");
      }
      bucket.row_count = rows;
      bucket.distinct_count = distinct;
      buckets.push_back(bucket);
    }
    statistics->InstallHistogram(
        h.table, h.column,
        std::make_unique<EquiDepthHistogram>(EquiDepthHistogram::FromBuckets(
            h.column, h.rows, std::move(buckets))));
    return Status::OK();
  }

  // Tuple-bearing entries (sample / synopsis).
  Result<storage::Schema> schema = ParseSchemaLine(h.schema_line);
  if (!schema.ok()) return schema.status();
  storage::CsvOptions options;
  options.has_header = false;
  Result<std::unique_ptr<storage::Table>> tuples = storage::ReadCsv(
      &in, h.table + "$restored", schema.value(), options);
  if (!tuples.ok()) return tuples.status();

  if (h.kind == "sample") {
    statistics->InstallSample(
        std::make_unique<TableSample>(TableSample::FromSavedRows(
            h.table, h.rows, std::move(tuples).value())));
    return Status::OK();
  }
  if (h.kind == "synopsis") {
    statistics->InstallSynopsis(
        std::make_unique<JoinSynopsis>(JoinSynopsis::FromSavedRows(
            h.table, h.rows, h.covers, std::move(tuples).value())));
    return Status::OK();
  }
  return Status::InvalidArgument(path.string() + ": unknown kind " + h.kind);
}

}  // namespace

Status SaveStatistics(const StatisticsCatalog& statistics,
                      const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) return Status::Internal("cannot create " + directory);

  for (const auto& [key, hist] : statistics.AllHistograms()) {
    RQO_RETURN_NOT_OK(WriteHistogram(
        key, *hist, fs::path(directory) / ("hist_" + SafeName(key) + ".rqs")));
  }
  for (const TableSample* sample : statistics.AllSamples()) {
    RQO_RETURN_NOT_OK(WriteTupleEntry(
        "sample", sample->source_table(), sample->source_row_count(), "",
        sample->rows(),
        fs::path(directory) /
            ("sample_" + SafeName(sample->source_table()) + ".rqs")));
  }
  for (const JoinSynopsis* synopsis : statistics.AllSynopses()) {
    std::vector<std::string> covers(synopsis->covered_tables().begin(),
                                    synopsis->covered_tables().end());
    RQO_RETURN_NOT_OK(WriteTupleEntry(
        "synopsis", synopsis->root_table(), synopsis->root_row_count(),
        StrJoin(covers, ","), synopsis->rows(),
        fs::path(directory) /
            ("synopsis_" + SafeName(synopsis->root_table()) + ".rqs")));
  }
  return Status::OK();
}

Status LoadStatistics(const std::string& directory,
                      StatisticsCatalog* statistics) {
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return Status::NotFound(directory + " is not a directory");
  }
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".rqs") continue;
    RQO_RETURN_NOT_OK(LoadOneFile(entry.path(), statistics));
  }
  if (ec) return Status::Internal("error scanning " + directory);
  return Status::OK();
}

}  // namespace stats
}  // namespace robustqo
