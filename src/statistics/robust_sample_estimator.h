// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// The paper's contribution: cardinality estimation that (1) evaluates the
// predicate on a precomputed join synopsis, (2) infers a Beta posterior for
// the true selectivity by Bayes's rule, and (3) condenses the posterior to
// the single value cdf^{-1}(T) where T is the user's confidence threshold —
// the knob trading expected performance against predictability
// (Sections 3.1-3.4).

#ifndef ROBUSTQO_STATISTICS_ROBUST_SAMPLE_ESTIMATOR_H_
#define ROBUSTQO_STATISTICS_ROBUST_SAMPLE_ESTIMATOR_H_

#include <cstdint>
#include <optional>
#include <string>

#include "statistics/cardinality_estimator.h"
#include "statistics/selectivity_posterior.h"
#include "statistics/statistics_catalog.h"

namespace robustqo {
namespace stats {

/// System-wide robustness presets (paper Section 6.2.5): query hints can
/// still override the threshold per query.
enum class RobustnessLevel {
  kAggressive,    ///< T = 50%
  kModerate,      ///< T = 80% — the recommended general-purpose baseline
  kConservative,  ///< T = 95%
};

/// Confidence threshold for a robustness preset.
double ConfidenceThresholdFor(RobustnessLevel level);

/// Configuration of the robust estimator.
struct RobustEstimatorConfig {
  /// Percentile of the selectivity posterior reported to the optimizer.
  double confidence_threshold = 0.80;
  /// Prior for Bayesian inference (Jeffreys unless otherwise stated).
  PriorKind prior = PriorKind::kJeffreys;
  /// When set, overrides `prior` with an arbitrary Beta prior — e.g. one
  /// fitted from workload feedback (WorkloadPriorBuilder, Section 3.3's
  /// "prior knowledge about the query workload").
  std::optional<BetaPrior> custom_prior;

  /// The effective Beta prior.
  BetaPrior EffectivePrior() const {
    return custom_prior.value_or(BetaPrior::For(prior));
  }

  static RobustEstimatorConfig For(RobustnessLevel level);
};

/// Robust sample-based cardinality estimator.
class RobustSampleEstimator : public CardinalityEstimator {
 public:
  RobustSampleEstimator(const StatisticsCatalog* statistics,
                        RobustEstimatorConfig config)
      : statistics_(statistics), config_(config) {}

  /// Estimate = cdf^{-1}(T) of the selectivity posterior, scaled by the
  /// root table's row count. Fallback chain when no covering synopsis
  /// exists (Section 3.5): independent per-table samples combined with
  /// AVI + containment; then the "magic distribution" quantile at T.
  Result<double> EstimateRows(const CardinalityRequest& request) override;

  /// The full posterior for a request, when a covering synopsis exists.
  /// This is what a least-expected-cost or crossover analysis would
  /// consume; EstimateRows is its cdf^{-1}(T) condensation.
  Result<SelectivityPosterior> EstimatePosterior(
      const CardinalityRequest& request) const;

  /// The (k, n) sample observation behind EstimatePosterior.
  struct Observation {
    uint64_t satisfying = 0;  ///< k
    uint64_t sample_size = 0;  ///< n
    uint64_t root_rows = 0;    ///< |root table|
  };
  Result<Observation> Observe(const CardinalityRequest& request) const;

  /// Distinct count via the GEE estimator over the table's sample
  /// (Section 3.5's distinct-values extension).
  Result<double> EstimateDistinctValues(const std::string& table,
                                        const std::string& column) override;

  const RobustEstimatorConfig& config() const { return config_; }
  RobustEstimatorConfig* mutable_config() { return &config_; }
  void set_confidence_threshold(double t) { config_.confidence_threshold = t; }

  std::string name() const override;

 private:
  const StatisticsCatalog* statistics_;
  RobustEstimatorConfig config_;
};

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_ROBUST_SAMPLE_ESTIMATOR_H_
