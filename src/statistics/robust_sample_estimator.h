// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// The paper's contribution: cardinality estimation that (1) evaluates the
// predicate on a precomputed join synopsis, (2) infers a Beta posterior for
// the true selectivity by Bayes's rule, and (3) condenses the posterior to
// the single value cdf^{-1}(T) where T is the user's confidence threshold —
// the knob trading expected performance against predictability
// (Sections 3.1-3.4).

#ifndef ROBUSTQO_STATISTICS_ROBUST_SAMPLE_ESTIMATOR_H_
#define ROBUSTQO_STATISTICS_ROBUST_SAMPLE_ESTIMATOR_H_

#include <cstdint>
#include <optional>
#include <string>

#include "fault/retry.h"
#include "learning/feedback_store.h"
#include "perf/caches.h"
#include "statistics/cardinality_estimator.h"
#include "statistics/histogram_estimator.h"
#include "statistics/selectivity_posterior.h"
#include "statistics/statistics_catalog.h"

namespace robustqo {
namespace stats {

/// System-wide robustness presets (paper Section 6.2.5): query hints can
/// still override the threshold per query.
enum class RobustnessLevel {
  kAggressive,    ///< T = 50%
  kModerate,      ///< T = 80% — the recommended general-purpose baseline
  kConservative,  ///< T = 95%
};

/// Confidence threshold for a robustness preset.
double ConfidenceThresholdFor(RobustnessLevel level);

/// Configuration of the robust estimator.
struct RobustEstimatorConfig {
  /// Percentile of the selectivity posterior reported to the optimizer.
  double confidence_threshold = 0.80;
  /// Prior for Bayesian inference (Jeffreys unless otherwise stated).
  PriorKind prior = PriorKind::kJeffreys;
  /// When set, overrides `prior` with an arbitrary Beta prior — e.g. one
  /// fitted from workload feedback (WorkloadPriorBuilder, Section 3.3's
  /// "prior knowledge about the query workload").
  std::optional<BetaPrior> custom_prior;
  /// Retry schedule for transient statistics-store reads (synopsis/sample
  /// lookups that fail with kUnavailable).
  fault::RetryPolicy retry;
  /// Equivalent sample size of the tier-4 "default wide" posterior: the
  /// prior-only Beta the estimator falls back to when a conjunct has no
  /// synopsis, no sample and no histogram. Small n_eq = wide posterior, so
  /// conservative thresholds assume many rows.
  double default_equivalent_n = 2.0;

  /// The effective Beta prior.
  BetaPrior EffectivePrior() const {
    return custom_prior.value_or(BetaPrior::For(prior));
  }

  static RobustEstimatorConfig For(RobustnessLevel level);
};

/// Robust sample-based cardinality estimator with graceful degradation:
/// each estimate walks a cascade of progressively weaker evidence instead
/// of failing when statistics are missing or transiently unreadable.
///
///   tier 1  covering join synopsis   (the paper's primary path)
///   learned execution feedback       (FeedbackStore pseudo-evidence)
///   tier 2  per-table samples + AVI  (Section 3.5's fallback)
///   tier 3  histogram/AVI baseline   (the commercial-system estimate)
///   tier 4  default-wide posterior   (prior-only Beta, quantile at T)
///
/// When a learning FeedbackStore is installed (set_feedback_store), the
/// estimator consults learned selectivity corrections keyed by the
/// canonical predicate fingerprint: on a hit the learned pseudo-counts
/// merge into the Beta prior (sharpening tier 1/2 posteriors toward what
/// execution actually measured), and when a synopsis or sample is missing
/// the learned evidence itself becomes the posterior — a "learned" tier
/// consulted before falling further down the cascade. Estimates with a
/// learned correction trace with source=learned, carrying both the
/// pre-correction (selectivity_raw) and corrected selectivity.
///
/// Transient (kUnavailable) statistics reads are retried with
/// deterministic backoff before degrading; every degradation emits an
/// "estimator"/"degraded" trace event and an estimator.degraded.* counter.
class RobustSampleEstimator : public CardinalityEstimator {
 public:
  RobustSampleEstimator(const StatisticsCatalog* statistics,
                        RobustEstimatorConfig config)
      : statistics_(statistics),
        config_(config),
        histogram_fallback_(statistics) {}

  /// Estimate = cdf^{-1}(T) of the selectivity posterior, scaled by the
  /// root table's row count, degrading through the tiers above as
  /// evidence is unavailable.
  Result<double> EstimateRows(const CardinalityRequest& request) override;

  /// The full posterior for a request, when a covering synopsis exists.
  /// This is what a least-expected-cost or crossover analysis would
  /// consume; EstimateRows is its cdf^{-1}(T) condensation.
  Result<SelectivityPosterior> EstimatePosterior(
      const CardinalityRequest& request) const;

  /// The (k, n) sample observation behind EstimatePosterior.
  struct Observation {
    uint64_t satisfying = 0;  ///< k
    uint64_t sample_size = 0;  ///< n
    uint64_t root_rows = 0;    ///< |root table|
  };
  Result<Observation> Observe(const CardinalityRequest& request) const;

  /// Distinct count via the GEE estimator over the table's sample
  /// (Section 3.5's distinct-values extension).
  Result<double> EstimateDistinctValues(const std::string& table,
                                        const std::string& column) override;

  const RobustEstimatorConfig& config() const { return config_; }
  RobustEstimatorConfig* mutable_config() { return &config_; }
  void set_confidence_threshold(double t) { config_.confidence_threshold = t; }

  std::string name() const override;

  /// Tier-4 selectivity: quantile at the confidence threshold of the wide
  /// default posterior Beta(s0*n_eq, (1-s0)*n_eq), s0 = 1/3 (the classic
  /// range magic number). Exposed for tests.
  double DefaultWideSelectivity() const;

  /// Installs/uninstalls a per-query probe-count memo (borrowed; may be
  /// null). The optimizer installs a fresh cache for the duration of one
  /// Optimize() call so repeated costing of a shared conjunct never
  /// re-scans a sample; entries never outlive the statistics they were
  /// computed from.
  void set_probe_cache(perf::ProbeCountCache* cache) { probe_cache_ = cache; }
  perf::ProbeCountCache* probe_cache() const { return probe_cache_; }

  /// The bounded LRU over inverse-Beta quantile evaluations (owned;
  /// capacity adjustable via `SET BETA_CACHE_CAPACITY` in the shell).
  perf::InverseBetaCache* beta_cache() const { return beta_cache_.get(); }

  /// Installs/uninstalls the learned-correction store (borrowed, nullable;
  /// the query service owns it and feeds it from execution feedback).
  /// With no store — or a disabled one — estimates are bit-identical to
  /// the pre-learning cascade.
  void set_feedback_store(learn::FeedbackStore* store) {
    feedback_store_ = store;
  }
  learn::FeedbackStore* feedback_store() const { return feedback_store_; }

 private:
  /// Whether learned corrections are consultable at all.
  bool LearningActive() const {
    return feedback_store_ != nullptr && feedback_store_->enabled();
  }

  /// Learned evidence for one canonical predicate fingerprint. Probes the
  /// learning.feedback.apply fault site (a fire degrades the lookup to the
  /// uncorrected estimate) and counts estimator.learned.{hit,miss,
  /// unavailable}.
  std::optional<learn::LearnedEvidence> LearnedLookup(uint64_t fingerprint);

  /// The effective prior with `learned` pseudo-counts folded in.
  BetaPrior MergedPrior(const learn::LearnedEvidence& learned) const;
  // Degradation bookkeeping: one trace event + counter per tier drop.
  void RecordDegradation(const char* tier_from, const char* tier_to,
                         const char* reason, const std::string& scope,
                         const char* counter) const;

  // perf.cache.{hit,miss} counter bump for one cache probe (`cache` is
  // "probe" or "beta"; also bumps the per-cache counter).
  void RecordCacheEvent(const char* cache, bool hit) const;

  // Memoized EstimateAtConfidence(config_.confidence_threshold): the
  // quantile via the inverse-Beta LRU, bit-identical to the direct call.
  double InvertAtThreshold(const SelectivityPosterior& posterior) const;

  const StatisticsCatalog* statistics_;
  RobustEstimatorConfig config_;
  HistogramEstimator histogram_fallback_;
  perf::ProbeCountCache* probe_cache_ = nullptr;
  learn::FeedbackStore* feedback_store_ = nullptr;
  // unique_ptr so the estimator stays movable (the cache holds a mutex).
  std::unique_ptr<perf::InverseBetaCache> beta_cache_ =
      std::make_unique<perf::InverseBetaCache>();
};

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_ROBUST_SAMPLE_ESTIMATOR_H_
