// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Precomputed uniform random samples of base tables (paper Section 3.2).
// A sample is itself stored as a Table, so arbitrary predicates can be
// evaluated on it with the ordinary expression machinery.

#ifndef ROBUSTQO_STATISTICS_SAMPLE_H_
#define ROBUSTQO_STATISTICS_SAMPLE_H_

#include <memory>
#include <string>

#include "storage/table.h"
#include "util/rng.h"

namespace robustqo {
namespace stats {

/// How sample tuples are drawn. The paper's Bayesian analysis (Section 3.3)
/// models independent draws, i.e. sampling with replacement; without-
/// replacement sampling is also provided (the posterior is an excellent
/// approximation for sample sizes far below the table size).
enum class SamplingMode {
  kWithReplacement,
  kWithoutReplacement,
};

/// A uniform random sample of one base table.
class TableSample {
 public:
  /// Draws `sample_size` tuples from `table` using `mode`. If the table has
  /// fewer rows than `sample_size` and mode is without-replacement, the
  /// sample is the whole table.
  TableSample(const storage::Table& table, size_t sample_size,
              SamplingMode mode, Rng* rng);

  /// Reconstructs a sample from previously saved tuples (persistence).
  /// Source RIDs are not persisted; source_rids() is empty on a loaded
  /// sample.
  static TableSample FromSavedRows(std::string source_table,
                                   uint64_t source_row_count,
                                   std::unique_ptr<storage::Table> rows);

  const std::string& source_table() const { return source_table_; }
  uint64_t source_row_count() const { return source_row_count_; }

  /// Number of tuples in the sample (n in the paper's notation).
  uint64_t size() const { return rows_->num_rows(); }

  /// The sampled tuples, as a table with the source schema.
  const storage::Table& rows() const { return *rows_; }

  /// RIDs in the source table that each sample tuple came from.
  const std::vector<storage::Rid>& source_rids() const { return source_rids_; }

 private:
  TableSample() = default;

  std::string source_table_;
  uint64_t source_row_count_ = 0;
  std::unique_ptr<storage::Table> rows_;
  std::vector<storage::Rid> source_rids_;
};

}  // namespace stats
}  // namespace robustqo

#endif  // ROBUSTQO_STATISTICS_SAMPLE_H_
