#include "statistics/join_synopsis.h"

#include <deque>
#include <unordered_map>

#include "util/macros.h"

namespace robustqo {
namespace stats {

using storage::Catalog;
using storage::ColumnDef;
using storage::ForeignKey;
using storage::Rid;
using storage::Schema;
using storage::Table;

namespace {

// PK value -> rid map for integer-physical primary keys.
std::unordered_map<int64_t, Rid> BuildPkLookup(const Table& table,
                                               const std::string& pk_column) {
  const storage::ColumnVector& col = table.column(pk_column);
  RQO_CHECK_MSG(storage::IsIntegerPhysical(col.type()),
                "join synopses require integer primary keys");
  std::unordered_map<int64_t, Rid> map;
  map.reserve(table.num_rows() * 2);
  for (Rid rid = 0; rid < table.num_rows(); ++rid) {
    // Skip dead versions: an updated row leaves its old version physically
    // present with the same primary key. Should a write have introduced a
    // duplicate key (nothing enforces uniqueness on INSERT), the latest
    // visible version wins — degraded statistics beat a crash.
    if (!table.VisibleAt(rid)) continue;
    map[col.Int64At(rid)] = rid;
  }
  return map;
}

}  // namespace

JoinSynopsis::JoinSynopsis(const Catalog& catalog,
                           const std::string& root_table, size_t sample_size,
                           SamplingMode mode, Rng* rng) {
  const Table* root = catalog.GetTable(root_table);
  RQO_CHECK_MSG(root != nullptr, ("no table " + root_table).c_str());
  root_table_ = root_table;
  root_row_count_ = root->VisibleRowCount();
  covered_tables_.insert(root_table);

  // BFS over the FK closure; record the join steps in visit order so each
  // step's source table is already materialized when we chase it.
  struct JoinStep {
    ForeignKey fk;
    const Table* target;
  };
  std::vector<JoinStep> steps;
  std::deque<std::string> frontier{root_table};
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    for (const ForeignKey& fk : catalog.ForeignKeysFrom(current)) {
      if (covered_tables_.count(fk.to_table) > 0) continue;  // acyclic guard
      const Table* target = catalog.GetTable(fk.to_table);
      RQO_CHECK(target != nullptr);
      covered_tables_.insert(fk.to_table);
      steps.push_back({fk, target});
      frontier.push_back(fk.to_table);
    }
  }

  // Wide schema: root columns then each joined table's columns.
  std::vector<ColumnDef> wide_columns = root->schema().columns();
  for (const JoinStep& step : steps) {
    const auto& cols = step.target->schema().columns();
    wide_columns.insert(wide_columns.end(), cols.begin(), cols.end());
  }
  rows_ = std::make_unique<Table>(root_table + "$synopsis",
                                  Schema(wide_columns));

  if (root_row_count_ == 0) return;

  // PK lookup per joined table.
  std::vector<std::unordered_map<int64_t, Rid>> pk_lookups;
  pk_lookups.reserve(steps.size());
  for (const JoinStep& step : steps) {
    pk_lookups.push_back(BuildPkLookup(*step.target, step.fk.to_column));
  }

  // Sample the visible root rows, then chase every FK for each sampled
  // tuple. Unversioned roots keep the direct-RID draw.
  std::vector<Rid> visible;
  if (root->versioned()) {
    visible.reserve(static_cast<size_t>(root_row_count_));
    for (Rid r = 0; r < root->num_rows(); ++r) {
      if (root->VisibleAt(r)) visible.push_back(r);
    }
  }
  const uint64_t population =
      root->versioned() ? visible.size() : root->num_rows();
  std::vector<uint64_t> picks;
  if (mode == SamplingMode::kWithReplacement) {
    picks = rng->SampleWithReplacement(population, sample_size);
  } else {
    const size_t k =
        std::min<size_t>(sample_size, static_cast<size_t>(population));
    picks = rng->SampleWithoutReplacement(population, k);
  }

  rows_->Reserve(picks.size());
  for (uint64_t pick : picks) {
    const Rid root_rid = root->versioned() ? visible[pick] : pick;
    std::vector<storage::Value> wide_row = root->RowAt(root_rid);
    // rid of each already-joined table for this tuple.
    std::unordered_map<std::string, Rid> resolved{{root_table, root_rid}};
    bool complete = true;
    for (size_t s = 0; s < steps.size(); ++s) {
      const JoinStep& step = steps[s];
      const Table* from =
          step.fk.from_table == root_table
              ? root
              : catalog.GetTable(step.fk.from_table);
      auto from_rid_it = resolved.find(step.fk.from_table);
      RQO_CHECK_MSG(from_rid_it != resolved.end(),
                    "FK source not yet materialized (BFS order violated)");
      const int64_t fk_value =
          from->column(step.fk.from_column).Int64At(from_rid_it->second);
      auto hit = pk_lookups[s].find(fk_value);
      if (hit == pk_lookups[s].end()) {
        // Dangling foreign key — a DELETE removed the referenced parent
        // (nothing enforces referential integrity on writes). Drop the
        // sampled tuple rather than crash; the synopsis loses one sample.
        complete = false;
        break;
      }
      const Rid target_rid = hit->second;
      resolved.emplace(step.fk.to_table, target_rid);
      std::vector<storage::Value> target_row =
          step.target->RowAt(target_rid);
      wide_row.insert(wide_row.end(), target_row.begin(), target_row.end());
    }
    if (complete) rows_->AppendRow(wide_row);
  }
}

JoinSynopsis JoinSynopsis::FromSavedRows(
    std::string root_table, uint64_t root_row_count,
    std::set<std::string> covered_tables,
    std::unique_ptr<storage::Table> rows) {
  RQO_CHECK(rows != nullptr);
  JoinSynopsis synopsis;
  synopsis.root_table_ = std::move(root_table);
  synopsis.root_row_count_ = root_row_count;
  synopsis.covered_tables_ = std::move(covered_tables);
  synopsis.rows_ = std::move(rows);
  return synopsis;
}

bool JoinSynopsis::Covers(const std::set<std::string>& tables) const {
  if (tables.count(root_table_) == 0) return false;
  for (const std::string& t : tables) {
    if (covered_tables_.count(t) == 0) return false;
  }
  return true;
}

}  // namespace stats
}  // namespace robustqo
