#include "statistics/join_synopsis.h"

#include <deque>
#include <unordered_map>

#include "util/macros.h"

namespace robustqo {
namespace stats {

using storage::Catalog;
using storage::ColumnDef;
using storage::ForeignKey;
using storage::Rid;
using storage::Schema;
using storage::Table;

namespace {

// PK value -> rid map for integer-physical primary keys.
std::unordered_map<int64_t, Rid> BuildPkLookup(const Table& table,
                                               const std::string& pk_column) {
  const storage::ColumnVector& col = table.column(pk_column);
  RQO_CHECK_MSG(storage::IsIntegerPhysical(col.type()),
                "join synopses require integer primary keys");
  std::unordered_map<int64_t, Rid> map;
  map.reserve(table.num_rows() * 2);
  for (Rid rid = 0; rid < table.num_rows(); ++rid) {
    const bool inserted = map.emplace(col.Int64At(rid), rid).second;
    RQO_CHECK_MSG(inserted, "duplicate primary key value");
  }
  return map;
}

}  // namespace

JoinSynopsis::JoinSynopsis(const Catalog& catalog,
                           const std::string& root_table, size_t sample_size,
                           SamplingMode mode, Rng* rng) {
  const Table* root = catalog.GetTable(root_table);
  RQO_CHECK_MSG(root != nullptr, ("no table " + root_table).c_str());
  root_table_ = root_table;
  root_row_count_ = root->num_rows();
  covered_tables_.insert(root_table);

  // BFS over the FK closure; record the join steps in visit order so each
  // step's source table is already materialized when we chase it.
  struct JoinStep {
    ForeignKey fk;
    const Table* target;
  };
  std::vector<JoinStep> steps;
  std::deque<std::string> frontier{root_table};
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    for (const ForeignKey& fk : catalog.ForeignKeysFrom(current)) {
      if (covered_tables_.count(fk.to_table) > 0) continue;  // acyclic guard
      const Table* target = catalog.GetTable(fk.to_table);
      RQO_CHECK(target != nullptr);
      covered_tables_.insert(fk.to_table);
      steps.push_back({fk, target});
      frontier.push_back(fk.to_table);
    }
  }

  // Wide schema: root columns then each joined table's columns.
  std::vector<ColumnDef> wide_columns = root->schema().columns();
  for (const JoinStep& step : steps) {
    const auto& cols = step.target->schema().columns();
    wide_columns.insert(wide_columns.end(), cols.begin(), cols.end());
  }
  rows_ = std::make_unique<Table>(root_table + "$synopsis",
                                  Schema(wide_columns));

  if (root->num_rows() == 0) return;

  // PK lookup per joined table.
  std::vector<std::unordered_map<int64_t, Rid>> pk_lookups;
  pk_lookups.reserve(steps.size());
  for (const JoinStep& step : steps) {
    pk_lookups.push_back(BuildPkLookup(*step.target, step.fk.to_column));
  }

  // Sample the root, then chase every FK for each sampled tuple.
  std::vector<uint64_t> picks;
  if (mode == SamplingMode::kWithReplacement) {
    picks = rng->SampleWithReplacement(root->num_rows(), sample_size);
  } else {
    const size_t k =
        std::min<size_t>(sample_size, static_cast<size_t>(root->num_rows()));
    picks = rng->SampleWithoutReplacement(root->num_rows(), k);
  }

  rows_->Reserve(picks.size());
  for (uint64_t root_rid : picks) {
    std::vector<storage::Value> wide_row = root->RowAt(root_rid);
    // rid of each already-joined table for this tuple.
    std::unordered_map<std::string, Rid> resolved{{root_table, root_rid}};
    for (size_t s = 0; s < steps.size(); ++s) {
      const JoinStep& step = steps[s];
      const Table* from =
          step.fk.from_table == root_table
              ? root
              : catalog.GetTable(step.fk.from_table);
      auto from_rid_it = resolved.find(step.fk.from_table);
      RQO_CHECK_MSG(from_rid_it != resolved.end(),
                    "FK source not yet materialized (BFS order violated)");
      const int64_t fk_value =
          from->column(step.fk.from_column).Int64At(from_rid_it->second);
      auto hit = pk_lookups[s].find(fk_value);
      RQO_CHECK_MSG(hit != pk_lookups[s].end(),
                    "foreign key integrity violation");
      const Rid target_rid = hit->second;
      resolved.emplace(step.fk.to_table, target_rid);
      std::vector<storage::Value> target_row =
          step.target->RowAt(target_rid);
      wide_row.insert(wide_row.end(), target_row.begin(), target_row.end());
    }
    rows_->AppendRow(wide_row);
  }
}

JoinSynopsis JoinSynopsis::FromSavedRows(
    std::string root_table, uint64_t root_row_count,
    std::set<std::string> covered_tables,
    std::unique_ptr<storage::Table> rows) {
  RQO_CHECK(rows != nullptr);
  JoinSynopsis synopsis;
  synopsis.root_table_ = std::move(root_table);
  synopsis.root_row_count_ = root_row_count;
  synopsis.covered_tables_ = std::move(covered_tables);
  synopsis.rows_ = std::move(rows);
  return synopsis;
}

bool JoinSynopsis::Covers(const std::set<std::string>& tables) const {
  if (tables.count(root_table_) == 0) return false;
  for (const std::string& t : tables) {
    if (covered_tables_.count(t) == 0) return false;
  }
  return true;
}

}  // namespace stats
}  // namespace robustqo
