#include "sql/parser.h"

#include <optional>
#include <set>
#include <vector>

#include "expr/analysis.h"
#include "expr/expression.h"
#include "sql/lexer.h"
#include "storage/date.h"
#include "util/string_util.h"

namespace robustqo {
namespace sql {

namespace {

using expr::ExprPtr;
using storage::Value;

class Parser {
 public:
  Parser(const storage::Catalog& catalog, std::vector<Token> tokens)
      : catalog_(&catalog), tokens_(std::move(tokens)) {}

  Result<opt::QuerySpec> Parse() {
    RQO_RETURN_NOT_OK(Expect("SELECT"));
    RQO_RETURN_NOT_OK(ParseSelectList());
    RQO_RETURN_NOT_OK(Expect("FROM"));
    RQO_RETURN_NOT_OK(ParseTableList());
    if (Accept("WHERE")) {
      Result<ExprPtr> where = ParseBoolExpr();
      if (!where.ok()) return where.status();
      RQO_RETURN_NOT_OK(AssignPredicates(where.value()));
    }
    if (Accept("GROUP")) {
      RQO_RETURN_NOT_OK(Expect("BY"));
      RQO_RETURN_NOT_OK(ParseGroupBy());
    }
    if (Accept("ORDER")) {
      RQO_RETURN_NOT_OK(Expect("BY"));
      const Token& column = Advance();
      if (column.type != TokenType::kIdentifier) {
        return Error("expected column in ORDER BY");
      }
      query_.order_by = column.text;
      Accept("ASC");  // ascending is the only (and default) direction
    }
    if (Accept("LIMIT")) {
      const Token& count = Advance();
      if (count.type != TokenType::kInteger || count.int_value <= 0) {
        return Error("expected positive integer after LIMIT");
      }
      query_.limit = static_cast<uint64_t>(count.int_value);
    }
    if (!Peek().IsEnd()) {
      return Error("unexpected trailing input");
    }
    if (!query_.group_by.empty() && query_.aggregates.empty()) {
      return Error("GROUP BY requires aggregate functions");
    }
    RQO_RETURN_NOT_OK(ValidateOrderBy());
    return query_;
  }

  Result<DmlSpec> ParseDml() {
    if (Accept("INSERT")) return ParseInsert();
    if (Accept("UPDATE")) return ParseUpdate();
    if (Accept("DELETE")) return ParseDelete();
    return Error("expected INSERT, UPDATE or DELETE");
  }

 private:
  struct TokenView {
    const Token* token;
    bool IsEnd() const { return token->type == TokenType::kEnd; }
    bool IsKeyword(const char* kw) const { return token->IsKeyword(kw); }
    bool IsSymbol(const char* s) const { return token->IsSymbol(s); }
  };

  TokenView Peek(size_t ahead = 0) const {
    const size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return TokenView{&tokens_[idx]};
  }

  // Returns the current token and moves forward; the cursor never walks
  // past the trailing kEnd sentinel (repeated calls at the end keep
  // returning it).
  const Token& Advance() {
    const size_t idx = std::min(pos_, tokens_.size() - 1);
    if (pos_ < tokens_.size() - 1) ++pos_;
    return tokens_[idx];
  }

  bool Accept(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(const char* kw) {
    if (!Accept(kw)) return Error(std::string("expected ") + kw);
    return Status::OK();
  }
  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) {
      return Error(std::string("expected '") + s + "'");
    }
    return Status::OK();
  }

  Status Error(const std::string& message) const {
    const Token& at = tokens_[std::min(pos_, tokens_.size() - 1)];
    return Status::InvalidArgument(
        StrPrintf("%s at offset %zu (near '%s')", message.c_str(),
                  at.position, at.text.c_str()));
  }

  // ---- SELECT list ----

  Status ParseSelectList() {
    if (AcceptSymbol("*")) return Status::OK();  // all columns
    do {
      RQO_RETURN_NOT_OK(ParseSelectItem());
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  static std::optional<exec::AggKind> AggKindFor(const std::string& kw) {
    if (kw == "SUM") return exec::AggKind::kSum;
    if (kw == "COUNT") return exec::AggKind::kCount;
    if (kw == "MIN") return exec::AggKind::kMin;
    if (kw == "MAX") return exec::AggKind::kMax;
    if (kw == "AVG") return exec::AggKind::kAvg;
    return std::nullopt;
  }

  Status ParseSelectItem() {
    const Token& token = tokens_[pos_];
    if (token.type != TokenType::kIdentifier) {
      return Error("expected column or aggregate");
    }
    auto agg_kind = AggKindFor(token.text);
    if (agg_kind.has_value() && Peek(1).IsSymbol("(")) {
      pos_ += 2;  // consume name and '('
      std::string column;
      if (AcceptSymbol("*")) {
        if (*agg_kind != exec::AggKind::kCount) {
          return Error("'*' argument only valid for COUNT");
        }
      } else {
        const Token& col = Advance();
        if (col.type != TokenType::kIdentifier) {
          return Error("expected column name in aggregate");
        }
        column = col.text;
      }
      RQO_RETURN_NOT_OK(ExpectSymbol(")"));
      std::string output = StrPrintf(
          "%s_%s", token.text.c_str(), column.empty() ? "all" : column.c_str());
      if (Accept("AS")) {
        const Token& alias = Advance();
        if (alias.type != TokenType::kIdentifier) {
          return Error("expected alias after AS");
        }
        output = alias.text;
      }
      query_.aggregates.push_back({*agg_kind, column, output});
      return Status::OK();
    }
    // Plain column reference.
    query_.select_columns.push_back(token.text);
    ++pos_;
    if (Accept("AS")) {
      return Error("column aliases are not supported");
    }
    return Status::OK();
  }

  // ---- FROM / GROUP BY ----

  Status ParseTableList() {
    do {
      const Token& token = Advance();
      if (token.type != TokenType::kIdentifier) {
        return Error("expected table name");
      }
      if (catalog_->GetTable(token.text) == nullptr) {
        return Status::NotFound("table " + token.text);
      }
      query_.tables.push_back({token.text, nullptr});
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ParseGroupBy() {
    do {
      const Token& token = Advance();
      if (token.type != TokenType::kIdentifier) {
        return Error("expected column in GROUP BY");
      }
      query_.group_by.push_back(token.text);
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  // ---- Expressions ----

  Result<ExprPtr> ParseBoolExpr() {
    Result<ExprPtr> left = ParseAndExpr();
    if (!left.ok()) return left;
    std::vector<ExprPtr> terms{left.value()};
    while (Accept("OR")) {
      Result<ExprPtr> next = ParseAndExpr();
      if (!next.ok()) return next;
      terms.push_back(next.value());
    }
    if (terms.size() == 1) return terms[0];
    return ExprPtr(expr::Or(terms));
  }

  Result<ExprPtr> ParseAndExpr() {
    Result<ExprPtr> left = ParseNotExpr();
    if (!left.ok()) return left;
    std::vector<ExprPtr> terms{left.value()};
    while (Accept("AND")) {
      Result<ExprPtr> next = ParseNotExpr();
      if (!next.ok()) return next;
      terms.push_back(next.value());
    }
    if (terms.size() == 1) return terms[0];
    return ExprPtr(expr::And(terms));
  }

  Result<ExprPtr> ParseNotExpr() {
    if (Accept("NOT")) {
      Result<ExprPtr> inner = ParseNotExpr();
      if (!inner.ok()) return inner;
      return ExprPtr(expr::Not(inner.value()));
    }
    return ParsePredicate();
  }

  // Distinguish "(bool_expr)" from "(value)": after a parenthesized value
  // a comparison operator follows; after a bool expr it does not. We parse
  // speculatively by saving the cursor.
  Result<ExprPtr> ParsePredicate() {
    if (Peek().IsSymbol("(")) {
      const size_t saved = pos_;
      ++pos_;
      Result<ExprPtr> inner = ParseBoolExpr();
      if (inner.ok() && Peek().IsSymbol(")")) {
        ++pos_;
        // If a comparison follows, the parenthesis wrapped a value after
        // all; re-parse as a value comparison.
        if (!PeekIsComparison()) return inner;
      }
      pos_ = saved;  // fall through to value comparison
    }
    Result<ExprPtr> left = ParseValue();
    if (!left.ok()) return left;

    if (Accept("BETWEEN")) {
      Result<ExprPtr> lo = ParseValue();
      if (!lo.ok()) return lo;
      RQO_RETURN_NOT_OK(Expect("AND"));
      Result<ExprPtr> hi = ParseValue();
      if (!hi.ok()) return hi;
      Result<Value> lo_v = FoldToValue(lo.value());
      Result<Value> hi_v = FoldToValue(hi.value());
      if (!lo_v.ok()) return lo_v.status();
      if (!hi_v.ok()) return hi_v.status();
      return ExprPtr(expr::Between(left.value(), lo_v.value(), hi_v.value()));
    }
    if (Accept("LIKE")) {
      const Token& pattern = Advance();
      if (pattern.type != TokenType::kString) {
        return Error("expected string pattern after LIKE");
      }
      const std::string& p = pattern.text;
      if (p.size() < 2 || p.front() != '%' || p.back() != '%' ||
          p.find('%', 1) != p.size() - 1) {
        return Error("only '%...%' containment patterns are supported");
      }
      return ExprPtr(expr::StringContains(left.value(),
                                          p.substr(1, p.size() - 2)));
    }
    static const std::pair<const char*, expr::CompareOp> kOps[] = {
        {"=", expr::CompareOp::kEq},  {"<>", expr::CompareOp::kNe},
        {"<=", expr::CompareOp::kLe}, {">=", expr::CompareOp::kGe},
        {"<", expr::CompareOp::kLt},  {">", expr::CompareOp::kGt},
    };
    for (const auto& [symbol, op] : kOps) {
      if (AcceptSymbol(symbol)) {
        Result<ExprPtr> right = ParseValue();
        if (!right.ok()) return right;
        return ExprPtr(expr::Compare(op, left.value(), right.value()));
      }
    }
    return Error("expected comparison, BETWEEN or LIKE");
  }

  Result<Value> FoldToValue(const ExprPtr& e) {
    if (!expr::IsConstant(*e)) {
      return Error("BETWEEN bounds must be constant expressions");
    }
    return expr::FoldConstant(*e);
  }

  bool PeekIsComparison() const {
    for (const char* s : {"=", "<>", "<=", ">=", "<", ">"}) {
      if (Peek().IsSymbol(s)) return true;
    }
    return Peek().IsKeyword("BETWEEN") || Peek().IsKeyword("LIKE");
  }

  Result<ExprPtr> ParseValue() {
    Result<ExprPtr> left = ParseTerm();
    if (!left.ok()) return left;
    ExprPtr out = left.value();
    for (;;) {
      if (AcceptSymbol("+")) {
        Result<ExprPtr> rhs = ParseTerm();
        if (!rhs.ok()) return rhs;
        out = expr::Arith(expr::ArithOp::kAdd, out, rhs.value());
      } else if (AcceptSymbol("-")) {
        Result<ExprPtr> rhs = ParseTerm();
        if (!rhs.ok()) return rhs;
        out = expr::Arith(expr::ArithOp::kSub, out, rhs.value());
      } else {
        return out;
      }
    }
  }

  Result<ExprPtr> ParseTerm() {
    Result<ExprPtr> left = ParseFactor();
    if (!left.ok()) return left;
    ExprPtr out = left.value();
    for (;;) {
      if (AcceptSymbol("*")) {
        Result<ExprPtr> rhs = ParseFactor();
        if (!rhs.ok()) return rhs;
        out = expr::Arith(expr::ArithOp::kMul, out, rhs.value());
      } else if (AcceptSymbol("/")) {
        Result<ExprPtr> rhs = ParseFactor();
        if (!rhs.ok()) return rhs;
        out = expr::Arith(expr::ArithOp::kDiv, out, rhs.value());
      } else {
        return out;
      }
    }
  }

  Result<ExprPtr> ParseFactor() {
    if (AcceptSymbol("(")) {
      Result<ExprPtr> inner = ParseValue();
      if (!inner.ok()) return inner;
      RQO_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (AcceptSymbol("-")) {
      Result<ExprPtr> inner = ParseFactor();
      if (!inner.ok()) return inner;
      return ExprPtr(
          expr::Arith(expr::ArithOp::kSub, expr::LitInt(0), inner.value()));
    }
    const Token& token = Advance();
    switch (token.type) {
      case TokenType::kInteger:
        return ExprPtr(expr::LitInt(token.int_value));
      case TokenType::kFloat:
        return ExprPtr(expr::LitDouble(token.float_value));
      case TokenType::kString:
        return ExprPtr(expr::LitString(token.text));
      case TokenType::kIdentifier: {
        if (token.text == "DATE") {
          const Token& lit = Advance();
          if (lit.type != TokenType::kString) {
            return Error("expected 'YYYY-MM-DD' after DATE");
          }
          Result<int64_t> days = storage::ParseDate(lit.text);
          if (!days.ok()) return days.status();
          return ExprPtr(expr::LitDate(days.value()));
        }
        return ExprPtr(expr::Col(token.text));
      }
      default:
        --pos_;
        return Error("expected value");
    }
  }

  // ORDER BY must name a column of the final output: an aggregate output
  // or grouping column for aggregate queries, otherwise a (selected)
  // table column.
  Status ValidateOrderBy() {
    if (query_.order_by.empty()) return Status::OK();
    const std::string& column = query_.order_by;
    if (!query_.aggregates.empty()) {
      for (const auto& agg : query_.aggregates) {
        if (agg.output_name == column) return Status::OK();
      }
      for (const auto& g : query_.group_by) {
        if (g == column) return Status::OK();
      }
      return Status::InvalidArgument(
          "ORDER BY column " + column +
          " is not an aggregate output or grouping column");
    }
    if (!query_.select_columns.empty()) {
      for (const auto& s : query_.select_columns) {
        if (s == column) return Status::OK();
      }
      return Status::InvalidArgument("ORDER BY column " + column +
                                     " is not in the SELECT list");
    }
    for (const auto& ref : query_.tables) {
      const storage::Table* t = catalog_->GetTable(ref.table);
      if (t != nullptr && t->schema().HasColumn(column)) return Status::OK();
    }
    return Status::NotFound("ORDER BY column " + column);
  }

  // ---- DML ----

  Result<const storage::Table*> ParseTargetTable() {
    const Token& token = Advance();
    if (token.type != TokenType::kIdentifier) {
      return Error("expected table name");
    }
    const storage::Table* table = catalog_->GetTable(token.text);
    if (table == nullptr) return Status::NotFound("table " + token.text);
    return table;
  }

  /// Coerces a constant `value` to a column of type `target`. Integers
  /// widen to DOUBLE; INT64 and DATE interconvert (a date is its day
  /// number); everything else must match exactly.
  Result<Value> CoerceValue(const Value& value, storage::DataType target,
                            const std::string& column) {
    using storage::DataType;
    if (value.type() == target) return value;
    if (target == DataType::kDouble &&
        storage::IsIntegerPhysical(value.type())) {
      return Value::Double(static_cast<double>(value.AsInt64()));
    }
    if (target == DataType::kDate && value.type() == DataType::kInt64) {
      return Value::Date(value.AsInt64());
    }
    if (target == DataType::kInt64 && value.type() == DataType::kDate) {
      return Value::Int64(value.AsInt64());
    }
    return Status::InvalidArgument(
        StrPrintf("cannot store a %s value in %s column %s",
                  storage::DataTypeName(value.type()),
                  storage::DataTypeName(target), column.c_str()));
  }

  /// Validates that every column `e` references exists in `table`.
  Status CheckColumnsBelongTo(const expr::Expr& e,
                              const storage::Table& table) {
    std::set<std::string> columns;
    e.CollectColumns(&columns);
    for (const std::string& column : columns) {
      if (!table.schema().HasColumn(column)) {
        return Status::NotFound("column " + table.name() + "." + column);
      }
    }
    return Status::OK();
  }

  Result<DmlSpec> ParseInsert() {
    RQO_RETURN_NOT_OK(Expect("INTO"));
    Result<const storage::Table*> target = ParseTargetTable();
    if (!target.ok()) return target.status();
    const storage::Table& table = *target.value();
    const storage::Schema& schema = table.schema();

    // Optional explicit column list; defaults to schema order.
    std::vector<size_t> column_order;
    if (AcceptSymbol("(")) {
      std::vector<bool> mentioned(schema.num_columns(), false);
      do {
        const Token& col = Advance();
        if (col.type != TokenType::kIdentifier) {
          return Error("expected column name");
        }
        auto idx = schema.ColumnIndex(col.text);
        if (!idx.ok()) {
          return Status::NotFound("column " + table.name() + "." + col.text);
        }
        if (mentioned[idx.value()]) {
          return Error("duplicate column " + col.text);
        }
        mentioned[idx.value()] = true;
        column_order.push_back(idx.value());
      } while (AcceptSymbol(","));
      RQO_RETURN_NOT_OK(ExpectSymbol(")"));
      if (column_order.size() != schema.num_columns()) {
        return Error("INSERT must provide every column (no defaults)");
      }
    } else {
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        column_order.push_back(i);
      }
    }

    RQO_RETURN_NOT_OK(Expect("VALUES"));
    DmlSpec dml;
    dml.kind = StatementKind::kInsert;
    dml.table = table.name();
    do {
      RQO_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<Value> row(schema.num_columns());
      size_t position = 0;
      do {
        if (position >= column_order.size()) {
          return Error("too many values in row");
        }
        Result<ExprPtr> value_expr = ParseValue();
        if (!value_expr.ok()) return value_expr.status();
        if (!expr::IsConstant(*value_expr.value())) {
          return Error("INSERT values must be constant expressions");
        }
        const size_t col = column_order[position];
        Result<Value> coerced =
            CoerceValue(expr::FoldConstant(*value_expr.value()),
                        schema.column(col).type, schema.column(col).name);
        if (!coerced.ok()) return coerced.status();
        row[col] = coerced.value();
        ++position;
      } while (AcceptSymbol(","));
      RQO_RETURN_NOT_OK(ExpectSymbol(")"));
      if (position != column_order.size()) {
        return Error(StrPrintf("row has %zu values, expected %zu", position,
                               column_order.size()));
      }
      dml.insert_rows.push_back(std::move(row));
    } while (AcceptSymbol(","));
    if (!Peek().IsEnd()) return Error("unexpected trailing input");
    return dml;
  }

  Result<DmlSpec> ParseUpdate() {
    Result<const storage::Table*> target = ParseTargetTable();
    if (!target.ok()) return target.status();
    const storage::Table& table = *target.value();
    RQO_RETURN_NOT_OK(Expect("SET"));

    DmlSpec dml;
    dml.kind = StatementKind::kUpdate;
    dml.table = table.name();
    std::set<std::string> assigned;
    do {
      const Token& col = Advance();
      if (col.type != TokenType::kIdentifier) {
        return Error("expected column name in SET");
      }
      if (!table.schema().HasColumn(col.text)) {
        return Status::NotFound("column " + table.name() + "." + col.text);
      }
      if (!assigned.insert(col.text).second) {
        return Error("column " + col.text + " assigned twice");
      }
      RQO_RETURN_NOT_OK(ExpectSymbol("="));
      Result<ExprPtr> value = ParseValue();
      if (!value.ok()) return value.status();
      RQO_RETURN_NOT_OK(CheckColumnsBelongTo(*value.value(), table));
      dml.set_exprs.emplace_back(col.text, value.value());
    } while (AcceptSymbol(","));

    if (Accept("WHERE")) {
      Result<ExprPtr> where = ParseBoolExpr();
      if (!where.ok()) return where.status();
      RQO_RETURN_NOT_OK(CheckColumnsBelongTo(*where.value(), table));
      dml.where = where.value();
    }
    if (!Peek().IsEnd()) return Error("unexpected trailing input");
    return dml;
  }

  Result<DmlSpec> ParseDelete() {
    RQO_RETURN_NOT_OK(Expect("FROM"));
    Result<const storage::Table*> target = ParseTargetTable();
    if (!target.ok()) return target.status();
    const storage::Table& table = *target.value();

    DmlSpec dml;
    dml.kind = StatementKind::kDelete;
    dml.table = table.name();
    if (Accept("WHERE")) {
      Result<ExprPtr> where = ParseBoolExpr();
      if (!where.ok()) return where.status();
      RQO_RETURN_NOT_OK(CheckColumnsBelongTo(*where.value(), table));
      dml.where = where.value();
    }
    if (!Peek().IsEnd()) return Error("unexpected trailing input");
    return dml;
  }

  // ---- WHERE-clause assignment to tables ----

  // The table (position in query_.tables) owning every column of
  // `columns`, or nullopt when columns span tables / match nothing.
  std::optional<size_t> OwnerIndex(const std::set<std::string>& columns) {
    std::optional<size_t> owner;
    for (const std::string& column : columns) {
      std::optional<size_t> this_owner;
      for (size_t i = 0; i < query_.tables.size(); ++i) {
        const storage::Table* t =
            catalog_->GetTable(query_.tables[i].table);
        if (t != nullptr && t->schema().HasColumn(column)) {
          this_owner = i;
          break;
        }
      }
      if (!this_owner.has_value()) return std::nullopt;
      if (owner.has_value() && *owner != *this_owner) return std::nullopt;
      owner = this_owner;
    }
    return owner;
  }

  // True iff `conjunct` is an equality restating a declared FK join
  // between two of the query's tables.
  bool IsRedundantJoinPredicate(const ExprPtr& conjunct) {
    if (conjunct->kind() != expr::ExprKind::kComparison) return false;
    const auto& cmp = static_cast<const expr::ComparisonExpr&>(*conjunct);
    if (cmp.op() != expr::CompareOp::kEq) return false;
    if (cmp.lhs()->kind() != expr::ExprKind::kColumnRef ||
        cmp.rhs()->kind() != expr::ExprKind::kColumnRef) {
      return false;
    }
    const std::string a =
        static_cast<const expr::ColumnRefExpr&>(*cmp.lhs()).name();
    const std::string b =
        static_cast<const expr::ColumnRefExpr&>(*cmp.rhs()).name();
    for (const auto& fk : catalog_->foreign_keys()) {
      if ((fk.from_column == a && fk.to_column == b) ||
          (fk.from_column == b && fk.to_column == a)) {
        return true;
      }
    }
    return false;
  }

  Status AssignPredicates(const ExprPtr& where) {
    std::vector<std::vector<ExprPtr>> per_table(query_.tables.size());
    for (const ExprPtr& conjunct : expr::SplitConjuncts(where)) {
      std::set<std::string> columns;
      conjunct->CollectColumns(&columns);
      auto owner = OwnerIndex(columns);
      if (owner.has_value()) {
        per_table[*owner].push_back(conjunct);
        continue;
      }
      if (IsRedundantJoinPredicate(conjunct)) continue;  // implied FK join
      return Status::Unsupported(
          "WHERE conjunct spans tables (only single-table predicates and "
          "foreign-key join conditions are supported): " +
          conjunct->ToString());
    }
    for (size_t i = 0; i < per_table.size(); ++i) {
      if (per_table[i].empty()) continue;
      query_.tables[i].predicate = per_table[i].size() == 1
                                       ? per_table[i][0]
                                       : expr::And(per_table[i]);
    }
    return Status::OK();
  }

  const storage::Catalog* catalog_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  opt::QuerySpec query_;
};

}  // namespace

Result<opt::QuerySpec> ParseQuery(const storage::Catalog& catalog,
                                  const std::string& statement) {
  Result<std::vector<Token>> tokens = Tokenize(statement);
  if (!tokens.ok()) return tokens.status();
  Parser parser(catalog, std::move(tokens).value());
  return parser.Parse();
}

Result<ParsedStatement> ParseStatement(const storage::Catalog& catalog,
                                       const std::string& statement) {
  Result<std::vector<Token>> tokens = Tokenize(statement);
  if (!tokens.ok()) return tokens.status();
  const bool is_dml = !tokens.value().empty() &&
                      (tokens.value()[0].IsKeyword("INSERT") ||
                       tokens.value()[0].IsKeyword("UPDATE") ||
                       tokens.value()[0].IsKeyword("DELETE"));
  Parser parser(catalog, std::move(tokens).value());
  ParsedStatement parsed;
  if (is_dml) {
    Result<DmlSpec> dml = parser.ParseDml();
    if (!dml.ok()) return dml.status();
    parsed.dml = std::move(dml).value();
    parsed.kind = parsed.dml.kind;
    return parsed;
  }
  Result<opt::QuerySpec> query = parser.Parse();
  if (!query.ok()) return query.status();
  parsed.kind = StatementKind::kQuery;
  parsed.query = std::move(query).value();
  return parsed;
}

}  // namespace sql
}  // namespace robustqo
