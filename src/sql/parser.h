// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// SQL front end for the SPJ(+aggregate) query class the optimizer plans
// (paper Section 3.2). Supported grammar:
//
//   query      := SELECT select_list FROM table_list
//                 [WHERE bool_expr] [GROUP BY column_list]
//                 [ORDER BY column [ASC]] [LIMIT positive_integer]
//   select_list:= item (',' item)*
//   item       := '*' | column [AS name]
//               | (SUM|COUNT|MIN|MAX|AVG) '(' (column | '*') ')' [AS name]
//   table_list := table (',' table)*          -- joins are the catalog's
//                                                foreign keys (natural)
//   bool_expr  := and_expr (OR and_expr)*
//   and_expr   := not_expr (AND not_expr)*
//   not_expr   := [NOT] predicate
//   predicate  := '(' bool_expr ')'
//               | value (('='|'<>'|'<'|'<='|'>'|'>=') value
//                        | BETWEEN value AND value
//                        | LIKE string)            -- '%s%' containment
//   value      := term (('+'|'-') term)*
//   term       := factor (('*'|'/') factor)*
//   factor     := column | number | string | DATE 'YYYY-MM-DD'
//               | '(' value ')'
//
// WHERE conjuncts must each reference columns of a single table (they
// become that table's selection predicate); cross-table equality conjuncts
// that restate a declared foreign key are accepted and dropped (the join
// is implied). Anything else is rejected with a clear error.

#ifndef ROBUSTQO_SQL_PARSER_H_
#define ROBUSTQO_SQL_PARSER_H_

#include <string>

#include "optimizer/query.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace robustqo {
namespace sql {

/// Parses `statement` into a QuerySpec, resolving table/column names
/// against `catalog`.
Result<opt::QuerySpec> ParseQuery(const storage::Catalog& catalog,
                                  const std::string& statement);

}  // namespace sql
}  // namespace robustqo

#endif  // ROBUSTQO_SQL_PARSER_H_
