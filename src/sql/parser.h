// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// SQL front end for the SPJ(+aggregate) query class the optimizer plans
// (paper Section 3.2). Supported grammar:
//
//   query      := SELECT select_list FROM table_list
//                 [WHERE bool_expr] [GROUP BY column_list]
//                 [ORDER BY column [ASC]] [LIMIT positive_integer]
//   select_list:= item (',' item)*
//   item       := '*' | column [AS name]
//               | (SUM|COUNT|MIN|MAX|AVG) '(' (column | '*') ')' [AS name]
//   table_list := table (',' table)*          -- joins are the catalog's
//                                                foreign keys (natural)
//   bool_expr  := and_expr (OR and_expr)*
//   and_expr   := not_expr (AND not_expr)*
//   not_expr   := [NOT] predicate
//   predicate  := '(' bool_expr ')'
//               | value (('='|'<>'|'<'|'<='|'>'|'>=') value
//                        | BETWEEN value AND value
//                        | LIKE string)            -- '%s%' containment
//   value      := term (('+'|'-') term)*
//   term       := factor (('*'|'/') factor)*
//   factor     := column | number | string | DATE 'YYYY-MM-DD'
//               | '(' value ')'
//
// WHERE conjuncts must each reference columns of a single table (they
// become that table's selection predicate); cross-table equality conjuncts
// that restate a declared foreign key are accepted and dropped (the join
// is implied). Anything else is rejected with a clear error.
//
// DML statements (the write path):
//
//   insert     := INSERT INTO table [ '(' column_list ')' ]
//                 VALUES row (',' row)*
//   row        := '(' const_value (',' const_value)* ')'
//   update     := UPDATE table SET column '=' value
//                 (',' column '=' value)* [WHERE bool_expr]
//   delete     := DELETE FROM table [WHERE bool_expr]
//
// INSERT values must be constant expressions and are coerced to the column
// types at parse time (integers widen to DOUBLE columns; DATE 'YYYY-MM-DD'
// literals feed DATE columns). UPDATE's SET values and both WHERE clauses
// may reference columns of the target table only.

#ifndef ROBUSTQO_SQL_PARSER_H_
#define ROBUSTQO_SQL_PARSER_H_

#include <string>
#include <utility>
#include <vector>

#include "expr/expression.h"
#include "optimizer/query.h"
#include "storage/catalog.h"
#include "storage/value.h"
#include "util/status.h"

namespace robustqo {
namespace sql {

/// Kind of a parsed top-level statement.
enum class StatementKind { kQuery, kInsert, kUpdate, kDelete };

/// A parsed INSERT / UPDATE / DELETE, resolved against the catalog.
struct DmlSpec {
  StatementKind kind = StatementKind::kInsert;
  std::string table;
  /// INSERT: full literal rows in schema column order, types coerced.
  std::vector<std::vector<storage::Value>> insert_rows;
  /// UPDATE: (column, value expression) assignments, evaluated per row.
  std::vector<std::pair<std::string, expr::ExprPtr>> set_exprs;
  /// UPDATE / DELETE: targeting predicate; null = every row.
  expr::ExprPtr where;
};

/// A parsed top-level statement: a query or a DML mutation.
struct ParsedStatement {
  StatementKind kind = StatementKind::kQuery;
  opt::QuerySpec query;  ///< valid when kind == kQuery
  DmlSpec dml;           ///< valid otherwise
};

/// Parses `statement` into a QuerySpec, resolving table/column names
/// against `catalog`. Rejects DML (kept for read-only callers).
Result<opt::QuerySpec> ParseQuery(const storage::Catalog& catalog,
                                  const std::string& statement);

/// Parses any supported statement, dispatching on the leading keyword
/// (SELECT / INSERT / UPDATE / DELETE).
Result<ParsedStatement> ParseStatement(const storage::Catalog& catalog,
                                       const std::string& statement);

}  // namespace sql
}  // namespace robustqo

#endif  // ROBUSTQO_SQL_PARSER_H_
