// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Tokenizer for the SQL subset the parser understands (see parser.h).

#ifndef ROBUSTQO_SQL_LEXER_H_
#define ROBUSTQO_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace robustqo {
namespace sql {

enum class TokenType {
  kIdentifier,  ///< bare name (case-preserved) or keyword (upper-cased)
  kInteger,
  kFloat,
  kString,      ///< '...' with '' escaping
  kSymbol,      ///< ( ) , * + - / = < > <= >= <>
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     ///< identifier/symbol text; keywords upper-cased
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;  ///< byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const;
  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

/// Splits `input` into tokens. Keywords are recognized case-insensitively
/// and normalized to upper case; other identifiers keep their case.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sql
}  // namespace robustqo

#endif  // ROBUSTQO_SQL_LEXER_H_
