#include "sql/lexer.h"

#include <cctype>
#include <set>

#include "util/string_util.h"

namespace robustqo {
namespace sql {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string>* kws = new std::set<std::string>{
      "SELECT", "FROM", "WHERE", "GROUP", "BY", "AND", "OR", "NOT",
      "BETWEEN", "LIKE", "AS", "SUM", "COUNT", "MIN", "MAX", "AVG",
      "DATE", "ORDER", "LIMIT", "ASC"};
  return *kws;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

}  // namespace

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdentifier && text == kw;
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      token.type = TokenType::kIdentifier;
      token.text = input.substr(i, j - i);
      const std::string upper = ToUpper(token.text);
      if (Keywords().count(upper) > 0) token.text = upper;
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        if (input[j] == '.') {
          if (is_float) break;  // second dot terminates
          is_float = true;
        }
        ++j;
      }
      const std::string num = input.substr(i, j - i);
      if (is_float) {
        token.type = TokenType::kFloat;
        token.float_value = std::stod(num);
      } else {
        token.type = TokenType::kInteger;
        token.int_value = std::stoll(num);
      }
      token.text = num;
      i = j;
    } else if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // '' escape
            value += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        value += input[j];
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrPrintf("unterminated string literal at offset %zu", i));
      }
      token.type = TokenType::kString;
      token.text = value;
      i = j;
    } else {
      // Two-character symbols first.
      if (i + 1 < n) {
        const std::string two = input.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>") {
          token.type = TokenType::kSymbol;
          token.text = two;
          tokens.push_back(token);
          i += 2;
          continue;
        }
      }
      static const std::string kSingles = "(),*+-/=<>";
      if (kSingles.find(c) == std::string::npos) {
        return Status::InvalidArgument(
            StrPrintf("unexpected character '%c' at offset %zu", c, i));
      }
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(token);
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sql
}  // namespace robustqo
