#include "stats_math/beta_distribution.h"

#include <cmath>
#include <limits>

#include "stats_math/special_functions.h"
#include "util/macros.h"

namespace robustqo {
namespace math {

namespace {

// Marsaglia & Tsang (2000) gamma variate, shape >= 0; scale 1.
double SampleGamma(double shape, Rng* rng) {
  if (shape < 1.0) {
    // Boost via Gamma(shape) = Gamma(shape+1) * U^{1/shape}.
    double u = rng->NextDouble();
    while (u <= 0.0) u = rng->NextDouble();
    return SampleGamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = rng->NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng->NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

}  // namespace

BetaDistribution::BetaDistribution(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  RQO_CHECK(alpha > 0.0 && beta > 0.0);
}

double BetaDistribution::Pdf(double x) const {
  if (x < 0.0 || x > 1.0) return 0.0;
  if (x == 0.0) {
    if (alpha_ < 1.0) return HUGE_VAL;
    if (alpha_ == 1.0) return std::exp(-LogBeta(alpha_, beta_));
    return 0.0;
  }
  if (x == 1.0) {
    if (beta_ < 1.0) return HUGE_VAL;
    if (beta_ == 1.0) return std::exp(-LogBeta(alpha_, beta_));
    return 0.0;
  }
  return std::exp(LogPdf(x));
}

double BetaDistribution::LogPdf(double x) const {
  if (x <= 0.0 || x >= 1.0) return -std::numeric_limits<double>::infinity();
  return (alpha_ - 1.0) * std::log(x) + (beta_ - 1.0) * std::log1p(-x) -
         LogBeta(alpha_, beta_);
}

double BetaDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return RegularizedIncompleteBeta(alpha_, beta_, x);
}

double BetaDistribution::InverseCdf(double p) const {
  return InverseRegularizedIncompleteBeta(alpha_, beta_, p);
}

double BetaDistribution::Mean() const { return alpha_ / (alpha_ + beta_); }

double BetaDistribution::Variance() const {
  const double s = alpha_ + beta_;
  return alpha_ * beta_ / (s * s * (s + 1.0));
}

double BetaDistribution::Mode() const {
  if (alpha_ > 1.0 && beta_ > 1.0) {
    return (alpha_ - 1.0) / (alpha_ + beta_ - 2.0);
  }
  // Degenerate cases: mass piles at a boundary.
  return alpha_ >= beta_ ? 1.0 : 0.0;
}

double BetaDistribution::Sample(Rng* rng) const {
  const double x = SampleGamma(alpha_, rng);
  const double y = SampleGamma(beta_, rng);
  return x / (x + y);
}

}  // namespace math
}  // namespace robustqo
