// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Descriptive statistics over samples of doubles. The experiment harness
// reports mean and standard deviation of query execution time — the paper's
// predictability metric (Section 5.2) — through these helpers.

#ifndef ROBUSTQO_STATS_MATH_DESCRIPTIVE_H_
#define ROBUSTQO_STATS_MATH_DESCRIPTIVE_H_

#include <vector>

namespace robustqo {
namespace math {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Population variance (divides by N); 0 for fewer than 1 element.
double PopulationVariance(const std::vector<double>& xs);

/// Sample variance (divides by N-1); 0 for fewer than 2 elements.
double SampleVariance(const std::vector<double>& xs);

/// sqrt of the population variance.
double PopulationStdDev(const std::vector<double>& xs);

/// sqrt of the sample variance.
double SampleStdDev(const std::vector<double>& xs);

/// q-th percentile (q in [0,1]) by linear interpolation between closest
/// ranks; requires a non-empty vector (copied and sorted internally).
double Percentile(std::vector<double> xs, double q);

/// Five-number-plus summary of a sample.
struct Summary {
  double mean = 0.0;
  double std_dev = 0.0;  // population
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Computes a Summary; requires non-empty input.
Summary Summarize(const std::vector<double>& xs);

}  // namespace math
}  // namespace robustqo

#endif  // ROBUSTQO_STATS_MATH_DESCRIPTIVE_H_
