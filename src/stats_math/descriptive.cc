#include "stats_math/descriptive.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace robustqo {
namespace math {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double PopulationVariance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double PopulationStdDev(const std::vector<double>& xs) {
  return std::sqrt(PopulationVariance(xs));
}

double SampleStdDev(const std::vector<double>& xs) {
  return std::sqrt(SampleVariance(xs));
}

double Percentile(std::vector<double> xs, double q) {
  RQO_CHECK(!xs.empty());
  RQO_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double rank = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

Summary Summarize(const std::vector<double>& xs) {
  RQO_CHECK(!xs.empty());
  Summary s;
  s.mean = Mean(xs);
  s.std_dev = PopulationStdDev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.p25 = Percentile(xs, 0.25);
  s.median = Percentile(xs, 0.50);
  s.p75 = Percentile(xs, 0.75);
  return s;
}

}  // namespace math
}  // namespace robustqo
