// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Binomial(n, p) distribution. Used by the Section-5 analytical model: the
// number k of sample tuples satisfying a predicate of true selectivity p is
// Binomial(n, p)-distributed, and the optimizer's plan choice is a
// deterministic function of k.

#ifndef ROBUSTQO_STATS_MATH_BINOMIAL_DISTRIBUTION_H_
#define ROBUSTQO_STATS_MATH_BINOMIAL_DISTRIBUTION_H_

#include <cstdint>

#include "util/rng.h"

namespace robustqo {
namespace math {

/// An immutable Binomial(n, p) distribution over {0, 1, ..., n}.
class BinomialDistribution {
 public:
  /// Requires n >= 0 and p in [0, 1].
  BinomialDistribution(int64_t n, double p);

  int64_t n() const { return n_; }
  double p() const { return p_; }

  /// Pr[X = k]; 0 outside {0..n}. Computed in log space, stable for large n.
  double Pmf(int64_t k) const;

  /// ln Pr[X = k]; -inf outside the support.
  double LogPmf(int64_t k) const;

  /// Pr[X <= k], via the incomplete-beta identity
  /// Pr[X <= k] = I_{1-p}(n-k, k+1).
  double Cdf(int64_t k) const;

  double Mean() const { return static_cast<double>(n_) * p_; }
  double Variance() const { return static_cast<double>(n_) * p_ * (1.0 - p_); }

  /// Draws a variate (inversion for small n·p, otherwise simple counting;
  /// experiment-scale n here is <= a few thousand so this is fine).
  int64_t Sample(Rng* rng) const;

 private:
  int64_t n_;
  double p_;
};

}  // namespace math
}  // namespace robustqo

#endif  // ROBUSTQO_STATS_MATH_BINOMIAL_DISTRIBUTION_H_
