// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Beta(alpha, beta) distribution. This is the posterior family for
// selectivity inference from a random sample: with a Beta(a0, b0) prior and
// k of n sample tuples satisfying a predicate, the posterior is
// Beta(a0 + k, b0 + n - k) (paper Section 3.3).

#ifndef ROBUSTQO_STATS_MATH_BETA_DISTRIBUTION_H_
#define ROBUSTQO_STATS_MATH_BETA_DISTRIBUTION_H_

#include "util/rng.h"

namespace robustqo {
namespace math {

/// An immutable Beta(alpha, beta) distribution over [0, 1].
class BetaDistribution {
 public:
  /// Requires alpha > 0 and beta > 0.
  BetaDistribution(double alpha, double beta);

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  /// Probability density f(x); 0 outside [0, 1]. At the boundary the density
  /// may be infinite (alpha < 1 at x=0, beta < 1 at x=1); we return HUGE_VAL.
  double Pdf(double x) const;

  /// ln f(x); -inf outside (0, 1).
  double LogPdf(double x) const;

  /// Cumulative distribution F(x) = Pr[X <= x].
  double Cdf(double x) const;

  /// Quantile function F^{-1}(p) for p in [0, 1].
  double InverseCdf(double p) const;

  /// E[X] = alpha / (alpha + beta).
  double Mean() const;

  /// Var[X].
  double Variance() const;

  /// Mode; defined for alpha, beta > 1 (returns boundary otherwise).
  double Mode() const;

  /// Draws a variate using the ratio-of-gammas method (two Marsaglia-Tsang
  /// gamma draws).
  double Sample(Rng* rng) const;

 private:
  double alpha_;
  double beta_;
};

}  // namespace math
}  // namespace robustqo

#endif  // ROBUSTQO_STATS_MATH_BETA_DISTRIBUTION_H_
