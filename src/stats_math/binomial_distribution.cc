#include "stats_math/binomial_distribution.h"

#include <cmath>
#include <limits>

#include "stats_math/special_functions.h"
#include "util/macros.h"

namespace robustqo {
namespace math {

BinomialDistribution::BinomialDistribution(int64_t n, double p)
    : n_(n), p_(p) {
  RQO_CHECK(n >= 0);
  RQO_CHECK(p >= 0.0 && p <= 1.0);
}

double BinomialDistribution::LogPmf(int64_t k) const {
  if (k < 0 || k > n_) return -std::numeric_limits<double>::infinity();
  if (p_ == 0.0) {
    return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  if (p_ == 1.0) {
    return k == n_ ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  const double nd = static_cast<double>(n_);
  const double kd = static_cast<double>(k);
  return LogBinomialCoefficient(nd, kd) + kd * std::log(p_) +
         (nd - kd) * std::log1p(-p_);
}

double BinomialDistribution::Pmf(int64_t k) const {
  const double lp = LogPmf(k);
  return std::isinf(lp) ? 0.0 : std::exp(lp);
}

double BinomialDistribution::Cdf(int64_t k) const {
  if (k < 0) return 0.0;
  if (k >= n_) return 1.0;
  if (p_ == 0.0) return 1.0;
  if (p_ == 1.0) return 0.0;  // k < n here
  // Pr[X <= k] = I_{1-p}(n-k, k+1).
  return RegularizedIncompleteBeta(static_cast<double>(n_ - k),
                                   static_cast<double>(k + 1), 1.0 - p_);
}

int64_t BinomialDistribution::Sample(Rng* rng) const {
  int64_t count = 0;
  for (int64_t i = 0; i < n_; ++i) {
    if (rng->NextBernoulli(p_)) ++count;
  }
  return count;
}

}  // namespace math
}  // namespace robustqo
