#include "stats_math/special_functions.h"

#include <cmath>
#include <limits>

#include "util/macros.h"

namespace robustqo {
namespace math {

namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();
constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;

// Continued-fraction expansion for the incomplete beta function, evaluated
// with the modified Lentz algorithm. Converges fast when x < (a+1)/(a+b+2);
// callers use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
double BetaContinuedFraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 500; ++m) {
    const int m2 = 2 * m;
    // Even step.
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) {
  RQO_CHECK(x > 0.0);
  return std::lgamma(x);
}

double LogBeta(double a, double b) {
  RQO_CHECK(a > 0.0 && b > 0.0);
  return LogGamma(a) + LogGamma(b) - LogGamma(a + b);
}

double LogBinomialCoefficient(double n, double k) {
  RQO_CHECK(k >= 0.0 && k <= n);
  return LogGamma(n + 1.0) - LogGamma(k + 1.0) - LogGamma(n - k + 1.0);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  RQO_CHECK(a > 0.0 && b > 0.0);
  RQO_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front =
      a * std::log(x) + b * std::log1p(-x) - LogBeta(a, b);
  const double front = std::exp(log_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - std::exp(b * std::log1p(-x) + a * std::log(x) - LogBeta(b, a)) *
                   BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double InverseRegularizedIncompleteBeta(double a, double b, double p) {
  RQO_CHECK(a > 0.0 && b > 0.0);
  RQO_CHECK(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;

  // Initial guess: mean of the distribution, clamped away from {0, 1}.
  double x = a / (a + b);
  x = std::fmin(std::fmax(x, 1e-12), 1.0 - 1e-12);

  // Newton iterations with a [lo, hi] bisection safeguard. The derivative
  // of I_x(a,b) in x is the beta pdf, which is available in closed form.
  double lo = 0.0;
  double hi = 1.0;
  const double log_beta = LogBeta(a, b);
  for (int iter = 0; iter < 200; ++iter) {
    const double f = RegularizedIncompleteBeta(a, b, x) - p;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    if (std::fabs(f) < 1e-14) break;
    const double log_pdf =
        (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) - log_beta;
    double step = f / std::exp(log_pdf);
    double next = x - step;
    if (!(next > lo && next < hi)) {
      next = 0.5 * (lo + hi);  // Newton escaped the bracket: bisect.
    }
    if (std::fabs(next - x) < 1e-16 * std::fmax(1.0, std::fabs(x))) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

}  // namespace math
}  // namespace robustqo
