// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Special functions needed for Bayesian selectivity inference: the log-beta
// function, the regularized incomplete beta function I_x(a, b) (the cdf of
// the beta distribution), and its inverse. Implemented from scratch with the
// standard continued-fraction expansion (Lentz's method) plus a
// Newton-with-bisection-safeguard inverse; accurate to ~1e-12 over the
// parameter ranges used by the estimator (a, b up to ~1e6).

#ifndef ROBUSTQO_STATS_MATH_SPECIAL_FUNCTIONS_H_
#define ROBUSTQO_STATS_MATH_SPECIAL_FUNCTIONS_H_

namespace robustqo {
namespace math {

/// ln Γ(x) for x > 0 (wraps std::lgamma, which is thread-safe for results).
double LogGamma(double x);

/// ln B(a, b) = ln Γ(a) + ln Γ(b) - ln Γ(a+b); requires a, b > 0.
double LogBeta(double a, double b);

/// ln C(n, k); requires 0 <= k <= n.
double LogBinomialCoefficient(double n, double k);

/// Regularized incomplete beta function
///   I_x(a, b) = (1/B(a,b)) ∫₀ˣ t^{a-1} (1-t)^{b-1} dt
/// for a, b > 0 and x in [0, 1]. This is the cdf of Beta(a, b) at x.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Inverse of the regularized incomplete beta function: returns x such that
/// I_x(a, b) = p, for p in [0, 1]. This is the beta quantile function.
double InverseRegularizedIncompleteBeta(double a, double b, double p);

}  // namespace math
}  // namespace robustqo

#endif  // ROBUSTQO_STATS_MATH_SPECIAL_FUNCTIONS_H_
