#include "fault/fault_injector.h"

#include <functional>

#include "obs/obs.h"
#include "util/string_util.h"

namespace robustqo {
namespace fault {

const std::vector<std::string>& KnownFaultSites() {
  static const std::vector<std::string> kSites = {
      sites::kSampleRead,      sites::kSynopsisRead,
      sites::kCsvRead,         sites::kOperatorAlloc,
      sites::kClockStall,      sites::kAdmissionEnqueue,
      sites::kPlanCacheLookup, sites::kWriteApply,
      sites::kWriteCommit,     sites::kReservoirUpdate,
      sites::kLearningFeedbackApply, sites::kNetPartition,
      sites::kNetLag,          sites::kReplicaStaleStats};
  return kSites;
}

std::string FaultSpec::ToString() const {
  switch (mode) {
    case FireMode::kAlways:
      return "always";
    case FireMode::kFirstN:
      return StrPrintf("first=%llu", static_cast<unsigned long long>(n));
    case FireMode::kOnNth:
      return StrPrintf("nth=%llu", static_cast<unsigned long long>(n));
    case FireMode::kProbability:
      return StrPrintf("p=%.3f", p);
  }
  return "?";
}

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {}

void FaultInjector::Arm(const std::string& site, FaultSpec spec) {
  SiteState state;
  state.spec = spec;
  // Each site gets an independent deterministic stream derived from the
  // injector seed and the site name, so arming order never changes
  // outcomes.
  state.rng = Rng(seed_ ^ std::hash<std::string>{}(site));
  armed_[site] = std::move(state);
}

void FaultInjector::Disarm(const std::string& site) { armed_.erase(site); }

void FaultInjector::DisarmAll() { armed_.clear(); }

bool FaultInjector::IsArmed(const std::string& site) const {
  return armed_.count(site) > 0;
}

void FaultInjector::Reseed(uint64_t seed) {
  seed_ = seed;
  total_fires_ = 0;
  unarmed_hits_.clear();
  // Re-arm every site so hit counters and streams restart from the seed.
  for (auto& [site, state] : armed_) {
    state.hit_count = 0;
    state.fire_count = 0;
    state.rng = Rng(seed_ ^ std::hash<std::string>{}(site));
  }
}

bool FaultInjector::ShouldFire(const std::string& site) {
  auto it = armed_.find(site);
  if (it == armed_.end()) {
    ++unarmed_hits_[site];
    return false;
  }
  SiteState& state = it->second;
  ++state.hit_count;
  bool fire = false;
  switch (state.spec.mode) {
    case FireMode::kAlways:
      fire = true;
      break;
    case FireMode::kFirstN:
      fire = state.hit_count <= state.spec.n;
      break;
    case FireMode::kOnNth:
      fire = state.hit_count == state.spec.n;
      break;
    case FireMode::kProbability:
      fire = state.rng.NextBernoulli(state.spec.p);
      break;
  }
  if (fire) {
    ++state.fire_count;
    ++total_fires_;
    RQO_IF_OBS(metrics_) {
      metrics_->GetCounter("fault.fired")->Increment();
      metrics_->GetCounter("fault.fired." + site)->Increment();
    }
    RQO_IF_OBS(tracer_) {
      tracer_->Event("fault", "fired",
                     {{"site", site},
                      {"mode", state.spec.ToString()},
                      {"hit", obs::AttrU64(state.hit_count)}});
    }
  }
  return fire;
}

Status FaultInjector::Check(const std::string& site) {
  auto it = armed_.find(site);
  if (it == armed_.end()) {
    ++unarmed_hits_[site];
    return Status::OK();
  }
  if (!ShouldFire(site)) return Status::OK();
  return Status(it->second.spec.code, "injected fault at " + site);
}

double FaultInjector::CheckStall(const std::string& site) {
  auto it = armed_.find(site);
  if (it == armed_.end()) {
    ++unarmed_hits_[site];
    return 0.0;
  }
  if (!ShouldFire(site)) return 0.0;
  return it->second.spec.stall_seconds;
}

uint64_t FaultInjector::hits(const std::string& site) const {
  auto it = armed_.find(site);
  if (it != armed_.end()) return it->second.hit_count;
  auto uit = unarmed_hits_.find(site);
  return uit == unarmed_hits_.end() ? 0 : uit->second;
}

uint64_t FaultInjector::fires(const std::string& site) const {
  auto it = armed_.find(site);
  return it == armed_.end() ? 0 : it->second.fire_count;
}

std::string FaultInjector::DescribeArmed() const {
  if (armed_.empty()) return "(no faults armed)\n";
  std::string out;
  for (const auto& [site, state] : armed_) {
    out += StrPrintf("%-22s %-12s code=%s hits=%llu fires=%llu\n",
                     site.c_str(), state.spec.ToString().c_str(),
                     StatusCodeName(state.spec.code),
                     static_cast<unsigned long long>(state.hit_count),
                     static_cast<unsigned long long>(state.fire_count));
  }
  return out;
}

std::vector<std::pair<std::string, FaultSpec>> FaultInjector::ArmedSpecs()
    const {
  std::vector<std::pair<std::string, FaultSpec>> out;
  out.reserve(armed_.size());
  for (const auto& [site, state] : armed_) out.emplace_back(site, state.spec);
  return out;
}

}  // namespace fault
}  // namespace robustqo
