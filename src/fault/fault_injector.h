// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Deterministic fault injection. A FaultInjector holds a set of named fault
// sites ("stats.sample.read", "exec.operator.alloc", ...) that production
// code probes at the moment the corresponding real-world failure could
// happen. Tests, the chaos harness and the shell arm sites with
// fire-always, fire-on-first-N, fire-on-Nth or seeded-probability
// semantics; unarmed sites cost one hash lookup and never fire. All
// randomness flows from the injector's seed, so a chaos run is replayable
// bit-for-bit from (seed, arming) alone.

#ifndef ROBUSTQO_FAULT_FAULT_INJECTOR_H_
#define ROBUSTQO_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/status.h"

namespace robustqo {
namespace fault {

/// Canonical fault-site names. Sites are plain strings so subsystems can
/// add their own, but these are the ones the core engine probes.
namespace sites {
/// Reading a per-table statistics sample (transient storage failure).
inline constexpr char kSampleRead[] = "stats.sample.read";
/// Reading a join synopsis (missing or stale synopsis storage).
inline constexpr char kSynopsisRead[] = "stats.synopsis.read";
/// Reading a CSV/table file from disk.
inline constexpr char kCsvRead[] = "storage.csv.read";
/// Operator workspace allocation (hash table, sort buffer) failing.
inline constexpr char kOperatorAlloc[] = "exec.operator.alloc";
/// A clock stall charged as extra simulated seconds inside an operator.
inline constexpr char kClockStall[] = "exec.clock.stall";
/// Enqueueing a request into the server's admission queue (the moment a
/// real service could drop a connection or shed load).
inline constexpr char kAdmissionEnqueue[] = "server.admission.enqueue";
/// A plan-cache lookup (the moment a shared cache shard could be
/// unreachable); the server degrades a fired lookup to a miss.
inline constexpr char kPlanCacheLookup[] = "server.plan_cache.lookup";
/// Applying one staged row mutation to table storage (a page write
/// failing mid-batch). A fire rolls the whole staged batch back.
inline constexpr char kWriteApply[] = "storage.write.apply";
/// Publishing a staged batch at commit (the durability point). A fire
/// rolls the batch back; the write either commits atomically or not at
/// all.
inline constexpr char kWriteCommit[] = "storage.write.commit";
/// Feeding a committed mutation into the statistics reservoir. Probed
/// before the commit is published, so a fire aborts the write and the
/// sample never diverges from the table.
inline constexpr char kReservoirUpdate[] = "stats.reservoir.update";
/// Applying learned-selectivity feedback (the FeedbackStore): probed both
/// when the reduce phase records an executed query's actual selectivity
/// and when the estimator consults learned corrections at plan time. A
/// fire drops the observation / degrades the lookup to the uncorrected
/// estimate — results stay correct, only the learning loop pauses.
inline constexpr char kLearningFeedbackApply[] = "learning.feedback.apply";
/// A simulated network link between the coordinator and one node dropping
/// all messages (a partitioned node). The coordinator degrades the query
/// typed (strict mode) or falls back to whole-query local execution and
/// reroutes around the dead link.
inline constexpr char kNetPartition[] = "net.partition";
/// A simulated network link stalling: a fired probe charges the armed
/// spec's `stall_seconds` to the request's cost meter, exactly like an
/// exec clock stall but attributed to the wire.
inline constexpr char kNetLag[] = "net.lag";
/// A node replica missing a statistics-epoch sync: a fire leaves the
/// replica's statistics pinned at the previous epoch so the coordinator's
/// freshness check trips, the query re-routes/degrades, and the drift
/// hook forces a re-sync on the next wave boundary.
inline constexpr char kReplicaStaleStats[] = "replica.stale_stats";
}  // namespace sites

/// The sites the engine probes, for shell listings and the chaos harness.
const std::vector<std::string>& KnownFaultSites();

/// When an armed site should fire.
enum class FireMode {
  kAlways,       ///< every probe fires
  kFirstN,       ///< the first `n` probes fire, later ones succeed
  kOnNth,        ///< exactly the `n`-th probe (1-based) fires
  kProbability,  ///< each probe fires with probability `p` (seeded)
};

/// One site's arming.
struct FaultSpec {
  FireMode mode = FireMode::kAlways;
  uint64_t n = 1;      ///< kFirstN / kOnNth parameter
  double p = 1.0;      ///< kProbability parameter
  /// Status code a fired probe reports. Defaults to kUnavailable (a
  /// transient read failure); the operator-alloc site conventionally arms
  /// with kResourceExhausted.
  StatusCode code = StatusCode::kUnavailable;
  /// Simulated seconds a fired clock-stall charges.
  double stall_seconds = 60.0;

  static FaultSpec Always() { return {}; }
  static FaultSpec FirstN(uint64_t n) {
    FaultSpec s;
    s.mode = FireMode::kFirstN;
    s.n = n;
    return s;
  }
  static FaultSpec OnNth(uint64_t n) {
    FaultSpec s;
    s.mode = FireMode::kOnNth;
    s.n = n;
    return s;
  }
  static FaultSpec Probability(double p) {
    FaultSpec s;
    s.mode = FireMode::kProbability;
    s.p = p;
    return s;
  }

  std::string ToString() const;
};

/// Deterministic, seeded fault injector. Not thread-safe (like the rest of
/// the engine: one instance per worker).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0);

  /// Arms `site` with `spec`, resetting the site's hit counter.
  void Arm(const std::string& site, FaultSpec spec);
  void Disarm(const std::string& site);
  void DisarmAll();
  bool IsArmed(const std::string& site) const;

  /// Reseeds the probability stream and clears per-site hit state.
  void Reseed(uint64_t seed);
  uint64_t seed() const { return seed_; }

  /// Probes `site`: counts the hit and decides whether the fault fires.
  /// Unarmed sites never fire. Deterministic given (seed, arming, probe
  /// sequence).
  bool ShouldFire(const std::string& site);

  /// Probes `site` and converts a firing into the site's typed Status;
  /// returns OK when the site stays quiet. The returned message names the
  /// site so failures stay attributable end-to-end.
  Status Check(const std::string& site);

  /// Stall seconds to charge if `site` (a clock-stall style site) fires,
  /// 0.0 when quiet.
  double CheckStall(const std::string& site);

  uint64_t hits(const std::string& site) const;
  uint64_t fires(const std::string& site) const;
  uint64_t total_fires() const { return total_fires_; }

  /// "site mode [params]" lines for the shell's fault listing.
  std::string DescribeArmed() const;

  /// The armed sites and their specs, ordered by site name. Lets the
  /// server's scheduler replicate one injector's arming onto per-request
  /// injectors (each reseeded from its own deterministic stream) without
  /// sharing the non-thread-safe instance across workers.
  std::vector<std::pair<std::string, FaultSpec>> ArmedSpecs() const;

  /// Observability sinks (borrowed, nullable): every fire increments
  /// "fault.fired" and "fault.fired.<site>" and emits a "fault" trace
  /// event.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct SiteState {
    FaultSpec spec;
    uint64_t hit_count = 0;
    uint64_t fire_count = 0;
    Rng rng{0};
  };

  uint64_t seed_ = 0;
  uint64_t total_fires_ = 0;
  std::map<std::string, SiteState> armed_;
  std::map<std::string, uint64_t> unarmed_hits_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace fault
}  // namespace robustqo

#endif  // ROBUSTQO_FAULT_FAULT_INJECTOR_H_
