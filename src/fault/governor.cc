#include "fault/governor.h"

#include <algorithm>

#include "util/string_util.h"

namespace robustqo {
namespace fault {

Status QueryGovernor::ChargeMemory(uint64_t bytes) {
  memory_in_use_ += bytes;
  peak_memory_bytes_ = std::max(peak_memory_bytes_, memory_in_use_);
  if (limits_.memory_limit_bytes != 0 &&
      memory_in_use_ > limits_.memory_limit_bytes) {
    ++memory_trips_;
    return Status::ResourceExhausted(StrPrintf(
        "query memory budget exceeded: %llu of %llu bytes in use",
        static_cast<unsigned long long>(memory_in_use_),
        static_cast<unsigned long long>(limits_.memory_limit_bytes)));
  }
  return Status::OK();
}

void QueryGovernor::ReleaseMemory(uint64_t bytes) {
  memory_in_use_ -= std::min(memory_in_use_, bytes);
}

Status QueryGovernor::ChargeRows(uint64_t rows) {
  rows_charged_ += rows;
  if (limits_.row_limit != 0 && rows_charged_ > limits_.row_limit) {
    ++row_trips_;
    return Status::ResourceExhausted(StrPrintf(
        "query row budget exceeded: %llu rows materialized (limit %llu)",
        static_cast<unsigned long long>(rows_charged_),
        static_cast<unsigned long long>(limits_.row_limit)));
  }
  return Status::OK();
}

Status QueryGovernor::CheckTime(double simulated_seconds) {
  if (limits_.time_limit_seconds != 0.0 &&
      simulated_seconds > limits_.time_limit_seconds) {
    ++time_trips_;
    return Status::ResourceExhausted(
        StrPrintf("query time budget exceeded: %.3f simulated seconds "
                  "(limit %.3f)",
                  simulated_seconds, limits_.time_limit_seconds));
  }
  return Status::OK();
}

Status QueryGovernor::CheckCancelled() const {
  if (token_.cancelled()) {
    return Status::Cancelled(token_.reason().empty() ? "query cancelled"
                                                     : token_.reason());
  }
  return Status::OK();
}

void QueryGovernor::PublishMetrics(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->GetGauge("governor.peak_memory_bytes")
      ->Set(static_cast<double>(peak_memory_bytes_));
  metrics->GetGauge("governor.rows_charged")
      ->Set(static_cast<double>(rows_charged_));
  if (memory_trips_ > 0) {
    metrics->GetCounter("governor.memory_trips")->Increment(memory_trips_);
  }
  if (row_trips_ > 0) {
    metrics->GetCounter("governor.row_trips")->Increment(row_trips_);
  }
  if (time_trips_ > 0) {
    metrics->GetCounter("governor.time_trips")->Increment(time_trips_);
  }
  if (token_.cancelled()) {
    metrics->GetCounter("governor.cancelled")->Increment();
  }
}

Status MemoryReservation::Grow(uint64_t bytes) {
  if (governor_ == nullptr) return Status::OK();
  reserved_ += bytes;
  return governor_->ChargeMemory(bytes);
}

void MemoryReservation::Release() {
  if (governor_ != nullptr && reserved_ > 0) {
    governor_->ReleaseMemory(reserved_);
  }
  reserved_ = 0;
}

}  // namespace fault
}  // namespace robustqo
