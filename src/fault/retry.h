// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Retry-with-deterministic-backoff for transient (kUnavailable) failures,
// e.g. a statistics sample whose storage read fails intermittently. Backoff
// is *logical*: units double per attempt and are recorded in RetryStats /
// metrics rather than slept away, so tests and chaos runs stay instant and
// bit-for-bit reproducible while the retry schedule remains realistic.

#ifndef ROBUSTQO_FAULT_RETRY_H_
#define ROBUSTQO_FAULT_RETRY_H_

#include <cstdint>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/status.h"

namespace robustqo {
namespace fault {

/// Retry schedule. max_attempts includes the first try; backoff before
/// attempt k (k >= 2) is base_backoff_units << (k - 2) logical units.
struct RetryPolicy {
  int max_attempts = 3;
  uint64_t base_backoff_units = 1;

  /// Only transient unavailability is retryable; every other error is
  /// returned to the caller immediately.
  static bool IsRetryable(const Status& status) {
    return status.code() == StatusCode::kUnavailable;
  }
};

/// What a RetryWithBackoff call actually did.
struct RetryStats {
  int attempts = 0;
  uint64_t backoff_units = 0;
  bool exhausted = false;  ///< all attempts failed with a retryable error
};

namespace internal {
inline const Status& ToStatus(const Status& status) { return status; }
template <typename T>
Status ToStatus(const Result<T>& result) {
  return result.status();
}
}  // namespace internal

/// Invokes `fn` (returning Result<T> or Status) up to policy.max_attempts
/// times, backing off deterministically between retryable failures.
/// Returns the first success or the last error. Optional sinks record
/// "fault.retry.attempts" / "fault.retry.backoff_units" /
/// "fault.retry.exhausted".
template <typename Fn>
auto RetryWithBackoff(const RetryPolicy& policy, Fn&& fn,
                      RetryStats* stats = nullptr,
                      obs::MetricsRegistry* metrics = nullptr)
    -> decltype(fn()) {
  RetryStats local;
  RetryStats* out = stats != nullptr ? stats : &local;
  out->attempts = 0;
  out->backoff_units = 0;
  out->exhausted = false;
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  while (true) {
    ++out->attempts;
    auto result = fn();
    if (result.ok() || !RetryPolicy::IsRetryable(internal::ToStatus(result))) {
      RQO_IF_OBS(metrics) {
        if (out->attempts > 1) {
          metrics->GetCounter("fault.retry.attempts")
              ->Increment(static_cast<uint64_t>(out->attempts - 1));
          metrics->GetCounter("fault.retry.backoff_units")
              ->Increment(out->backoff_units);
        }
      }
      return result;
    }
    if (out->attempts >= attempts) {
      out->exhausted = true;
      RQO_IF_OBS(metrics) {
        metrics->GetCounter("fault.retry.attempts")
            ->Increment(static_cast<uint64_t>(out->attempts - 1));
        metrics->GetCounter("fault.retry.backoff_units")
            ->Increment(out->backoff_units);
        metrics->GetCounter("fault.retry.exhausted")->Increment();
      }
      return result;
    }
    out->backoff_units += policy.base_backoff_units
                          << (out->attempts - 1 < 63 ? out->attempts - 1 : 63);
  }
}

}  // namespace fault
}  // namespace robustqo

#endif  // ROBUSTQO_FAULT_RETRY_H_
