// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Query governor: per-query resource budgets (memory, materialized rows,
// simulated execution time) plus a cooperative CancellationToken. Operators
// account their work against the governor inside their Run() loops and bail
// out with a typed Status (kResourceExhausted / kCancelled) the moment a
// budget trips — the query dies cleanly, never the process. A governor is
// cheap enough to construct per query; limits of 0 mean "unlimited", so a
// default-constructed governor never trips.

#ifndef ROBUSTQO_FAULT_GOVERNOR_H_
#define ROBUSTQO_FAULT_GOVERNOR_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace robustqo {
namespace fault {

/// Per-query budgets; 0 (or 0.0) disables the corresponding limit.
struct GovernorLimits {
  /// Bytes of operator workspace + materialized intermediate results.
  uint64_t memory_limit_bytes = 0;
  /// Total rows materialized across all operators (intermediates included).
  uint64_t row_limit = 0;
  /// Simulated execution seconds (the cost meter's clock).
  double time_limit_seconds = 0.0;

  bool Unlimited() const {
    return memory_limit_bytes == 0 && row_limit == 0 &&
           time_limit_seconds == 0.0;
  }
};

/// Cooperative cancellation flag, checked by operators between units of
/// work. Cancel() never interrupts anything by force.
class CancellationToken {
 public:
  void Cancel(std::string reason) {
    if (!cancelled_) {
      cancelled_ = true;
      reason_ = std::move(reason);
    }
  }
  bool cancelled() const { return cancelled_; }
  const std::string& reason() const { return reason_; }

 private:
  bool cancelled_ = false;
  std::string reason_;
};

/// Enforces GovernorLimits for one query execution.
class QueryGovernor {
 public:
  QueryGovernor() = default;
  explicit QueryGovernor(GovernorLimits limits) : limits_(limits) {}

  const GovernorLimits& limits() const { return limits_; }
  CancellationToken* token() { return &token_; }

  /// Accounts `bytes` of operator memory; kResourceExhausted once the
  /// budget is exceeded (the trip is sticky: later checks keep failing).
  Status ChargeMemory(uint64_t bytes);
  /// Returns workspace memory (transient structures released at operator
  /// end; materialized outputs are never released within a query).
  void ReleaseMemory(uint64_t bytes);

  /// Accounts `rows` materialized rows.
  Status ChargeRows(uint64_t rows);

  /// Checks the simulated-time budget against `simulated_seconds`.
  Status CheckTime(double simulated_seconds);

  /// kCancelled when the token was cancelled, OK otherwise.
  Status CheckCancelled() const;

  // -- Accounting snapshot (for EXPLAIN ANALYZE / metrics) --
  uint64_t memory_in_use() const { return memory_in_use_; }
  uint64_t peak_memory_bytes() const { return peak_memory_bytes_; }
  uint64_t rows_charged() const { return rows_charged_; }
  uint64_t memory_trips() const { return memory_trips_; }
  uint64_t row_trips() const { return row_trips_; }
  uint64_t time_trips() const { return time_trips_; }
  bool tripped() const {
    return memory_trips_ + row_trips_ + time_trips_ > 0;
  }

  /// Publishes governor.* counters/gauges into `metrics` (no-op on null).
  void PublishMetrics(obs::MetricsRegistry* metrics) const;

 private:
  GovernorLimits limits_;
  CancellationToken token_;
  uint64_t memory_in_use_ = 0;
  uint64_t peak_memory_bytes_ = 0;
  uint64_t rows_charged_ = 0;
  uint64_t memory_trips_ = 0;
  uint64_t row_trips_ = 0;
  uint64_t time_trips_ = 0;
};

/// RAII workspace reservation: memory charged through a reservation is
/// released when the reservation leaves scope (hash tables, sort buffers).
class MemoryReservation {
 public:
  explicit MemoryReservation(QueryGovernor* governor)
      : governor_(governor) {}
  ~MemoryReservation() { Release(); }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  /// Charges `bytes` more workspace; propagates a trip as a typed error.
  Status Grow(uint64_t bytes);
  /// Early release (idempotent).
  void Release();
  uint64_t reserved_bytes() const { return reserved_; }

 private:
  QueryGovernor* governor_;  // nullable: null governor = unlimited
  uint64_t reserved_ = 0;
};

}  // namespace fault
}  // namespace robustqo

#endif  // ROBUSTQO_FAULT_GOVERNOR_H_
