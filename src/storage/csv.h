// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// CSV import/export so users can load their own data. Values are parsed
// according to a caller-supplied schema: kInt64 as integers, kDouble as
// floating point, kDate as YYYY-MM-DD, kString verbatim. Quoting: fields
// may be wrapped in double quotes, with "" as the escape.

#ifndef ROBUSTQO_STORAGE_CSV_H_
#define ROBUSTQO_STORAGE_CSV_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "fault/fault_injector.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "util/status.h"

namespace robustqo {
namespace storage {

/// CSV parsing knobs.
struct CsvOptions {
  char delimiter = ',';
  /// Skip the first line (column headers).
  bool has_header = true;
  /// Optional fault injector (borrowed): every line read probes the
  /// "storage.csv.read" site, so tests can simulate a disk that fails
  /// mid-file. nullptr (the default) costs nothing.
  fault::FaultInjector* fault = nullptr;
};

/// Parses CSV from `input` into a new table named `table_name` with the
/// given schema. Fails with InvalidArgument on arity or value errors
/// (message includes the line number) and with Unavailable when the
/// underlying stream goes bad mid-read or an armed fault fires.
Result<std::unique_ptr<Table>> ReadCsv(std::istream* input,
                                       const std::string& table_name,
                                       const Schema& schema,
                                       const CsvOptions& options = {});

/// Convenience: reads from a file path.
Result<std::unique_ptr<Table>> ReadCsvFile(const std::string& path,
                                           const std::string& table_name,
                                           const Schema& schema,
                                           const CsvOptions& options = {});

/// Writes `table` as CSV (header + rows) to `output`. Strings containing
/// the delimiter, quotes or newlines are quoted.
Status WriteCsv(const Table& table, std::ostream* output,
                const CsvOptions& options = {});

}  // namespace storage
}  // namespace robustqo

#endif  // ROBUSTQO_STORAGE_CSV_H_
