// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// WriteBatch: a staged DML mutation against one table, applied atomically.
// The DML executor stages inserts / delete-stamps / updates (decomposed
// into delete + insert of the new version) and then calls Commit, which
// walks the write-path fault sites in order:
//
//   storage.write.apply     one probe per staged row mutation
//   storage.write.commit    one probe at the publish point
//   <pre_publish hook>      the statistics layer's reservoir feed, which
//                           probes stats.reservoir.update itself
//
// Any failure rolls the whole batch back — appended rows are truncated,
// fresh delete stamps cleared, the reserved data epoch abandoned — and the
// typed Status is returned (kUnavailable is retryable). Only after every
// fallible step has passed is the data epoch published and the table's
// secondary indexes rebuilt; readers pinned to an older snapshot keep
// seeing the pre-commit state.

#ifndef ROBUSTQO_STORAGE_WRITE_BATCH_H_
#define ROBUSTQO_STORAGE_WRITE_BATCH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/status.h"

namespace robustqo {
namespace storage {

/// What a committed batch did, for reporting and statistics maintenance.
struct CommitStats {
  uint64_t rows_inserted = 0;
  uint64_t rows_deleted = 0;  ///< delete stamps placed (updates count here)
  uint64_t rows_updated = 0;  ///< staged updates (also counted in the above)
  /// The published data epoch; readers at snapshots >= this see the batch.
  uint64_t epoch = 0;
};

/// One table's staged mutation. Not reusable after Commit.
class WriteBatch {
 public:
  WriteBatch(Catalog* catalog, Table* table)
      : catalog_(catalog), table_(table) {}
  WriteBatch(const WriteBatch&) = delete;
  WriteBatch& operator=(const WriteBatch&) = delete;

  Table* table() const { return table_; }

  /// Stages a full row append; arity/types must match the schema.
  void StageInsert(std::vector<Value> row) {
    inserts_.push_back(std::move(row));
  }

  /// Stages a delete stamp for `rid` (must be visible to the writer).
  void StageDelete(Rid rid) { deletes_.push_back(rid); }

  /// Stages an update: delete-stamp the old version, append the new one.
  void StageUpdate(Rid old_rid, std::vector<Value> new_row) {
    deletes_.push_back(old_rid);
    inserts_.push_back(std::move(new_row));
    ++updates_;
  }

  bool empty() const { return inserts_.empty() && deletes_.empty(); }
  uint64_t staged_inserts() const { return inserts_.size(); }
  uint64_t staged_deletes() const { return deletes_.size(); }

  /// Rows staged for insert (the statistics layer feeds these into the
  /// reservoir from its pre_publish hook).
  const std::vector<std::vector<Value>>& staged_insert_rows() const {
    return inserts_;
  }

  /// Applies the staged mutation atomically. `fault` (nullable) is probed
  /// per the file header; `pre_publish` (nullable) is the last fallible
  /// step — a non-OK return rolls the batch back exactly like a fired
  /// fault site. On success the data epoch is published, the table's
  /// indexes are rebuilt, and the stats are returned.
  Result<CommitStats> Commit(
      fault::FaultInjector* fault,
      const std::function<Status(const CommitStats&)>& pre_publish = nullptr);

 private:
  Catalog* catalog_;
  Table* table_;
  std::vector<std::vector<Value>> inserts_;
  std::vector<Rid> deletes_;
  uint64_t updates_ = 0;
};

}  // namespace storage
}  // namespace robustqo

#endif  // ROBUSTQO_STORAGE_WRITE_BATCH_H_
