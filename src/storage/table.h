// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// In-memory columnar table. Rows are addressed by RID (row id, 0-based
// position), which also models the record identifier that nonclustered
// indexes store. Integer-physical columns (int64/date) and doubles are
// stored in native arrays; strings in a vector<string>.

#ifndef ROBUSTQO_STORAGE_TABLE_H_
#define ROBUSTQO_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace robustqo {
namespace storage {

/// Row identifier: position of the row in its table.
using Rid = uint64_t;

/// A single typed column stored natively.
class ColumnVector {
 public:
  explicit ColumnVector(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const;

  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void Append(const Value& v);

  /// Unboxed accessors (abort on type mismatch).
  int64_t Int64At(Rid rid) const { return ints_[rid]; }
  double DoubleAt(Rid rid) const { return doubles_[rid]; }
  const std::string& StringAt(Rid rid) const { return strings_[rid]; }

  /// Boxed accessor.
  Value ValueAt(Rid rid) const;

  void Reserve(size_t n);

 private:
  DataType type_;
  std::vector<int64_t> ints_;      // kInt64 / kDate
  std::vector<double> doubles_;    // kDouble
  std::vector<std::string> strings_;  // kString
};

/// A named table with a fixed schema.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }

  /// Appends a full row; values must match the schema arity and types.
  void AppendRow(const std::vector<Value>& values);

  /// Direct column access for bulk loading / scanning.
  ColumnVector* mutable_column(size_t i) { return columns_[i].get(); }
  const ColumnVector& column(size_t i) const { return *columns_[i]; }

  /// Column by name; aborts if absent (use schema().ColumnIndex for the
  /// checked variant).
  const ColumnVector& column(const std::string& name) const;

  /// Boxed cell access.
  Value ValueAt(Rid rid, size_t col) const { return columns_[col]->ValueAt(rid); }

  /// Full boxed row (mostly for tests / small results).
  std::vector<Value> RowAt(Rid rid) const;

  /// Marks row count after bulk column loading; all columns must have
  /// exactly `n` entries.
  void FinalizeBulkLoad();

  void Reserve(size_t n);

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::unique_ptr<ColumnVector>> columns_;
  uint64_t num_rows_ = 0;
};

}  // namespace storage
}  // namespace robustqo

#endif  // ROBUSTQO_STORAGE_TABLE_H_
