// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// In-memory columnar table. Rows are addressed by RID (row id, 0-based
// position), which also models the record identifier that nonclustered
// indexes store. Integer-physical columns (int64/date) and doubles are
// stored in native arrays; strings in a vector<string>.
//
// Snapshot versioning: physical storage is append-only. Each row carries an
// insert epoch and an optional delete epoch (0 = live); an UPDATE is a
// delete-stamp of the old version plus an append of the new one, and a
// rollback is a truncation of the appended tail plus clearing of the fresh
// delete stamps. Readers evaluate visibility against a snapshot epoch:
// a row is visible iff it was inserted at or before the snapshot and not
// deleted at or before it. Tables that have never seen DML keep no epoch
// arrays at all and every row is visible — the read path is unchanged for
// bulk-loaded, read-only workloads.

#ifndef ROBUSTQO_STORAGE_TABLE_H_
#define ROBUSTQO_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace robustqo {
namespace storage {

/// Row identifier: position of the row in its table.
using Rid = uint64_t;

/// Snapshot epoch that sees every committed version (the "latest" view).
inline constexpr uint64_t kLatestSnapshot = UINT64_MAX;

/// A single typed column stored natively.
class ColumnVector {
 public:
  explicit ColumnVector(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const;

  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void Append(const Value& v);

  /// Unboxed accessors (abort on type mismatch).
  int64_t Int64At(Rid rid) const { return ints_[rid]; }
  double DoubleAt(Rid rid) const { return doubles_[rid]; }
  const std::string& StringAt(Rid rid) const { return strings_[rid]; }

  /// Boxed accessor.
  Value ValueAt(Rid rid) const;

  void Reserve(size_t n);

  /// Drops all entries past the first `n` (rollback of appended rows).
  void Truncate(size_t n);

 private:
  DataType type_;
  std::vector<int64_t> ints_;      // kInt64 / kDate
  std::vector<double> doubles_;    // kDouble
  std::vector<std::string> strings_;  // kString
};

/// A named table with a fixed schema.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }

  /// Appends a full row; values must match the schema arity and types.
  void AppendRow(const std::vector<Value>& values);

  /// Direct column access for bulk loading / scanning.
  ColumnVector* mutable_column(size_t i) { return columns_[i].get(); }
  const ColumnVector& column(size_t i) const { return *columns_[i]; }

  /// Column by name; aborts if absent (use schema().ColumnIndex for the
  /// checked variant).
  const ColumnVector& column(const std::string& name) const;

  /// Boxed cell access.
  Value ValueAt(Rid rid, size_t col) const { return columns_[col]->ValueAt(rid); }

  /// Full boxed row (mostly for tests / small results).
  std::vector<Value> RowAt(Rid rid) const;

  /// Marks row count after bulk column loading; all columns must have
  /// exactly `n` entries.
  void FinalizeBulkLoad();

  void Reserve(size_t n);

  // --- Snapshot versioning (see file header) ---------------------------

  /// True once the table has seen at least one versioned write. Unversioned
  /// tables have no per-row epoch arrays and every row is visible at every
  /// snapshot.
  bool versioned() const { return versioned_; }

  /// Is row `rid` visible to a reader at `snapshot`? Always true for
  /// unversioned tables. A row is visible iff
  ///   insert_epoch <= snapshot AND (delete_epoch == 0 OR
  ///                                 delete_epoch > snapshot).
  bool VisibleAt(Rid rid, uint64_t snapshot = kLatestSnapshot) const {
    if (!versioned_) return true;
    if (insert_epochs_[rid] > snapshot) return false;
    const uint64_t del = delete_epochs_[rid];
    return del == 0 || del > snapshot;
  }

  /// Appends a row stamped with insert epoch `epoch`. Materializes the
  /// epoch arrays on first use (pre-existing rows get epoch 0 = always
  /// visible, never deleted).
  void AppendRowVersioned(const std::vector<Value>& values, uint64_t epoch);

  /// Delete-stamps / un-stamps a row. MarkDeleted on an already-deleted
  /// row is a no-op returning false (the caller skips it for rollback
  /// bookkeeping).
  bool MarkDeleted(Rid rid, uint64_t epoch);
  void ClearDelete(Rid rid);

  uint64_t InsertEpochOf(Rid rid) const {
    return versioned_ ? insert_epochs_[rid] : 0;
  }
  uint64_t DeleteEpochOf(Rid rid) const {
    return versioned_ ? delete_epochs_[rid] : 0;
  }

  /// Drops all physically-stored rows past the first `n` (rollback of an
  /// aborted append tail). Only meaningful on versioned tables.
  void TruncateRows(uint64_t n);

  /// Rows visible at `snapshot` (== num_rows() for unversioned tables).
  uint64_t VisibleRowCount(uint64_t snapshot = kLatestSnapshot) const;

  /// Reverts every committed write with epoch > `epoch`: truncates rows
  /// inserted after it and clears delete stamps placed after it. Restores
  /// the table to exactly its state as of `epoch` (chaos sweeps use this
  /// to reset shared state between runs).
  void RevertWritesAfter(uint64_t epoch);

  /// Order-sensitive FNV-1a checksum over the rows visible at `snapshot`.
  /// Two tables with identical visible contents (values, in RID order)
  /// produce identical checksums — the torn-write detector of the chaos
  /// sweep's committed-or-untouched contract.
  uint64_t VisibleChecksum(uint64_t snapshot = kLatestSnapshot) const;

 private:
  /// Materializes insert/delete epoch arrays (epoch 0 for existing rows).
  void EnsureVersioned();

  std::string name_;
  Schema schema_;
  std::vector<std::unique_ptr<ColumnVector>> columns_;
  uint64_t num_rows_ = 0;
  bool versioned_ = false;
  std::vector<uint64_t> insert_epochs_;  // parallel to rows once versioned
  std::vector<uint64_t> delete_epochs_;  // 0 = live
};

}  // namespace storage
}  // namespace robustqo

#endif  // ROBUSTQO_STORAGE_TABLE_H_
