// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Nonclustered secondary index over a single column, modeled as a sorted
// (key, rid) array — the access-path behaviour (logarithmic seek + ordered
// leaf scan + RID list output) matches a B+-tree; only the update cost
// differs, which is irrelevant for the read-only experiments here.

#ifndef ROBUSTQO_STORAGE_INDEX_H_
#define ROBUSTQO_STORAGE_INDEX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "storage/table.h"

namespace robustqo {
namespace storage {

/// A sorted secondary index on one integer-physical or double column.
/// String columns are not indexable in this build (the paper's experiments
/// index dates and integer keys only).
class SortedIndex {
 public:
  /// Builds the index over `table.column(column_name)`.
  SortedIndex(const Table& table, std::string column_name);

  const std::string& column_name() const { return column_name_; }
  const std::string& table_name() const { return table_name_; }
  uint64_t num_entries() const { return keys_.size(); }

  /// RIDs of rows with key in [lo, hi] (inclusive; pass nullopt for an open
  /// bound). `entries_scanned` (if non-null) receives the number of index
  /// leaf entries touched — the execution cost driver.
  std::vector<Rid> RangeLookup(std::optional<double> lo,
                               std::optional<double> hi,
                               uint64_t* entries_scanned = nullptr) const;

  /// RIDs of rows with key exactly `key`.
  std::vector<Rid> EqualLookup(double key,
                               uint64_t* entries_scanned = nullptr) const;

  /// Number of entries with key in [lo, hi] without materializing RIDs
  /// (used by the optimizer's cost formulas when it wants exact counts in
  /// tests; the estimator itself uses statistics, never the index).
  uint64_t CountRange(std::optional<double> lo, std::optional<double> hi) const;

 private:
  // Position of the first entry with key >= x / > x.
  size_t LowerBound(double x) const;
  size_t UpperBound(double x) const;

  std::string table_name_;
  std::string column_name_;
  std::vector<double> keys_;  // sorted
  std::vector<Rid> rids_;     // parallel to keys_
};

}  // namespace storage
}  // namespace robustqo

#endif  // ROBUSTQO_STORAGE_INDEX_H_
