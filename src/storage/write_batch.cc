#include "storage/write_batch.h"

#include "util/macros.h"

namespace robustqo {
namespace storage {

Result<CommitStats> WriteBatch::Commit(
    fault::FaultInjector* fault,
    const std::function<Status(const CommitStats&)>& pre_publish) {
  const uint64_t epoch = catalog_->BeginDataEpoch();
  const uint64_t base_rows = table_->num_rows();
  // Delete stamps we actually placed (an already-dead RID is skipped), so
  // rollback clears exactly our own stamps.
  std::vector<Rid> stamped;
  stamped.reserve(deletes_.size());

  auto rollback = [&]() {
    table_->TruncateRows(base_rows);
    for (Rid rid : stamped) table_->ClearDelete(rid);
    catalog_->AbandonDataEpoch();
  };

  CommitStats stats;
  stats.epoch = epoch;
  stats.rows_updated = updates_;

  // Apply phase: one storage.write.apply probe per staged row mutation.
  // Delete stamps go first so an update's old version dies at the same
  // epoch its replacement is born.
  for (Rid rid : deletes_) {
    if (fault != nullptr) {
      Status injected = fault->Check(fault::sites::kWriteApply);
      if (!injected.ok()) {
        rollback();
        return Status(injected.code(), injected.message() + " applying " +
                                           table_->name() + " mutation");
      }
    }
    RQO_CHECK_MSG(rid < base_rows, "delete of a row staged in this batch");
    if (table_->MarkDeleted(rid, epoch)) {
      stamped.push_back(rid);
      ++stats.rows_deleted;
    }
  }
  for (const std::vector<Value>& row : inserts_) {
    if (fault != nullptr) {
      Status injected = fault->Check(fault::sites::kWriteApply);
      if (!injected.ok()) {
        rollback();
        return Status(injected.code(), injected.message() + " applying " +
                                           table_->name() + " mutation");
      }
    }
    table_->AppendRowVersioned(row, epoch);
    ++stats.rows_inserted;
  }

  // Commit point: the batch is fully staged in place but not yet visible
  // (no snapshot at the current data epoch sees epoch-stamped rows).
  if (fault != nullptr) {
    Status injected = fault->Check(fault::sites::kWriteCommit);
    if (!injected.ok()) {
      rollback();
      return Status(injected.code(), injected.message() + " committing " +
                                         table_->name() + " batch");
    }
  }

  // Last fallible step: statistics maintenance (reservoir feed). Runs
  // before publish so a fired stats.reservoir.update site aborts the write
  // and the sample never diverges from the table.
  if (pre_publish) {
    Status staged = pre_publish(stats);
    if (!staged.ok()) {
      rollback();
      return staged;
    }
  }

  // Publish: infallible from here on.
  catalog_->PublishDataEpoch(epoch);
  catalog_->RebuildIndexesFor(table_->name());
  return stats;
}

}  // namespace storage
}  // namespace robustqo
