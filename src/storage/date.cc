#include "storage/date.h"

#include <cstdio>

#include "util/string_util.h"

namespace robustqo {
namespace storage {

// Howard Hinnant's days_from_civil / civil_from_days algorithms.
int64_t DateToDays(int year, int month, int day) {
  const int64_t y = year - (month <= 2 ? 1 : 0);
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                                // [0,399]
  const int64_t doy =
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1;     // [0,365]
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;        // [0,...]
  return era * 146097 + doe - 719468;
}

void DaysToDate(int64_t days, int* year, int* month, int* day) {
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;                             // [0,146096]
  const int64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;        // [0,399]
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);      // [0,365]
  const int64_t mp = (5 * doy + 2) / 153;                           // [0,11]
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *year = static_cast<int>(y + (*month <= 2 ? 1 : 0));
}

Result<int64_t> ParseDate(const std::string& s) {
  int year = 0;
  int month = 0;
  int day = 0;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &year, &month, &day) != 3) {
    return Status::InvalidArgument("bad date: " + s);
  }
  if (month < 1 || month > 12 || day < 1 || day > 31) {
    return Status::InvalidArgument("bad date components: " + s);
  }
  return DateToDays(year, month, day);
}

std::string FormatDate(int64_t days) {
  int y = 0;
  int m = 0;
  int d = 0;
  DaysToDate(days, &y, &m, &d);
  return StrPrintf("%04d-%02d-%02d", y, m, d);
}

}  // namespace storage
}  // namespace robustqo
