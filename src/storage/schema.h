// Copyright (c) robustqo authors. Licensed under the MIT license.

#ifndef ROBUSTQO_STORAGE_SCHEMA_H_
#define ROBUSTQO_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace robustqo {
namespace storage {

/// A named, typed column.
struct ColumnDef {
  std::string name;
  DataType type;
};

/// Ordered list of columns with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column named `name`, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// True iff a column with this name exists.
  bool HasColumn(const std::string& name) const;

  /// "name TYPE, name TYPE, ..." for debugging.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace storage
}  // namespace robustqo

#endif  // ROBUSTQO_STORAGE_SCHEMA_H_
