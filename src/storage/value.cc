#include "storage/value.h"

#include <cmath>

#include "storage/date.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace robustqo {
namespace storage {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

int64_t Value::AsInt64() const {
  RQO_CHECK_MSG(std::holds_alternative<int64_t>(payload_),
                "Value is not integer-typed");
  return std::get<int64_t>(payload_);
}

double Value::AsDouble() const {
  RQO_CHECK_MSG(std::holds_alternative<double>(payload_),
                "Value is not double-typed");
  return std::get<double>(payload_);
}

const std::string& Value::AsString() const {
  RQO_CHECK_MSG(std::holds_alternative<std::string>(payload_),
                "Value is not string-typed");
  return std::get<std::string>(payload_);
}

double Value::NumericValue() const {
  if (std::holds_alternative<int64_t>(payload_)) {
    return static_cast<double>(std::get<int64_t>(payload_));
  }
  RQO_CHECK_MSG(std::holds_alternative<double>(payload_),
                "NumericValue on a string");
  return std::get<double>(payload_);
}

int Value::Compare(const Value& other) const {
  if (type_ == DataType::kString || other.type_ == DataType::kString) {
    RQO_CHECK_MSG(
        type_ == DataType::kString && other.type_ == DataType::kString,
        "cannot compare string with non-string");
    return AsString().compare(other.AsString());
  }
  // Numeric comparison: exact for int64-int64, widened otherwise.
  if (std::holds_alternative<int64_t>(payload_) &&
      std::holds_alternative<int64_t>(other.payload_)) {
    const int64_t a = std::get<int64_t>(payload_);
    const int64_t b = std::get<int64_t>(other.payload_);
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const double a = NumericValue();
  const double b = other.NumericValue();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kInt64:
      return StrPrintf("%lld", static_cast<long long>(AsInt64()));
    case DataType::kDouble:
      return StrPrintf("%g", AsDouble());
    case DataType::kString:
      return AsString();
    case DataType::kDate:
      return FormatDate(AsInt64());
  }
  return "?";
}

}  // namespace storage
}  // namespace robustqo
