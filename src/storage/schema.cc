#include "storage/schema.h"

#include "util/macros.h"

namespace robustqo {
namespace storage {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    auto inserted = by_name_.emplace(columns_[i].name, i).second;
    RQO_CHECK_MSG(inserted, ("duplicate column: " + columns_[i].name).c_str());
  }
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no column named " + name);
  }
  return it->second;
}

bool Schema::HasColumn(const std::string& name) const {
  return by_name_.count(name) > 0;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace storage
}  // namespace robustqo
