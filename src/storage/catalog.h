// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Catalog: owns tables, indexes, and key constraints. The foreign-key graph
// recorded here drives both join-synopsis construction (statistics) and
// root-table resolution for SPJ cardinality estimation (paper Section 3.2).

#ifndef ROBUSTQO_STORAGE_CATALOG_H_
#define ROBUSTQO_STORAGE_CATALOG_H_

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/index.h"
#include "storage/table.h"
#include "util/status.h"

namespace robustqo {
namespace storage {

/// A foreign-key constraint: every value of `from_table.from_column` appears
/// as a value of `to_table.to_column` (which is `to_table`'s primary key).
struct ForeignKey {
  std::string from_table;
  std::string from_column;
  std::string to_table;
  std::string to_column;
};

/// Owns the database: tables, secondary indexes, and constraints.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table; the catalog takes ownership. Fails with
  /// AlreadyExists on duplicate names.
  Status AddTable(std::unique_ptr<Table> table);

  /// Declares `column` the primary key of `table`.
  Status SetPrimaryKey(const std::string& table, const std::string& column);

  /// Declares a foreign key; both endpoints must exist, and the referenced
  /// column must be the referenced table's primary key.
  Status AddForeignKey(const ForeignKey& fk);

  /// Builds (or rebuilds) a secondary index on `table.column`.
  Status BuildIndex(const std::string& table, const std::string& column);

  /// Columns of `table` that carry a secondary index (sorted by name).
  std::vector<std::string> IndexedColumnsOf(const std::string& table) const;

  /// Rebuilds every secondary index on `table` from its current physical
  /// contents. Indexes cover every physical row version — including
  /// delete-stamped ones — so scans at any snapshot stay correct; the
  /// scan operators filter per-RID visibility.
  void RebuildIndexesFor(const std::string& table);

  /// Lookup. GetTable/GetIndex return nullptr when absent.
  const Table* GetTable(const std::string& name) const;
  Table* GetMutableTable(const std::string& name);
  const SortedIndex* GetIndex(const std::string& table,
                              const std::string& column) const;
  bool HasIndex(const std::string& table, const std::string& column) const;

  /// Primary key column of `table`; empty if none declared.
  std::string PrimaryKeyOf(const std::string& table) const;

  /// Declares the physical (clustered) sort order of a table. The merge
  /// join access path is offered only when both inputs are clustered on
  /// their join columns.
  Status SetClusteringColumn(const std::string& table,
                             const std::string& column);

  /// Clustering column of `table`; empty if the table is a heap.
  std::string ClusteringColumnOf(const std::string& table) const;

  /// All foreign keys whose `from_table` is `table`.
  std::vector<ForeignKey> ForeignKeysFrom(const std::string& table) const;

  /// The foreign key joining `a` to `b` in either direction, if declared.
  Result<ForeignKey> ForeignKeyBetween(const std::string& a,
                                       const std::string& b) const;

  /// All declared foreign keys.
  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }

  /// Names of all registered tables (sorted).
  std::vector<std::string> TableNames() const;

  /// For an SPJ expression over `tables` whose joins are all foreign-key
  /// joins, returns the root table: the one from which every other table in
  /// the set is reachable by following FK edges (the table whose primary
  /// key is not involved in any join of the expression). NotFound if the
  /// set is not FK-connected under a single root.
  Result<std::string> FindRootTable(const std::set<std::string>& tables) const;

  /// Tables reachable from `table` by recursively following foreign keys
  /// (excluding `table` itself).
  std::set<std::string> ReachableViaForeignKeys(const std::string& table) const;

  // --- Data (snapshot) epoch -------------------------------------------
  //
  // A monotonic counter bumped once per committed DML batch. Row versions
  // are stamped with it and readers pin a snapshot of it; it is distinct
  // from the *statistics* epoch on StatisticsCatalog, which only advances
  // when statistics are rebuilt (so plan-cache entries survive writes
  // until the estimates they were built from actually change).

  /// Epoch of the most recent committed write (0 = only bulk-loaded data).
  uint64_t data_epoch() const { return data_epoch_; }

  /// Reserves and returns the next data epoch for a commit in flight.
  /// The caller stamps row versions with it; once the commit is published
  /// the epoch is visible through data_epoch(). An aborted commit calls
  /// AbandonDataEpoch to hand it back.
  uint64_t BeginDataEpoch() { return data_epoch_ + 1 + pending_epochs_++; }
  void AbandonDataEpoch() { --pending_epochs_; }
  void PublishDataEpoch(uint64_t epoch) {
    --pending_epochs_;
    if (epoch > data_epoch_) data_epoch_ = epoch;
  }

  /// Reverts every table to its state as of `epoch` and rewinds the data
  /// epoch. Indexes on reverted tables are rebuilt. Used by harnesses to
  /// restore shared state between chaos runs.
  void RevertWritesAfter(uint64_t epoch);

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, std::string> primary_keys_;
  std::unordered_map<std::string, std::string> clustering_;
  std::vector<ForeignKey> fks_;
  // "table.column" -> index
  std::unordered_map<std::string, std::unique_ptr<SortedIndex>> indexes_;
  uint64_t data_epoch_ = 0;
  uint64_t pending_epochs_ = 0;
};

}  // namespace storage
}  // namespace robustqo

#endif  // ROBUSTQO_STORAGE_CATALOG_H_
