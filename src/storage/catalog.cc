#include "storage/catalog.h"

#include <algorithm>
#include <deque>

namespace robustqo {
namespace storage {

namespace {
std::string IndexKey(const std::string& table, const std::string& column) {
  return table + "." + column;
}
}  // namespace

Status Catalog::AddTable(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table " + name);
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Status Catalog::SetPrimaryKey(const std::string& table,
                              const std::string& column) {
  const Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (!t->schema().HasColumn(column)) {
    return Status::NotFound("column " + table + "." + column);
  }
  primary_keys_[table] = column;
  return Status::OK();
}

Status Catalog::AddForeignKey(const ForeignKey& fk) {
  const Table* from = GetTable(fk.from_table);
  const Table* to = GetTable(fk.to_table);
  if (from == nullptr) return Status::NotFound("table " + fk.from_table);
  if (to == nullptr) return Status::NotFound("table " + fk.to_table);
  if (!from->schema().HasColumn(fk.from_column)) {
    return Status::NotFound("column " + fk.from_table + "." + fk.from_column);
  }
  if (!to->schema().HasColumn(fk.to_column)) {
    return Status::NotFound("column " + fk.to_table + "." + fk.to_column);
  }
  if (PrimaryKeyOf(fk.to_table) != fk.to_column) {
    return Status::InvalidArgument(
        "foreign key must reference the primary key of " + fk.to_table);
  }
  fks_.push_back(fk);
  return Status::OK();
}

Status Catalog::BuildIndex(const std::string& table,
                           const std::string& column) {
  const Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (!t->schema().HasColumn(column)) {
    return Status::NotFound("column " + table + "." + column);
  }
  indexes_[IndexKey(table, column)] =
      std::make_unique<SortedIndex>(*t, column);
  return Status::OK();
}

std::vector<std::string> Catalog::IndexedColumnsOf(
    const std::string& table) const {
  std::vector<std::string> columns;
  const std::string prefix = table + ".";
  for (const auto& [key, index] : indexes_) {
    if (key.compare(0, prefix.size(), prefix) == 0) {
      columns.push_back(key.substr(prefix.size()));
    }
  }
  std::sort(columns.begin(), columns.end());
  return columns;
}

void Catalog::RebuildIndexesFor(const std::string& table) {
  for (const std::string& column : IndexedColumnsOf(table)) {
    BuildIndex(table, column);
  }
}

void Catalog::RevertWritesAfter(uint64_t epoch) {
  for (const std::string& name : TableNames()) {
    Table* table = GetMutableTable(name);
    if (!table->versioned()) continue;
    const uint64_t before = table->num_rows();
    table->RevertWritesAfter(epoch);
    // Only re-sort indexes whose physical row set actually shrank; delete
    // stamp clearing does not move entries.
    if (table->num_rows() != before) RebuildIndexesFor(name);
  }
  if (data_epoch_ > epoch) data_epoch_ = epoch;
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Catalog::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const SortedIndex* Catalog::GetIndex(const std::string& table,
                                     const std::string& column) const {
  auto it = indexes_.find(IndexKey(table, column));
  return it == indexes_.end() ? nullptr : it->second.get();
}

bool Catalog::HasIndex(const std::string& table,
                       const std::string& column) const {
  return indexes_.count(IndexKey(table, column)) > 0;
}

std::string Catalog::PrimaryKeyOf(const std::string& table) const {
  auto it = primary_keys_.find(table);
  return it == primary_keys_.end() ? std::string() : it->second;
}

Status Catalog::SetClusteringColumn(const std::string& table,
                                    const std::string& column) {
  const Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("table " + table);
  if (!t->schema().HasColumn(column)) {
    return Status::NotFound("column " + table + "." + column);
  }
  clustering_[table] = column;
  return Status::OK();
}

std::string Catalog::ClusteringColumnOf(const std::string& table) const {
  auto it = clustering_.find(table);
  return it == clustering_.end() ? std::string() : it->second;
}

std::vector<ForeignKey> Catalog::ForeignKeysFrom(
    const std::string& table) const {
  std::vector<ForeignKey> out;
  for (const auto& fk : fks_) {
    if (fk.from_table == table) out.push_back(fk);
  }
  return out;
}

Result<ForeignKey> Catalog::ForeignKeyBetween(const std::string& a,
                                              const std::string& b) const {
  for (const auto& fk : fks_) {
    if ((fk.from_table == a && fk.to_table == b) ||
        (fk.from_table == b && fk.to_table == a)) {
      return fk;
    }
  }
  return Status::NotFound("no foreign key between " + a + " and " + b);
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::set<std::string> Catalog::ReachableViaForeignKeys(
    const std::string& table) const {
  std::set<std::string> reached;
  std::deque<std::string> frontier{table};
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    for (const auto& fk : fks_) {
      if (fk.from_table == current && reached.insert(fk.to_table).second) {
        frontier.push_back(fk.to_table);
      }
    }
  }
  reached.erase(table);
  return reached;
}

Result<std::string> Catalog::FindRootTable(
    const std::set<std::string>& tables) const {
  if (tables.empty()) return Status::InvalidArgument("empty table set");
  for (const std::string& name : tables) {
    if (GetTable(name) == nullptr) return Status::NotFound("table " + name);
  }
  for (const std::string& candidate : tables) {
    std::set<std::string> reach = ReachableViaForeignKeys(candidate);
    bool covers_all = true;
    for (const std::string& other : tables) {
      if (other != candidate && reach.count(other) == 0) {
        covers_all = false;
        break;
      }
    }
    if (covers_all) return candidate;
  }
  return Status::NotFound(
      "table set is not foreign-key-connected under a single root");
}

}  // namespace storage
}  // namespace robustqo
