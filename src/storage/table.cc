#include "storage/table.h"

#include "util/macros.h"

namespace robustqo {
namespace storage {

size_t ColumnVector::size() const {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      return ints_.size();
    case DataType::kDouble:
      return doubles_.size();
    case DataType::kString:
      return strings_.size();
  }
  return 0;
}

void ColumnVector::AppendInt64(int64_t v) {
  RQO_DCHECK(IsIntegerPhysical(type_));
  ints_.push_back(v);
}

void ColumnVector::AppendDouble(double v) {
  RQO_DCHECK(type_ == DataType::kDouble);
  doubles_.push_back(v);
}

void ColumnVector::AppendString(std::string v) {
  RQO_DCHECK(type_ == DataType::kString);
  strings_.push_back(std::move(v));
}

void ColumnVector::Append(const Value& v) {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      AppendInt64(v.AsInt64());
      return;
    case DataType::kDouble:
      AppendDouble(v.AsDouble());
      return;
    case DataType::kString:
      AppendString(v.AsString());
      return;
  }
}

Value ColumnVector::ValueAt(Rid rid) const {
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(ints_[rid]);
    case DataType::kDate:
      return Value::Date(ints_[rid]);
    case DataType::kDouble:
      return Value::Double(doubles_[rid]);
    case DataType::kString:
      return Value::String(strings_[rid]);
  }
  return Value();
}

void ColumnVector::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      ints_.reserve(n);
      return;
    case DataType::kDouble:
      doubles_.reserve(n);
      return;
    case DataType::kString:
      strings_.reserve(n);
      return;
  }
}

void ColumnVector::Truncate(size_t n) {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      if (n < ints_.size()) ints_.resize(n);
      return;
    case DataType::kDouble:
      if (n < doubles_.size()) doubles_.resize(n);
      return;
    case DataType::kString:
      if (n < strings_.size()) strings_.resize(n);
      return;
  }
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (const auto& col : schema_.columns()) {
    columns_.push_back(std::make_unique<ColumnVector>(col.type));
  }
}

void Table::AppendRow(const std::vector<Value>& values) {
  RQO_CHECK_MSG(values.size() == schema_.num_columns(),
                "row arity mismatch");
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i]->Append(values[i]);
  }
  ++num_rows_;
}

const ColumnVector& Table::column(const std::string& name) const {
  auto idx = schema_.ColumnIndex(name);
  RQO_CHECK_MSG(idx.ok(), idx.status().ToString().c_str());
  return *columns_[idx.value()];
}

std::vector<Value> Table::RowAt(Rid rid) const {
  std::vector<Value> row;
  row.reserve(columns_.size());
  for (const auto& col : columns_) row.push_back(col->ValueAt(rid));
  return row;
}

void Table::FinalizeBulkLoad() {
  RQO_CHECK(!columns_.empty());
  const size_t n = columns_[0]->size();
  for (const auto& col : columns_) {
    RQO_CHECK_MSG(col->size() == n, "ragged bulk load");
  }
  num_rows_ = n;
}

void Table::Reserve(size_t n) {
  for (auto& col : columns_) col->Reserve(n);
}

void Table::EnsureVersioned() {
  if (versioned_) return;
  versioned_ = true;
  insert_epochs_.assign(num_rows_, 0);
  delete_epochs_.assign(num_rows_, 0);
}

void Table::AppendRowVersioned(const std::vector<Value>& values,
                               uint64_t epoch) {
  EnsureVersioned();
  AppendRow(values);
  insert_epochs_.push_back(epoch);
  delete_epochs_.push_back(0);
}

bool Table::MarkDeleted(Rid rid, uint64_t epoch) {
  EnsureVersioned();
  RQO_DCHECK(rid < num_rows_);
  if (delete_epochs_[rid] != 0) return false;
  delete_epochs_[rid] = epoch;
  return true;
}

void Table::ClearDelete(Rid rid) {
  RQO_DCHECK(versioned_ && rid < num_rows_);
  delete_epochs_[rid] = 0;
}

void Table::TruncateRows(uint64_t n) {
  RQO_DCHECK(versioned_);
  if (n >= num_rows_) return;
  for (auto& col : columns_) col->Truncate(n);
  insert_epochs_.resize(n);
  delete_epochs_.resize(n);
  num_rows_ = n;
}

uint64_t Table::VisibleRowCount(uint64_t snapshot) const {
  if (!versioned_) return num_rows_;
  uint64_t visible = 0;
  for (Rid r = 0; r < num_rows_; ++r) {
    if (VisibleAt(r, snapshot)) ++visible;
  }
  return visible;
}

void Table::RevertWritesAfter(uint64_t epoch) {
  if (!versioned_) return;
  // Appends are stamped with monotonically nondecreasing epochs, so the
  // rows to drop form a suffix.
  uint64_t keep = num_rows_;
  while (keep > 0 && insert_epochs_[keep - 1] > epoch) --keep;
  TruncateRows(keep);
  for (Rid r = 0; r < num_rows_; ++r) {
    if (delete_epochs_[r] > epoch) delete_epochs_[r] = 0;
  }
}

namespace {

inline uint64_t Fnv1aMix(uint64_t hash, const void* data, size_t len) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

uint64_t Table::VisibleChecksum(uint64_t snapshot) const {
  uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  for (Rid r = 0; r < num_rows_; ++r) {
    if (!VisibleAt(r, snapshot)) continue;
    for (const auto& col : columns_) {
      switch (col->type()) {
        case DataType::kInt64:
        case DataType::kDate: {
          const int64_t v = col->Int64At(r);
          hash = Fnv1aMix(hash, &v, sizeof(v));
          break;
        }
        case DataType::kDouble: {
          const double v = col->DoubleAt(r);
          hash = Fnv1aMix(hash, &v, sizeof(v));
          break;
        }
        case DataType::kString: {
          const std::string& v = col->StringAt(r);
          const uint64_t len = v.size();
          hash = Fnv1aMix(hash, &len, sizeof(len));
          hash = Fnv1aMix(hash, v.data(), v.size());
          break;
        }
      }
    }
  }
  return hash;
}

}  // namespace storage
}  // namespace robustqo
