#include "storage/table.h"

#include "util/macros.h"

namespace robustqo {
namespace storage {

size_t ColumnVector::size() const {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      return ints_.size();
    case DataType::kDouble:
      return doubles_.size();
    case DataType::kString:
      return strings_.size();
  }
  return 0;
}

void ColumnVector::AppendInt64(int64_t v) {
  RQO_DCHECK(IsIntegerPhysical(type_));
  ints_.push_back(v);
}

void ColumnVector::AppendDouble(double v) {
  RQO_DCHECK(type_ == DataType::kDouble);
  doubles_.push_back(v);
}

void ColumnVector::AppendString(std::string v) {
  RQO_DCHECK(type_ == DataType::kString);
  strings_.push_back(std::move(v));
}

void ColumnVector::Append(const Value& v) {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      AppendInt64(v.AsInt64());
      return;
    case DataType::kDouble:
      AppendDouble(v.AsDouble());
      return;
    case DataType::kString:
      AppendString(v.AsString());
      return;
  }
}

Value ColumnVector::ValueAt(Rid rid) const {
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(ints_[rid]);
    case DataType::kDate:
      return Value::Date(ints_[rid]);
    case DataType::kDouble:
      return Value::Double(doubles_[rid]);
    case DataType::kString:
      return Value::String(strings_[rid]);
  }
  return Value();
}

void ColumnVector::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kDate:
      ints_.reserve(n);
      return;
    case DataType::kDouble:
      doubles_.reserve(n);
      return;
    case DataType::kString:
      strings_.reserve(n);
      return;
  }
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (const auto& col : schema_.columns()) {
    columns_.push_back(std::make_unique<ColumnVector>(col.type));
  }
}

void Table::AppendRow(const std::vector<Value>& values) {
  RQO_CHECK_MSG(values.size() == schema_.num_columns(),
                "row arity mismatch");
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i]->Append(values[i]);
  }
  ++num_rows_;
}

const ColumnVector& Table::column(const std::string& name) const {
  auto idx = schema_.ColumnIndex(name);
  RQO_CHECK_MSG(idx.ok(), idx.status().ToString().c_str());
  return *columns_[idx.value()];
}

std::vector<Value> Table::RowAt(Rid rid) const {
  std::vector<Value> row;
  row.reserve(columns_.size());
  for (const auto& col : columns_) row.push_back(col->ValueAt(rid));
  return row;
}

void Table::FinalizeBulkLoad() {
  RQO_CHECK(!columns_.empty());
  const size_t n = columns_[0]->size();
  for (const auto& col : columns_) {
    RQO_CHECK_MSG(col->size() == n, "ragged bulk load");
  }
  num_rows_ = n;
}

void Table::Reserve(size_t n) {
  for (auto& col : columns_) col->Reserve(n);
}

}  // namespace storage
}  // namespace robustqo
