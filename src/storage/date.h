// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Proleptic-Gregorian date <-> day-number conversion (days since
// 1970-01-01). TPC-H dates span 1992-1998; the conversions here are exact
// for all representable dates.

#ifndef ROBUSTQO_STORAGE_DATE_H_
#define ROBUSTQO_STORAGE_DATE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace robustqo {
namespace storage {

/// Days since 1970-01-01 for the given calendar date (may be negative).
int64_t DateToDays(int year, int month, int day);

/// Inverse of DateToDays.
void DaysToDate(int64_t days, int* year, int* month, int* day);

/// Parses "YYYY-MM-DD". Returns InvalidArgument on malformed input.
Result<int64_t> ParseDate(const std::string& s);

/// Formats a day number as "YYYY-MM-DD".
std::string FormatDate(int64_t days);

}  // namespace storage
}  // namespace robustqo

#endif  // ROBUSTQO_STORAGE_DATE_H_
