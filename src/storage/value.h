// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Runtime value representation. Tables are stored column-wise with native
// arrays; Value is the boxed form used at expression-evaluation boundaries.

#ifndef ROBUSTQO_STORAGE_VALUE_H_
#define ROBUSTQO_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace robustqo {
namespace storage {

/// Column data types. kDate is stored as int64 days since 1970-01-01 and
/// compares like an integer.
enum class DataType {
  kInt64,
  kDouble,
  kString,
  kDate,
};

/// Human-readable type name ("INT64", "DOUBLE", ...).
const char* DataTypeName(DataType t);

/// True for types whose physical representation is int64 (kInt64, kDate).
inline bool IsIntegerPhysical(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDate;
}

/// A single boxed value. Values of kDate type hold the day number in the
/// int64 alternative.
class Value {
 public:
  Value() : type_(DataType::kInt64), payload_(int64_t{0}) {}

  static Value Int64(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Double(double v) { return Value(DataType::kDouble, v); }
  static Value String(std::string v) {
    return Value(DataType::kString, std::move(v));
  }
  static Value Date(int64_t days) { return Value(DataType::kDate, days); }

  DataType type() const { return type_; }

  /// Accessors; aborts on type mismatch (programmer error).
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric view: int64/date widened to double; aborts for strings.
  double NumericValue() const;

  /// Three-way comparison. Values must have comparable types: identical
  /// types, int64<->date, or any numeric pair (int64/date vs double).
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }

  /// Debug/display rendering; dates render as YYYY-MM-DD.
  std::string ToString() const;

 private:
  Value(DataType type, int64_t v) : type_(type), payload_(v) {}
  Value(DataType type, double v) : type_(type), payload_(v) {}
  Value(DataType type, std::string v) : type_(type), payload_(std::move(v)) {}

  DataType type_;
  std::variant<int64_t, double, std::string> payload_;
};

}  // namespace storage
}  // namespace robustqo

#endif  // ROBUSTQO_STORAGE_VALUE_H_
