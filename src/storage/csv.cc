#include "storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "storage/date.h"
#include "util/string_util.h"

namespace robustqo {
namespace storage {

namespace {

// Splits one CSV line into raw fields, honoring quotes.
Result<std::vector<std::string>> SplitLine(const std::string& line,
                                           char delimiter, size_t line_no) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument(
        StrPrintf("line %zu: unterminated quote", line_no));
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<Value> ParseField(const std::string& field, DataType type,
                         size_t line_no, const std::string& column) {
  auto error = [&](const char* what) {
    return Status::InvalidArgument(StrPrintf(
        "line %zu, column %s: %s ('%s')", line_no, column.c_str(), what,
        field.c_str()));
  };
  switch (type) {
    case DataType::kInt64: {
      char* end = nullptr;
      const long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') return error("bad integer");
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') return error("bad number");
      return Value::Double(v);
    }
    case DataType::kDate: {
      Result<int64_t> days = ParseDate(field);
      if (!days.ok()) return error("bad date (want YYYY-MM-DD)");
      return Value::Date(days.value());
    }
    case DataType::kString:
      return Value::String(field);
  }
  return error("unknown type");
}

std::string QuoteIfNeeded(const std::string& field, char delimiter) {
  if (field.find(delimiter) == std::string::npos &&
      field.find('"') == std::string::npos &&
      field.find('\n') == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Result<std::unique_ptr<Table>> ReadCsv(std::istream* input,
                                       const std::string& table_name,
                                       const Schema& schema,
                                       const CsvOptions& options) {
  auto table = std::make_unique<Table>(table_name, schema);
  std::string line;
  size_t line_no = 0;
  bool skipped_header = !options.has_header;
  while (std::getline(*input, line)) {
    ++line_no;
    if (options.fault != nullptr) {
      Status injected = options.fault->Check(fault::sites::kCsvRead);
      if (!injected.ok()) {
        return Status(injected.code(),
                      injected.message() +
                          StrPrintf(" reading %s line %zu",
                                    table_name.c_str(), line_no));
      }
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    if (line.empty()) continue;
    Result<std::vector<std::string>> fields =
        SplitLine(line, options.delimiter, line_no);
    if (!fields.ok()) return fields.status();
    if (fields.value().size() != schema.num_columns()) {
      return Status::InvalidArgument(StrPrintf(
          "line %zu: expected %zu fields, got %zu", line_no,
          schema.num_columns(), fields.value().size()));
    }
    std::vector<Value> row;
    row.reserve(schema.num_columns());
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      Result<Value> value = ParseField(fields.value()[c],
                                       schema.column(c).type, line_no,
                                       schema.column(c).name);
      if (!value.ok()) return value.status();
      row.push_back(std::move(value).value());
    }
    table->AppendRow(row);
  }
  // Distinguish clean EOF from a stream that died mid-read (I/O error):
  // only the latter sets badbit.
  if (input->bad()) {
    return Status::Unavailable(
        StrPrintf("I/O error reading %s after line %zu", table_name.c_str(),
                  line_no));
  }
  return table;
}

Result<std::unique_ptr<Table>> ReadCsvFile(const std::string& path,
                                           const std::string& table_name,
                                           const Schema& schema,
                                           const CsvOptions& options) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  return ReadCsv(&file, table_name, schema, options);
}

Status WriteCsv(const Table& table, std::ostream* output,
                const CsvOptions& options) {
  if (options.has_header) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      if (c > 0) *output << options.delimiter;
      *output << table.schema().column(c).name;
    }
    *output << "\n";
  }
  for (Rid rid = 0; rid < table.num_rows(); ++rid) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      if (c > 0) *output << options.delimiter;
      // Doubles get round-trip precision; everything else renders as it
      // displays (dates as YYYY-MM-DD, which ParseField reads back).
      const Value v = table.ValueAt(rid, c);
      const std::string field =
          v.type() == DataType::kDouble
              ? StrPrintf("%.17g", v.AsDouble())
              : v.ToString();
      *output << QuoteIfNeeded(field, options.delimiter);
    }
    *output << "\n";
  }
  if (!output->good()) return Status::Internal("write failed");
  return Status::OK();
}

}  // namespace storage
}  // namespace robustqo
