#include "storage/index.h"

#include <algorithm>
#include <numeric>

#include "util/macros.h"

namespace robustqo {
namespace storage {

SortedIndex::SortedIndex(const Table& table, std::string column_name)
    : table_name_(table.name()), column_name_(std::move(column_name)) {
  auto idx = table.schema().ColumnIndex(column_name_);
  RQO_CHECK_MSG(idx.ok(), idx.status().ToString().c_str());
  const ColumnVector& col = table.column(idx.value());
  RQO_CHECK_MSG(col.type() != DataType::kString,
                "string columns are not indexable");

  const uint64_t n = table.num_rows();
  std::vector<Rid> order(n);
  std::iota(order.begin(), order.end(), Rid{0});

  std::vector<double> raw(n);
  if (IsIntegerPhysical(col.type())) {
    for (uint64_t i = 0; i < n; ++i) {
      raw[i] = static_cast<double>(col.Int64At(i));
    }
  } else {
    for (uint64_t i = 0; i < n; ++i) raw[i] = col.DoubleAt(i);
  }
  std::sort(order.begin(), order.end(),
            [&raw](Rid a, Rid b) { return raw[a] < raw[b]; });

  keys_.resize(n);
  rids_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    keys_[i] = raw[order[i]];
    rids_[i] = order[i];
  }
}

size_t SortedIndex::LowerBound(double x) const {
  return static_cast<size_t>(
      std::lower_bound(keys_.begin(), keys_.end(), x) - keys_.begin());
}

size_t SortedIndex::UpperBound(double x) const {
  return static_cast<size_t>(
      std::upper_bound(keys_.begin(), keys_.end(), x) - keys_.begin());
}

std::vector<Rid> SortedIndex::RangeLookup(std::optional<double> lo,
                                          std::optional<double> hi,
                                          uint64_t* entries_scanned) const {
  const size_t begin = lo.has_value() ? LowerBound(*lo) : 0;
  const size_t end = hi.has_value() ? UpperBound(*hi) : keys_.size();
  if (entries_scanned != nullptr) {
    *entries_scanned = begin <= end ? (end - begin) : 0;
  }
  if (begin >= end) return {};
  return std::vector<Rid>(rids_.begin() + begin, rids_.begin() + end);
}

std::vector<Rid> SortedIndex::EqualLookup(double key,
                                          uint64_t* entries_scanned) const {
  return RangeLookup(key, key, entries_scanned);
}

uint64_t SortedIndex::CountRange(std::optional<double> lo,
                                 std::optional<double> hi) const {
  const size_t begin = lo.has_value() ? LowerBound(*lo) : 0;
  const size_t end = hi.has_value() ? UpperBound(*hi) : keys_.size();
  return begin <= end ? (end - begin) : 0;
}

}  // namespace storage
}  // namespace robustqo
