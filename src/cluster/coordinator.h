// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Cluster coordinator: routes eligible plans onto N node replicas as
// scatter-gather executions while keeping every observable byte identical
// to single-node execution.
//
// Determinism contract (see docs/CLUSTER.md):
//   * Row identity — each node's table fragment holds the rows the hash
//     partitioner assigned to it, in global-RID order; the gather phase
//     k-way-merges fragments by global RID, reproducing the exact row
//     visit order of a single-node sequential scan.
//   * Charge identity — the coordinator charges the cost meter exactly
//     what the single-node operator would (full-table sequential charge,
//     per-row governor ticks in merged order, output charge), so
//     simulated seconds, governor accounting and EXPLAIN ANALYZE spans
//     are byte-identical at any RQO_THREADS x RQO_NODES.
//   * Push-down identity — partial aggregation push-down keeps per-node
//     AggState partials and merges them in node-index order ("index-
//     ordered reduction"); SUM/AVG push-down is gated to integer-physical
//     input columns, where double accumulation is exact and therefore
//     order-independent. Ineligible aggregates gather rows and reduce
//     exactly like the single-node operator.
//   * Fault visibility — the scatter path probes net.partition and
//     net.lag on the request's injector and consults the per-node stale
//     flags set by replica.stale_stats; unarmed probes are invisible, a
//     fired probe degrades typed (strict) or falls back to local
//     execution (re-route), never to a wrong answer.
//
// Plans the coordinator cannot prove byte-identical (joins, index scans,
// group-bys, snapshot mismatches) run locally through the unchanged
// single-node path.

#ifndef ROBUSTQO_CLUSTER_COORDINATOR_H_
#define ROBUSTQO_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "cluster/partitioner.h"
#include "cluster/sim_network.h"
#include "core/database.h"
#include "exec/operator.h"
#include "learning/feedback_store.h"
#include "obs/metrics.h"

namespace robustqo {
namespace cluster {

/// Cluster knobs (ServerConfig::cluster; the shell's SET NODES).
struct ClusterConfig {
  /// Node replica count. 1 with enabled=false means no coordinator is
  /// constructed at all — the byte-identical pre-cluster serving path.
  size_t nodes = 1;
  /// Construct the coordinator even at nodes=1 (overhead benchmarking).
  bool enabled = false;
  /// Strict mode: a partitioned link or stale replica fails the request
  /// with a typed Status instead of re-routing to local execution.
  bool strict = false;
  /// Seeds the hash partitioner and the simulated network.
  uint64_t seed = 42;
  /// Simulated per-message network lag range (observational only).
  double lag_min_seconds = 0.0005;
  double lag_max_seconds = 0.0050;
};

/// RQO_NODES environment override (>=1; 1 when unset or malformed).
size_t NodesFromEnv();

/// Per-request cluster accounting, filled during the parallel EXECUTE
/// phase and folded into coordinator totals in admission order during
/// REDUCE (so totals, reports and metrics are thread-count independent).
struct RequestOutcome {
  bool routed = false;          ///< scatter-gather path taken
  bool pushdown = false;        ///< partial-aggregation push-down used
  bool fallback_local = false;  ///< degraded to local execution mid-route
  uint64_t rows_gathered = 0;
  uint64_t reroutes = 0;        ///< net.partition fires absorbed
  uint64_t stale_detected = 0;  ///< stale-replica re-routes
  uint64_t messages = 0;        ///< simulated network messages
  double sim_lag_seconds = 0.0;      ///< observational simulated lag
  double makespan_seconds = 0.0;     ///< scatter-gather critical path
  double injected_lag_seconds = 0.0; ///< net.lag stalls charged to meter
};

/// Scatter-gather coordinator over N node replicas.
class Coordinator {
 public:
  Coordinator(core::Database* db, const ClusterConfig& config,
              learn::FeedbackStore* feedback);

  const ClusterConfig& config() const { return config_; }
  size_t nodes() const { return nodes_.size(); }

  /// Wave prologue (sequential): rebuilds fragments when the data epoch
  /// moved and epoch-syncs every node's statistics replica. Probes the
  /// serving database's fault injector at replica.stale_stats once per
  /// out-of-date node.
  void BeginWave(uint64_t data_epoch);

  /// Executes `root` for one admitted request. Routes eligible plans
  /// through scatter-gather (byte-identical results and charges);
  /// everything else runs locally via root->Run(ctx). Thread-safe across
  /// concurrent requests of one wave: all cluster state read here is
  /// immutable between BeginWave calls, and per-request accounting goes
  /// to `outcome`.
  Result<storage::Table> Execute(const exec::PhysicalOperator* root,
                                 exec::ExecContext* ctx,
                                 uint64_t request_seed,
                                 RequestOutcome* outcome) const;

  /// Folds one request's outcome into the totals (REDUCE, admission
  /// order).
  void Accumulate(const RequestOutcome& outcome);

  /// Drift hook: forces the next BeginWave to re-ship every artifact
  /// (checksum skipping disabled once).
  void NoteDrift() { force_resync_ = true; }

  /// True when any node replica is pinned on an old statistics epoch.
  bool AnyNodeStale() const;

  /// Aligned text block (the shell's `.cluster`). Byte-identical at any
  /// RQO_THREADS for a given node count and workload.
  std::string ReportText() const;

  /// Publishes cluster.* gauges/counters (idempotent; no-op on null).
  void PublishMetrics(obs::MetricsRegistry* metrics) const;

  const HashPartitioner& partitioner() const { return *partitioner_; }
  const SimNetwork& network() const { return net_; }
  const Node& node(size_t i) const { return *nodes_[i]; }

 private:
  core::Database* db_;
  ClusterConfig config_;
  learn::FeedbackStore* feedback_;
  std::unique_ptr<HashPartitioner> partitioner_;
  SimNetwork net_;
  std::vector<std::unique_ptr<Node>> nodes_;
  bool force_resync_ = false;

  // Totals (mutated only in the sequential BeginWave/Accumulate phases).
  uint64_t requests_routed_ = 0;
  uint64_t requests_pushdown_ = 0;
  uint64_t requests_fallback_ = 0;
  uint64_t requests_local_ = 0;
  uint64_t rows_gathered_ = 0;
  uint64_t reroutes_ = 0;
  uint64_t stale_detected_ = 0;
  uint64_t messages_ = 0;
  double sim_lag_seconds_ = 0.0;
  double makespan_seconds_ = 0.0;
  double injected_lag_seconds_ = 0.0;
  uint64_t syncs_ = 0;
  uint64_t artifacts_shipped_ = 0;
  uint64_t artifacts_skipped_ = 0;
  uint64_t stale_syncs_ = 0;
  uint64_t feedback_shipped_ = 0;
};

}  // namespace cluster
}  // namespace robustqo

#endif  // ROBUSTQO_CLUSTER_COORDINATOR_H_
