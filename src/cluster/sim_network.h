// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Deterministic simulated network. Every message between the coordinator
// and a node carries a lag drawn from a stream seeded by
// (network seed, request seed, link id, message index) — a pure function,
// so the network holds no mutable state and concurrent requests in the
// wave's EXECUTE phase never race or perturb each other's draws. Delivery
// order is modeled with per-request logical clocks: a message's delivery
// time is its send time plus its lag, and a request's makespan is the
// latest delivery across its links (the scatter-gather critical path).
//
// The simulated lag is observational: it feeds the RequestOutcome and the
// `.cluster` report, never the request's cost meter — only a fired
// `net.lag` fault site charges wire time to the meter (through the armed
// spec's stall_seconds), exactly like an exec clock stall. That keeps
// single-node and multi-node cost accounting byte-identical when no
// network faults are armed.

#ifndef ROBUSTQO_CLUSTER_SIM_NETWORK_H_
#define ROBUSTQO_CLUSTER_SIM_NETWORK_H_

#include <cstddef>
#include <cstdint>

namespace robustqo {
namespace cluster {

/// Knobs of the simulated network.
struct SimNetworkConfig {
  uint64_t seed = 42;
  /// Per-message lag range (simulated seconds), inclusive-exclusive.
  double lag_min_seconds = 0.0005;
  double lag_max_seconds = 0.0050;
};

/// Accounting for one request's scatter-gather round trip.
struct NetDelivery {
  uint64_t messages = 0;        ///< messages exchanged (scatter + gather)
  double total_lag_seconds = 0.0;   ///< sum of per-message lags
  double makespan_seconds = 0.0;    ///< critical path (slowest node)
};

/// Stateless deterministic network simulator.
class SimNetwork {
 public:
  explicit SimNetwork(const SimNetworkConfig& config) : config_(config) {}

  const SimNetworkConfig& config() const { return config_; }

  /// Lag of message `msg_index` on the link to `node` for the request
  /// with `request_seed`. Pure: identical inputs give identical lag.
  double LagSeconds(uint64_t request_seed, size_t node,
                    uint64_t msg_index) const;

  /// Models one scatter-gather exchange with `nodes` nodes (one request
  /// message and one response message per node) using per-request logical
  /// clocks.
  NetDelivery ScatterGather(uint64_t request_seed, size_t nodes) const;

 private:
  SimNetworkConfig config_;
};

}  // namespace cluster
}  // namespace robustqo

#endif  // ROBUSTQO_CLUSTER_SIM_NETWORK_H_
