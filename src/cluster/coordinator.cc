#include "cluster/coordinator.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "cluster/stats_replication.h"
#include "exec/agg_ops.h"
#include "exec/scan_ops.h"
#include "storage/value.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace robustqo {
namespace cluster {

using storage::Rid;
using storage::Table;
using storage::Value;

size_t NodesFromEnv() {
  const char* env = std::getenv("RQO_NODES");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || v < 1) return 1;
  return static_cast<size_t>(v);
}

namespace {

std::vector<std::string> AllColumnNames(const storage::Schema& schema) {
  std::vector<std::string> names;
  names.reserve(schema.num_columns());
  for (const auto& col : schema.columns()) names.push_back(col.name);
  return names;
}

std::vector<std::string> EffectiveColumns(
    const storage::Schema& schema, const std::vector<std::string>& requested) {
  return requested.empty() ? AllColumnNames(schema) : requested;
}

// Mirror of the single-node aggregate state (exec/agg_ops.cc). Partial
// merge is exact — and therefore order-independent — for COUNT/MIN/MAX
// always, and for SUM/AVG when every input value is integer-valued (the
// push-down gate): integer sums accumulate exactly in doubles.
struct AggState {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint64_t count = 0;

  void Update(double v) {
    sum += v;
    min = std::fmin(min, v);
    max = std::fmax(max, v);
    ++count;
  }

  void Merge(const AggState& other) {
    sum += other.sum;
    min = std::fmin(min, other.min);
    max = std::fmax(max, other.max);
    count += other.count;
  }

  Value Finalize(exec::AggKind kind) const {
    switch (kind) {
      case exec::AggKind::kCount:
        return Value::Int64(static_cast<int64_t>(count));
      case exec::AggKind::kSum:
        return Value::Double(sum);
      case exec::AggKind::kMin:
        return Value::Double(count == 0 ? 0.0 : min);
      case exec::AggKind::kMax:
        return Value::Double(count == 0 ? 0.0 : max);
      case exec::AggKind::kAvg:
        return Value::Double(count == 0 ? 0.0
                                        : sum / static_cast<double>(count));
    }
    return Value();
  }
};

Result<storage::Schema> AggOutputSchema(const std::vector<exec::AggSpec>& aggs) {
  std::vector<storage::ColumnDef> defs;
  for (const exec::AggSpec& agg : aggs) {
    const storage::DataType type = agg.kind == exec::AggKind::kCount
                                       ? storage::DataType::kInt64
                                       : storage::DataType::kDouble;
    defs.push_back({agg.output_name, type});
  }
  return storage::Schema(std::move(defs));
}

Result<std::vector<size_t>> AggInputColumns(
    const storage::Schema& input, const std::vector<exec::AggSpec>& aggs) {
  std::vector<size_t> cols;
  cols.reserve(aggs.size());
  for (const exec::AggSpec& agg : aggs) {
    if (agg.kind == exec::AggKind::kCount && agg.column.empty()) {
      cols.push_back(SIZE_MAX);
      continue;
    }
    auto idx = input.ColumnIndex(agg.column);
    if (!idx.ok()) return idx.status();
    cols.push_back(idx.value());
  }
  return cols;
}

void UpdateStates(const Table& input, Rid rid,
                  const std::vector<size_t>& agg_cols,
                  std::vector<AggState>* states) {
  for (size_t a = 0; a < agg_cols.size(); ++a) {
    if (agg_cols[a] == SIZE_MAX) {
      (*states)[a].Update(0.0);
    } else {
      (*states)[a].Update(input.ValueAt(rid, agg_cols[a]).NumericValue());
    }
  }
}

// Per-node partial aggregates handed from the shadow scan to the shadow
// aggregate within one request's shadow tree.
struct PushdownPartials {
  bool enabled = false;  ///< gate passed; the scan fills per-node states
  bool filled = false;   ///< scatter-gather ran and the states are valid
  const std::vector<exec::AggSpec>* specs = nullptr;
  std::vector<size_t> agg_cols;  ///< resolved against the scan output
  std::vector<std::vector<AggState>> per_node;  ///< [node][agg]
};

/// Shadow of SeqScanOp: scatters the scan over node fragments and gathers
/// rows by k-way global-RID merge. Delegates Describe() to the original
/// operator so trace spans (EXPLAIN ANALYZE) are indistinguishable.
class ClusterScanOp final : public exec::PhysicalOperator {
 public:
  ClusterScanOp(const exec::SeqScanOp* original, const Coordinator* coord,
                uint64_t request_seed, RequestOutcome* outcome,
                PushdownPartials* pushdown)
      : original_(original),
        coord_(coord),
        request_seed_(request_seed),
        outcome_(outcome),
        pushdown_(pushdown) {}

  std::string Describe() const override { return original_->Describe(); }

  Result<Table> Execute(exec::ExecContext* ctx) const override {
    const size_t n_nodes = coord_->nodes();
    const bool strict = coord_->config().strict;

    // Link health: one net.partition probe per node. A fire kills the
    // scatter — typed in strict mode, re-routed to local execution
    // otherwise. Unarmed probes are invisible (no counters, no streams).
    for (size_t node = 0; node < n_nodes; ++node) {
      if (ctx->fault == nullptr) break;
      Status s = ctx->fault->Check(fault::sites::kNetPartition);
      if (!s.ok()) {
        if (strict) return s;
        ++outcome_->reroutes;
        outcome_->fallback_local = true;
        return original_->Execute(ctx);
      }
    }
    // Wire stalls: a fired net.lag charges its stall_seconds to the cost
    // meter, exactly like an exec clock stall attributed to the network.
    for (size_t node = 0; node < n_nodes; ++node) {
      if (ctx->fault == nullptr) break;
      const double stall = ctx->fault->CheckStall(fault::sites::kNetLag);
      if (stall > 0.0) {
        ctx->meter.ChargePenaltySeconds(stall);
        outcome_->injected_lag_seconds += stall;
      }
    }
    // Replica freshness: a node pinned on an old statistics epoch by
    // replica.stale_stats cannot serve this wave.
    for (size_t node = 0; node < n_nodes; ++node) {
      if (!coord_->node(node).stale()) continue;
      ++outcome_->stale_detected;
      if (strict) {
        return Status(StatusCode::kUnavailable,
                      StrPrintf("replica statistics stale on node %zu",
                                node));
      }
      outcome_->fallback_local = true;
      return original_->Execute(ctx);
    }

    // Prologue identical to SeqScanOp::Execute — schema, projection and
    // the full-table sequential charge come from the shared catalog
    // table, so the meter never sees the partitioning.
    RQO_ASSIGN_OR_RETURN(const Table* source,
                         exec::LookupTable(*ctx, original_->table()));
    const std::vector<std::string> cols =
        EffectiveColumns(source->schema(), original_->output_columns());
    RQO_ASSIGN_OR_RETURN(storage::Schema schema,
                         exec::ProjectSchema(source->schema(), cols));
    Table out(original_->table() + "$scan", std::move(schema));
    RQO_ASSIGN_OR_RETURN(const std::vector<size_t> col_idx,
                         exec::ResolveColumns(source->schema(), cols));
    const uint64_t row_bytes = exec::ApproximateRowBytes(out.schema());

    const uint64_t n = source->num_rows();
    ctx->meter.ChargeSeqTuples(ctx->cost_model, n);

    if (pushdown_ != nullptr && pushdown_->enabled) {
      auto agg_cols = AggInputColumns(out.schema(), *pushdown_->specs);
      // Gate already validated the columns; a failure here only disables
      // push-down, never the gather.
      if (agg_cols.ok()) {
        pushdown_->agg_cols = std::move(agg_cols).value();
      } else {
        pushdown_->enabled = false;
      }
    }

    // Gather: k-way merge of node fragments by global RID reproduces the
    // single-node row visit order exactly.
    const expr::Expr* predicate = original_->predicate();
    std::vector<const TableFragment*> frags(n_nodes);
    std::vector<size_t> cursor(n_nodes, 0);
    for (size_t node = 0; node < n_nodes; ++node) {
      frags[node] =
          coord_->partitioner().FragmentOf(node, original_->table());
      if (frags[node] == nullptr) {
        // Partition out of date for this table — should have been caught
        // by the epoch gate; degrade to local execution.
        outcome_->fallback_local = true;
        return original_->Execute(ctx);
      }
    }
    if (pushdown_ != nullptr && pushdown_->enabled) {
      pushdown_->per_node.assign(
          n_nodes, std::vector<AggState>(pushdown_->agg_cols.size()));
    }
    while (true) {
      size_t best = n_nodes;
      Rid best_rid = 0;
      for (size_t node = 0; node < n_nodes; ++node) {
        if (cursor[node] >= frags[node]->global_rids.size()) continue;
        const Rid rid = frags[node]->global_rids[cursor[node]];
        if (best == n_nodes || rid < best_rid) {
          best = node;
          best_rid = rid;
        }
      }
      if (best == n_nodes) break;
      const Table& frag = *frags[best]->rows;
      const Rid local = cursor[best]++;
      if (predicate == nullptr || predicate->EvaluateBool(frag, local)) {
        exec::AppendProjectedRow(frag, local, col_idx, &out);
        RQO_RETURN_NOT_OK(ctx->Tick(1, row_bytes));
        if (pushdown_ != nullptr && pushdown_->enabled) {
          UpdateStates(out, out.num_rows() - 1, pushdown_->agg_cols,
                       &pushdown_->per_node[best]);
        }
      }
    }
    ctx->meter.ChargeOutputTuples(ctx->cost_model, out.num_rows());

    if (pushdown_ != nullptr && pushdown_->enabled) pushdown_->filled = true;
    outcome_->routed = true;
    outcome_->rows_gathered += out.num_rows();
    const NetDelivery d = coord_->network().ScatterGather(request_seed_,
                                                          n_nodes);
    outcome_->messages += d.messages;
    outcome_->sim_lag_seconds += d.total_lag_seconds;
    outcome_->makespan_seconds =
        std::max(outcome_->makespan_seconds, d.makespan_seconds);
    return out;
  }

 private:
  const exec::SeqScanOp* original_;
  const Coordinator* coord_;
  uint64_t request_seed_;
  RequestOutcome* outcome_;
  PushdownPartials* pushdown_;
};

/// Shadow of ScalarAggregateOp: mirrors its charges byte-for-byte and
/// reduces per-node partials in node-index order when push-down ran.
class ClusterAggOp final : public exec::PhysicalOperator {
 public:
  ClusterAggOp(const exec::ScalarAggregateOp* original,
               const ClusterScanOp* child, RequestOutcome* outcome,
               PushdownPartials* pushdown)
      : original_(original),
        child_(child),
        outcome_(outcome),
        pushdown_(pushdown) {}

  std::string Describe() const override { return original_->Describe(); }

  Result<Table> Execute(exec::ExecContext* ctx) const override {
    RQO_ASSIGN_OR_RETURN(const Table input, child_->Run(ctx));
    ctx->aggregate_input_rows = input.num_rows();
    ctx->meter.ChargeCpuTuples(ctx->cost_model, input.num_rows());
    const std::vector<exec::AggSpec>& aggs = original_->aggs();
    RQO_ASSIGN_OR_RETURN(const std::vector<size_t> agg_cols,
                         AggInputColumns(input.schema(), aggs));
    std::vector<AggState> states(aggs.size());
    if (pushdown_->filled) {
      // Index-ordered reduction: merge node partials 0..N-1. Exact (and
      // order-independent) by the push-down gate.
      for (const std::vector<AggState>& node_states : pushdown_->per_node) {
        for (size_t a = 0; a < states.size(); ++a) {
          states[a].Merge(node_states[a]);
        }
      }
      outcome_->pushdown = true;
    } else {
      for (Rid rid = 0; rid < input.num_rows(); ++rid) {
        UpdateStates(input, rid, agg_cols, &states);
      }
    }
    RQO_RETURN_NOT_OK(ctx->CheckPoint());
    RQO_ASSIGN_OR_RETURN(storage::Schema schema,
                         AggOutputSchema(aggs));
    Table out("aggregate", std::move(schema));
    std::vector<Value> row;
    row.reserve(aggs.size());
    for (size_t a = 0; a < aggs.size(); ++a) {
      row.push_back(states[a].Finalize(aggs[a].kind));
    }
    out.AppendRow(row);
    RQO_RETURN_NOT_OK(ctx->Tick(1, exec::ApproximateRowBytes(out.schema())));
    ctx->meter.ChargeOutputTuples(ctx->cost_model, 1);
    return out;
  }

 private:
  const exec::ScalarAggregateOp* original_;
  const ClusterScanOp* child_;
  RequestOutcome* outcome_;
  PushdownPartials* pushdown_;
};

}  // namespace

Coordinator::Coordinator(core::Database* db, const ClusterConfig& config,
                         learn::FeedbackStore* feedback)
    : db_(db),
      config_(config),
      feedback_(feedback),
      net_(SimNetworkConfig{config.seed, config.lag_min_seconds,
                            config.lag_max_seconds}) {
  const size_t n = config_.nodes == 0 ? 1 : config_.nodes;
  config_.nodes = n;
  partitioner_ = std::make_unique<HashPartitioner>(n, config_.seed);
  nodes_.reserve(n);
  for (size_t i = 0; i < n; ++i) nodes_.push_back(std::make_unique<Node>(i));
}

void Coordinator::BeginWave(uint64_t data_epoch) {
  partitioner_->Rebuild(*db_->catalog(), data_epoch);
  for (auto& node : nodes_) {
    const SyncResult r =
        SyncNodeStatistics(node.get(), *db_->statistics(), feedback_,
                           db_->fault_injector(), force_resync_);
    if (r.attempted && !r.stale) ++syncs_;
    if (r.stale) ++stale_syncs_;
    artifacts_shipped_ += r.shipped;
    artifacts_skipped_ += r.skipped;
    feedback_shipped_ += r.feedback_shipped;
  }
  force_resync_ = false;
}

bool Coordinator::AnyNodeStale() const {
  for (const auto& node : nodes_) {
    if (node->stale()) return true;
  }
  return false;
}

Result<Table> Coordinator::Execute(const exec::PhysicalOperator* root,
                                   exec::ExecContext* ctx,
                                   uint64_t request_seed,
                                   RequestOutcome* outcome) const {
  const auto* agg = dynamic_cast<const exec::ScalarAggregateOp*>(root);
  const auto* scan =
      agg != nullptr
          ? dynamic_cast<const exec::SeqScanOp*>(agg->child())
          : dynamic_cast<const exec::SeqScanOp*>(root);

  // Snapshot gate: the fragments must be an exact snapshot of what this
  // request would see. The wave prologue rebuilds fragments at the wave's
  // data epoch, so this only misses for explicitly pinned old snapshots.
  const uint64_t effective_snapshot =
      ctx->snapshot_epoch == storage::kLatestSnapshot
          ? db_->catalog()->data_epoch()
          : ctx->snapshot_epoch;
  const bool eligible = scan != nullptr &&
                        partitioner_->build_epoch() == effective_snapshot;
  if (!eligible) {
    return root->Run(ctx);
  }

  PushdownPartials pushdown;
  if (agg != nullptr) {
    pushdown.specs = &agg->aggs();
    pushdown.enabled = true;
    // SUM/AVG push-down is only exact over integer-physical inputs.
    const storage::Table* source = db_->catalog()->GetTable(scan->table());
    for (const exec::AggSpec& spec : agg->aggs()) {
      if (spec.kind != exec::AggKind::kSum &&
          spec.kind != exec::AggKind::kAvg) {
        continue;
      }
      auto idx = source == nullptr
                     ? Result<size_t>(Status(StatusCode::kNotFound, "table"))
                     : source->schema().ColumnIndex(spec.column);
      if (!idx.ok() ||
          !storage::IsIntegerPhysical(
              source->schema().column(idx.value()).type)) {
        pushdown.enabled = false;
        break;
      }
    }
  }

  ClusterScanOp shadow_scan(scan, this, request_seed, outcome,
                            agg != nullptr ? &pushdown : nullptr);
  if (agg == nullptr) {
    return shadow_scan.Run(ctx);
  }
  ClusterAggOp shadow_agg(agg, &shadow_scan, outcome, &pushdown);
  return shadow_agg.Run(ctx);
}

void Coordinator::Accumulate(const RequestOutcome& outcome) {
  if (outcome.routed) {
    ++requests_routed_;
    for (auto& node : nodes_) ++node->requests_served;
  } else {
    ++requests_local_;
  }
  if (outcome.pushdown) ++requests_pushdown_;
  if (outcome.fallback_local) ++requests_fallback_;
  rows_gathered_ += outcome.rows_gathered;
  reroutes_ += outcome.reroutes;
  stale_detected_ += outcome.stale_detected;
  messages_ += outcome.messages;
  sim_lag_seconds_ += outcome.sim_lag_seconds;
  makespan_seconds_ += outcome.makespan_seconds;
  injected_lag_seconds_ += outcome.injected_lag_seconds;
}

std::string Coordinator::ReportText() const {
  std::string out = StrPrintf(
      "cluster: %zu nodes, strict=%s, seed=%llu\n", nodes_.size(),
      config_.strict ? "on" : "off",
      static_cast<unsigned long long>(config_.seed));
  out += StrPrintf(
      "partition: epoch=%lld rows=%llu rebuilds=%llu\n",
      partitioner_->build_epoch() == UINT64_MAX
          ? -1ll
          : static_cast<long long>(partitioner_->build_epoch()),
      static_cast<unsigned long long>(partitioner_->total_fragment_rows()),
      static_cast<unsigned long long>(partitioner_->rebuilds()));
  out += StrPrintf(
      "requests: routed=%llu pushdown=%llu fallback_local=%llu local=%llu "
      "rows_gathered=%llu\n",
      static_cast<unsigned long long>(requests_routed_),
      static_cast<unsigned long long>(requests_pushdown_),
      static_cast<unsigned long long>(requests_fallback_),
      static_cast<unsigned long long>(requests_local_),
      static_cast<unsigned long long>(rows_gathered_));
  out += StrPrintf(
      "network: messages=%llu reroutes=%llu sim_lag=%.6fs makespan=%.6fs "
      "injected_lag=%.6fs\n",
      static_cast<unsigned long long>(messages_),
      static_cast<unsigned long long>(reroutes_), sim_lag_seconds_,
      makespan_seconds_, injected_lag_seconds_);
  out += StrPrintf(
      "stats sync: syncs=%llu shipped=%llu skipped=%llu stale=%llu "
      "stale_detected=%llu feedback=%llu\n",
      static_cast<unsigned long long>(syncs_),
      static_cast<unsigned long long>(artifacts_shipped_),
      static_cast<unsigned long long>(artifacts_skipped_),
      static_cast<unsigned long long>(stale_syncs_),
      static_cast<unsigned long long>(stale_detected_),
      static_cast<unsigned long long>(feedback_shipped_));
  for (const auto& node : nodes_) {
    out += StrPrintf(
        "node %zu: synced_epoch=%lld stale=%s artifacts=%zu feedback=%zu "
        "syncs=%llu shipped=%llu skipped=%llu stale_events=%llu "
        "served=%llu\n",
        node->id(),
        node->synced_epoch() == UINT64_MAX
            ? -1ll
            : static_cast<long long>(node->synced_epoch()),
        node->stale() ? "yes" : "no", node->artifacts(),
        node->feedback_entries(),
        static_cast<unsigned long long>(node->syncs),
        static_cast<unsigned long long>(node->shipped),
        static_cast<unsigned long long>(node->skipped),
        static_cast<unsigned long long>(node->stale_events),
        static_cast<unsigned long long>(node->requests_served));
  }
  return out;
}

void Coordinator::PublishMetrics(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  metrics->GetGauge("cluster.nodes")
      ->Set(static_cast<double>(nodes_.size()));
  metrics->GetGauge("cluster.partition.rows")
      ->Set(static_cast<double>(partitioner_->total_fragment_rows()));
  metrics->GetGauge("cluster.partition.epoch")
      ->Set(partitioner_->build_epoch() == UINT64_MAX
                ? -1.0
                : static_cast<double>(partitioner_->build_epoch()));
  // Counters publish idempotently: set-to-total via delta increments.
  const auto sync = [metrics](const char* name, uint64_t total) {
    obs::Counter* counter = metrics->GetCounter(name);
    if (total > counter->value()) counter->Increment(total - counter->value());
  };
  sync("cluster.requests.routed", requests_routed_);
  sync("cluster.requests.pushdown", requests_pushdown_);
  sync("cluster.requests.fallback_local", requests_fallback_);
  sync("cluster.requests.local", requests_local_);
  sync("cluster.rows.gathered", rows_gathered_);
  sync("cluster.net.messages", messages_);
  sync("cluster.net.reroutes", reroutes_);
  sync("cluster.stats.syncs", syncs_);
  sync("cluster.stats.artifacts_shipped", artifacts_shipped_);
  sync("cluster.stats.artifacts_skipped", artifacts_skipped_);
  sync("cluster.stats.stale_detected", stale_detected_);
  sync("cluster.partition.rebuilds", partitioner_->rebuilds());
}

}  // namespace cluster
}  // namespace robustqo
