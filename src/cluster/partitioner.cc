#include "cluster/partitioner.h"

#include <utility>

namespace robustqo {
namespace cluster {
namespace {

// Explicit FNV-1a (not std::hash) so the assignment is stable across
// standard-library implementations.
uint64_t Fnv1a(const std::string& s, uint64_t h = 1469598103934665603ull) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// splitmix64 finalizer: spreads the RID bits so consecutive RIDs land on
// different nodes.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

HashPartitioner::HashPartitioner(size_t nodes, uint64_t seed)
    : nodes_(nodes == 0 ? 1 : nodes), seed_(seed) {
  fragments_.resize(nodes_);
}

size_t HashPartitioner::NodeOf(const std::string& table,
                               storage::Rid rid) const {
  if (nodes_ == 1) return 0;
  return static_cast<size_t>(Mix(Fnv1a(table) ^ seed_ ^ rid) % nodes_);
}

bool HashPartitioner::Rebuild(const storage::Catalog& catalog,
                              uint64_t data_epoch) {
  if (build_epoch_ == data_epoch) return false;
  for (auto& per_node : fragments_) per_node.clear();
  total_fragment_rows_ = 0;
  for (const std::string& name : catalog.TableNames()) {
    const storage::Table* table = catalog.GetTable(name);
    std::vector<TableFragment*> frags(nodes_);
    for (size_t node = 0; node < nodes_; ++node) {
      TableFragment& f = fragments_[node][name];
      f.rows = std::make_unique<storage::Table>(
          name + "$frag" + std::to_string(node), table->schema());
      f.global_rids.clear();
      frags[node] = &f;
    }
    const uint64_t n = table->num_rows();
    for (storage::Rid rid = 0; rid < n; ++rid) {
      if (!table->VisibleAt(rid, data_epoch)) continue;
      TableFragment* f = frags[NodeOf(name, rid)];
      f->rows->AppendRow(table->RowAt(rid));
      f->global_rids.push_back(rid);
      ++total_fragment_rows_;
    }
  }
  build_epoch_ = data_epoch;
  ++rebuilds_;
  return true;
}

const TableFragment* HashPartitioner::FragmentOf(
    size_t node, const std::string& table) const {
  if (node >= fragments_.size()) return nullptr;
  auto it = fragments_[node].find(table);
  return it == fragments_[node].end() ? nullptr : &it->second;
}

}  // namespace cluster
}  // namespace robustqo
