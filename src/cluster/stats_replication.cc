#include "cluster/stats_replication.h"

#include <memory>
#include <string>
#include <utility>

namespace robustqo {
namespace cluster {
namespace {

std::unique_ptr<storage::Table> CloneTable(const storage::Table& source) {
  auto copy =
      std::make_unique<storage::Table>(source.name(), source.schema());
  const uint64_t n = source.num_rows();
  copy->Reserve(n);
  for (storage::Rid rid = 0; rid < n; ++rid) {
    copy->AppendRow(source.RowAt(rid));
  }
  return copy;
}

}  // namespace

SyncResult SyncNodeStatistics(Node* node,
                              const stats::StatisticsCatalog& catalog,
                              const learn::FeedbackStore* feedback,
                              fault::FaultInjector* injector, bool force) {
  SyncResult result;
  const uint64_t target_epoch = catalog.epoch();
  if (!force && node->synced_epoch() == target_epoch) {
    node->set_stale(false);
    return result;
  }
  result.attempted = true;

  // The replication message to this node can be lost: a fired probe pins
  // the replica on its previous epoch until a later sync gets through.
  if (injector != nullptr &&
      !injector->Check(fault::sites::kReplicaStaleStats).ok()) {
    node->set_stale(true);
    ++node->stale_events;
    result.stale = true;
    return result;
  }

  for (const stats::TableSample* sample : catalog.AllSamples()) {
    const std::string key = "sample/" + sample->source_table();
    const uint64_t checksum = sample->rows().VisibleChecksum();
    auto it = node->checksums()->find(key);
    if (!force && it != node->checksums()->end() && it->second == checksum) {
      ++result.skipped;
      continue;
    }
    (*node->samples())[key] =
        std::make_unique<stats::TableSample>(stats::TableSample::FromSavedRows(
            sample->source_table(), sample->source_row_count(),
            CloneTable(sample->rows())));
    (*node->checksums())[key] = checksum;
    ++result.shipped;
  }

  for (const stats::JoinSynopsis* synopsis : catalog.AllSynopses()) {
    const std::string key = "synopsis/" + synopsis->root_table();
    const uint64_t checksum = synopsis->rows().VisibleChecksum();
    auto it = node->checksums()->find(key);
    if (!force && it != node->checksums()->end() && it->second == checksum) {
      ++result.skipped;
      continue;
    }
    (*node->synopses())[key] = std::make_unique<stats::JoinSynopsis>(
        stats::JoinSynopsis::FromSavedRows(
            synopsis->root_table(), synopsis->root_row_count(),
            synopsis->covered_tables(), CloneTable(synopsis->rows())));
    (*node->checksums())[key] = checksum;
    ++result.shipped;
  }

  if (feedback != nullptr) {
    for (const auto& [fingerprint, evidence] : feedback->AllEvidence()) {
      auto it = node->feedback()->find(fingerprint);
      if (it != node->feedback()->end() &&
          it->second.k_eq == evidence.k_eq &&
          it->second.n_eq == evidence.n_eq &&
          it->second.observations == evidence.observations) {
        continue;
      }
      (*node->feedback())[fingerprint] = evidence;
      ++result.feedback_shipped;
    }
  }

  node->set_synced_epoch(target_epoch);
  node->set_stale(false);
  ++node->syncs;
  node->shipped += result.shipped;
  node->skipped += result.skipped;
  return result;
}

}  // namespace cluster
}  // namespace robustqo
