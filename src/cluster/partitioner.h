// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Hash partitioner: deterministically assigns every row of every catalog
// table to one of N nodes and materializes per-node table fragments. The
// assignment is a pure function of (partitioner seed, table name, global
// RID) — independent of node enumeration order, thread count, and of which
// wave triggered the fragment build — so a cluster rebuilt from the same
// catalog state is byte-identical.
//
// Fragments are snapshots: each one copies the rows visible at the build's
// data epoch, together with a parallel vector of their global RIDs (which
// is strictly increasing, since rows are visited in RID order). The
// coordinator's gather phase k-way-merges fragments by global RID, which
// reproduces the exact row-visit order of a single-node sequential scan —
// the heart of the byte-identical determinism contract in docs/CLUSTER.md.

#ifndef ROBUSTQO_CLUSTER_PARTITIONER_H_
#define ROBUSTQO_CLUSTER_PARTITIONER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "storage/table.h"

namespace robustqo {
namespace cluster {

/// One node's slice of one table: the visible rows assigned to the node
/// (copied, in global-RID order) plus their global RIDs.
struct TableFragment {
  std::unique_ptr<storage::Table> rows;
  std::vector<storage::Rid> global_rids;  ///< strictly increasing
};

/// Splits catalog tables across N nodes by seeded row hash.
class HashPartitioner {
 public:
  HashPartitioner(size_t nodes, uint64_t seed);

  size_t nodes() const { return nodes_; }
  uint64_t seed() const { return seed_; }

  /// The node row (table, rid) lives on. Pure and stateless: FNV-1a over
  /// the table name mixed with the RID and the partitioner seed.
  size_t NodeOf(const std::string& table, storage::Rid rid) const;

  /// Rebuilds every table's fragments from `catalog`, snapshotting the
  /// rows visible at `data_epoch`. Idempotent per epoch: a no-op when the
  /// fragments were already built at `data_epoch` (returns false).
  bool Rebuild(const storage::Catalog& catalog, uint64_t data_epoch);

  /// Fragment of `table` on `node`; nullptr before the first Rebuild or
  /// for unknown tables. Immutable between Rebuild calls, so concurrent
  /// readers during a wave's EXECUTE phase are safe.
  const TableFragment* FragmentOf(size_t node, const std::string& table) const;

  /// Data epoch of the last Rebuild (UINT64_MAX = never built).
  uint64_t build_epoch() const { return build_epoch_; }

  /// Total rows across all fragments of all tables (the `.cluster`
  /// report's partition size), and how many Rebuild calls did real work.
  uint64_t total_fragment_rows() const { return total_fragment_rows_; }
  uint64_t rebuilds() const { return rebuilds_; }

 private:
  size_t nodes_;
  uint64_t seed_;
  uint64_t build_epoch_ = UINT64_MAX;
  uint64_t total_fragment_rows_ = 0;
  uint64_t rebuilds_ = 0;
  /// fragments_[node][table]
  std::vector<std::map<std::string, TableFragment>> fragments_;
};

}  // namespace cluster
}  // namespace robustqo

#endif  // ROBUSTQO_CLUSTER_PARTITIONER_H_
