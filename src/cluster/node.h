// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// One cluster node replica: the node's identity, its replicated
// statistics artifacts (samples / synopses cloned from the coordinator's
// statistics catalog, plus learned-feedback evidence), and per-node sync
// accounting. The node's table fragments live in the HashPartitioner,
// indexed by node id.
//
// A node is "fresh" when its synced statistics epoch matches the
// coordinator's; the replica.stale_stats fault site can pin a node on an
// old epoch during a sync, which the coordinator's per-request freshness
// check then detects (degrade typed in strict mode, or re-route the
// request to local execution) until a later wave's sync heals it.

#ifndef ROBUSTQO_CLUSTER_NODE_H_
#define ROBUSTQO_CLUSTER_NODE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "learning/feedback_store.h"
#include "statistics/join_synopsis.h"
#include "statistics/sample.h"

namespace robustqo {
namespace cluster {

/// One node's replicated statistics state.
class Node {
 public:
  explicit Node(size_t id) : id_(id) {}

  size_t id() const { return id_; }

  /// Statistics epoch this node last fully synced to (UINT64_MAX =
  /// never synced).
  uint64_t synced_epoch() const { return synced_epoch_; }
  void set_synced_epoch(uint64_t epoch) { synced_epoch_ = epoch; }

  /// True while the node is pinned on an old epoch by a fired
  /// replica.stale_stats probe.
  bool stale() const { return stale_; }
  void set_stale(bool stale) { stale_ = stale; }

  /// Checksum-addressed artifact store: key ("sample/<table>",
  /// "synopsis/<root>") -> content checksum of the replicated copy. The
  /// replicator skips shipping artifacts whose checksum already matches.
  std::map<std::string, uint64_t>* checksums() { return &checksums_; }

  /// Replicated clones, keyed like `checksums()`.
  std::map<std::string, std::unique_ptr<stats::TableSample>>* samples() {
    return &samples_;
  }
  std::map<std::string, std::unique_ptr<stats::JoinSynopsis>>* synopses() {
    return &synopses_;
  }

  /// Replicated learned-feedback evidence (fingerprint -> pseudo-counts).
  std::map<uint64_t, learn::LearnedEvidence>* feedback() {
    return &feedback_;
  }
  size_t feedback_entries() const { return feedback_.size(); }
  size_t artifacts() const { return checksums_.size(); }

  // Lifetime sync accounting (the `.cluster` report's per-node lane).
  uint64_t syncs = 0;            ///< completed epoch syncs
  uint64_t shipped = 0;          ///< artifacts actually copied
  uint64_t skipped = 0;          ///< artifacts skipped (checksum match)
  uint64_t stale_events = 0;     ///< replica.stale_stats fires absorbed
  uint64_t requests_served = 0;  ///< scatter fragments this node scanned

 private:
  size_t id_;
  uint64_t synced_epoch_ = UINT64_MAX;
  bool stale_ = false;
  std::map<std::string, uint64_t> checksums_;
  std::map<std::string, std::unique_ptr<stats::TableSample>> samples_;
  std::map<std::string, std::unique_ptr<stats::JoinSynopsis>> synopses_;
  std::map<uint64_t, learn::LearnedEvidence> feedback_;
};

}  // namespace cluster
}  // namespace robustqo

#endif  // ROBUSTQO_CLUSTER_NODE_H_
