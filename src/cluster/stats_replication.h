// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Epoch-synced statistics replication. At every wave boundary the
// coordinator syncs each node replica to the statistics catalog's current
// epoch: samples and join synopses are shipped checksum-addressed (an
// artifact whose visible-content checksum already matches the node's copy
// is skipped — only deltas move), and the learned-feedback store's
// evidence is shipped as per-fingerprint deltas. Sync runs sequentially in
// the wave's single-threaded prologue, so its fault probes and counters
// are deterministic at any RQO_THREADS.
//
// The replica.stale_stats fault site is probed once per out-of-date node
// per sync: a fire pins the node on its previous epoch (modeling a lost
// or rejected replication message). The node heals on the first later
// sync whose probe stays quiet — or immediately after the drift hook
// forces a full re-ship.

#ifndef ROBUSTQO_CLUSTER_STATS_REPLICATION_H_
#define ROBUSTQO_CLUSTER_STATS_REPLICATION_H_

#include <cstdint>

#include "cluster/node.h"
#include "fault/fault_injector.h"
#include "learning/feedback_store.h"
#include "statistics/statistics_catalog.h"

namespace robustqo {
namespace cluster {

/// One sync's outcome for one node.
struct SyncResult {
  bool attempted = false;  ///< node was out of date
  bool stale = false;      ///< replica.stale_stats fired; node kept old epoch
  uint64_t shipped = 0;    ///< artifacts copied (samples + synopses)
  uint64_t skipped = 0;    ///< artifacts skipped (checksum match)
  uint64_t feedback_shipped = 0;  ///< feedback evidence entries updated
};

/// Syncs one node replica to the catalog's current statistics epoch.
/// `feedback` may be null (no learning store configured). `injector` may
/// be null (no fault probing); it is the serving database's base injector,
/// probed sequentially so chaos arming of replica.stale_stats is
/// deterministic. When `force` is set, checksum skipping is disabled and
/// every artifact re-ships (the drift hook's re-sync).
SyncResult SyncNodeStatistics(Node* node,
                              const stats::StatisticsCatalog& catalog,
                              const learn::FeedbackStore* feedback,
                              fault::FaultInjector* injector, bool force);

}  // namespace cluster
}  // namespace robustqo

#endif  // ROBUSTQO_CLUSTER_STATS_REPLICATION_H_
