#include "cluster/sim_network.h"

#include <algorithm>

#include "util/rng.h"

namespace robustqo {
namespace cluster {
namespace {

uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double SimNetwork::LagSeconds(uint64_t request_seed, size_t node,
                              uint64_t msg_index) const {
  Rng rng(Mix(config_.seed ^ Mix(request_seed) ^
              Mix((static_cast<uint64_t>(node) << 32) | msg_index)));
  const double lo = config_.lag_min_seconds;
  const double hi = std::max(config_.lag_max_seconds, lo);
  return lo + rng.NextDouble() * (hi - lo);
}

NetDelivery SimNetwork::ScatterGather(uint64_t request_seed,
                                      size_t nodes) const {
  NetDelivery d;
  for (size_t node = 0; node < nodes; ++node) {
    // Logical clock per link: scatter at t=0, gather response right after
    // the request arrives (node compute time is accounted by the cost
    // meter, not the network).
    const double out = LagSeconds(request_seed, node, 0);
    const double back = LagSeconds(request_seed, node, 1);
    d.messages += 2;
    d.total_lag_seconds += out + back;
    d.makespan_seconds = std::max(d.makespan_seconds, out + back);
  }
  return d;
}

}  // namespace cluster
}  // namespace robustqo
