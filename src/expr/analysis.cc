#include "expr/analysis.h"

#include <cmath>

#include "util/macros.h"

namespace robustqo {
namespace expr {

using storage::DataType;
using storage::Value;

namespace {

// Constant folding never touches the table, so a shared empty table works
// as the evaluation context.
const storage::Table& DummyTable() {
  static const storage::Table* table = new storage::Table(
      "<const>", storage::Schema(std::vector<storage::ColumnDef>{}));
  return *table;
}

// If `e` is a bare column reference, returns its name.
std::optional<std::string> AsBareColumn(const ExprPtr& e) {
  if (e->kind() != ExprKind::kColumnRef) return std::nullopt;
  return static_cast<const ColumnRefExpr&>(*e).name();
}

std::optional<double> AsConstantNumber(const ExprPtr& e) {
  if (!IsConstant(*e)) return std::nullopt;
  const Value v = FoldConstant(*e);
  if (v.type() == DataType::kString) return std::nullopt;
  return v.NumericValue();
}

CompareOp FlipOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      return op;
  }
  return op;
}

}  // namespace

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& e) {
  std::vector<ExprPtr> out;
  if (e->kind() == ExprKind::kAnd) {
    for (const auto& child : static_cast<const AndExpr&>(*e).children()) {
      auto sub = SplitConjuncts(child);
      out.insert(out.end(), sub.begin(), sub.end());
    }
  } else {
    out.push_back(e);
  }
  return out;
}

bool IsConstant(const Expr& e) {
  std::set<std::string> cols;
  e.CollectColumns(&cols);
  return cols.empty();
}

Value FoldConstant(const Expr& e) {
  RQO_CHECK_MSG(IsConstant(e), "FoldConstant on non-constant expression");
  return e.Evaluate(DummyTable(), 0);
}

std::optional<ColumnRange> TryExtractColumnRange(const ExprPtr& e) {
  if (e->kind() == ExprKind::kBetween) {
    const auto& between = static_cast<const BetweenExpr&>(*e);
    auto col = AsBareColumn(between.expr());
    if (!col.has_value()) return std::nullopt;
    if (between.lo().type() == DataType::kString ||
        between.hi().type() == DataType::kString) {
      return std::nullopt;
    }
    ColumnRange range;
    range.column = *col;
    range.lo = between.lo().NumericValue();
    range.hi = between.hi().NumericValue();
    return range;
  }

  if (e->kind() != ExprKind::kComparison) return std::nullopt;
  const auto& cmp = static_cast<const ComparisonExpr&>(*e);

  // Normalize to column <op> constant.
  std::optional<std::string> col = AsBareColumn(cmp.lhs());
  std::optional<double> constant = AsConstantNumber(cmp.rhs());
  CompareOp op = cmp.op();
  if (!col.has_value() || !constant.has_value()) {
    col = AsBareColumn(cmp.rhs());
    constant = AsConstantNumber(cmp.lhs());
    op = FlipOp(cmp.op());
    if (!col.has_value() || !constant.has_value()) return std::nullopt;
  }

  ColumnRange range;
  range.column = *col;
  switch (op) {
    case CompareOp::kEq:
      range.lo = *constant;
      range.hi = *constant;
      return range;
    case CompareOp::kLe:
      range.hi = *constant;
      return range;
    case CompareOp::kGe:
      range.lo = *constant;
      return range;
    case CompareOp::kLt:
      // Ranges are inclusive; for the integer-physical domains used in the
      // experiments, x < c is x <= c - 1. For doubles we nudge by the
      // smallest representable step.
      range.hi = std::nextafter(*constant, -HUGE_VAL);
      return range;
    case CompareOp::kGt:
      range.lo = std::nextafter(*constant, HUGE_VAL);
      return range;
    case CompareOp::kNe:
      return std::nullopt;
  }
  return std::nullopt;
}

std::vector<ColumnRange> ExtractColumnRanges(const ExprPtr& e,
                                             std::vector<ExprPtr>* residual) {
  std::vector<ColumnRange> ranges;
  for (const auto& conjunct : SplitConjuncts(e)) {
    auto range = TryExtractColumnRange(conjunct);
    if (range.has_value()) {
      ranges.push_back(*range);
    } else if (residual != nullptr) {
      residual->push_back(conjunct);
    }
  }
  return ranges;
}

}  // namespace expr
}  // namespace robustqo
