// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Expression trees for query predicates: comparisons, BETWEEN, boolean
// connectives, arithmetic, and substring matching. A key advantage of
// sampling-based estimation (paper Section 3.2, point 3) is that it works
// for arbitrary predicates — whatever this tree can evaluate, the estimator
// can estimate.
//
// Expressions are immutable and shared via ExprPtr. Column references are
// by name; TPC-H-style schemas give every column a globally unique name, so
// the same predicate evaluates against a base table or a join synopsis.

#ifndef ROBUSTQO_EXPR_EXPRESSION_H_
#define ROBUSTQO_EXPR_EXPRESSION_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/table.h"
#include "storage/value.h"

namespace robustqo {
namespace expr {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Node discriminator.
enum class ExprKind {
  kColumnRef,
  kLiteral,
  kComparison,
  kBetween,
  kAnd,
  kOr,
  kNot,
  kArithmetic,
  kStringContains,
};

/// Comparison operators.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Arithmetic operators.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// Base class for all expression nodes.
class Expr {
 public:
  virtual ~Expr() = default;

  virtual ExprKind kind() const = 0;

  /// Evaluates this node as a scalar against row `rid` of `table`.
  /// Boolean-valued nodes return Int64(0/1).
  virtual storage::Value Evaluate(const storage::Table& table,
                                  storage::Rid rid) const = 0;

  /// Evaluates this node as a predicate. Scalar nodes are truthy when
  /// non-zero (numeric) / non-empty (string).
  virtual bool EvaluateBool(const storage::Table& table,
                            storage::Rid rid) const;

  /// Adds all referenced column names to `out`.
  virtual void CollectColumns(std::set<std::string>* out) const = 0;

  /// SQL-ish rendering for debugging and plan explanation.
  virtual std::string ToString() const = 0;
};

// ----- Factory functions (the public construction API) -----

/// Column reference by name.
ExprPtr Col(std::string name);

/// Literal constant.
ExprPtr Lit(storage::Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitString(std::string v);
ExprPtr LitDate(int64_t days);

/// lhs <op> rhs.
ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs);
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Le(ExprPtr lhs, ExprPtr rhs);
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs);
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs);

/// expr BETWEEN lo AND hi (inclusive).
ExprPtr Between(ExprPtr e, storage::Value lo, storage::Value hi);

/// Conjunction / disjunction / negation. And({}) is TRUE, Or({}) is FALSE.
ExprPtr And(std::vector<ExprPtr> children);
ExprPtr Or(std::vector<ExprPtr> children);
ExprPtr Not(ExprPtr child);

/// lhs <op> rhs arithmetic on numeric values.
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);

/// column LIKE '%needle%' on a string column.
ExprPtr StringContains(ExprPtr str_expr, std::string needle);

/// Evaluates `predicate` over every row of `table`, returning how many rows
/// satisfy it. The workhorse of sample-based estimation.
uint64_t CountSatisfying(const Expr& predicate, const storage::Table& table);

// ----- Concrete node types (exposed for analysis passes) -----

class ColumnRefExpr final : public Expr {
 public:
  explicit ColumnRefExpr(std::string name) : name_(std::move(name)) {}
  ExprKind kind() const override { return ExprKind::kColumnRef; }
  const std::string& name() const { return name_; }
  storage::Value Evaluate(const storage::Table& table,
                          storage::Rid rid) const override;
  void CollectColumns(std::set<std::string>* out) const override;
  std::string ToString() const override { return name_; }

 private:
  std::string name_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(storage::Value v) : value_(std::move(v)) {}
  ExprKind kind() const override { return ExprKind::kLiteral; }
  const storage::Value& value() const { return value_; }
  storage::Value Evaluate(const storage::Table& table,
                          storage::Rid rid) const override;
  void CollectColumns(std::set<std::string>* out) const override;
  std::string ToString() const override { return value_.ToString(); }

 private:
  storage::Value value_;
};

class ComparisonExpr final : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  ExprKind kind() const override { return ExprKind::kComparison; }
  CompareOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }
  storage::Value Evaluate(const storage::Table& table,
                          storage::Rid rid) const override;
  bool EvaluateBool(const storage::Table& table,
                    storage::Rid rid) const override;
  void CollectColumns(std::set<std::string>* out) const override;
  std::string ToString() const override;

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class BetweenExpr final : public Expr {
 public:
  BetweenExpr(ExprPtr e, storage::Value lo, storage::Value hi)
      : expr_(std::move(e)), lo_(std::move(lo)), hi_(std::move(hi)) {}
  ExprKind kind() const override { return ExprKind::kBetween; }
  const ExprPtr& expr() const { return expr_; }
  const storage::Value& lo() const { return lo_; }
  const storage::Value& hi() const { return hi_; }
  storage::Value Evaluate(const storage::Table& table,
                          storage::Rid rid) const override;
  bool EvaluateBool(const storage::Table& table,
                    storage::Rid rid) const override;
  void CollectColumns(std::set<std::string>* out) const override;
  std::string ToString() const override;

 private:
  ExprPtr expr_;
  storage::Value lo_;
  storage::Value hi_;
};

class AndExpr final : public Expr {
 public:
  explicit AndExpr(std::vector<ExprPtr> children)
      : children_(std::move(children)) {}
  ExprKind kind() const override { return ExprKind::kAnd; }
  const std::vector<ExprPtr>& children() const { return children_; }
  storage::Value Evaluate(const storage::Table& table,
                          storage::Rid rid) const override;
  bool EvaluateBool(const storage::Table& table,
                    storage::Rid rid) const override;
  void CollectColumns(std::set<std::string>* out) const override;
  std::string ToString() const override;

 private:
  std::vector<ExprPtr> children_;
};

class OrExpr final : public Expr {
 public:
  explicit OrExpr(std::vector<ExprPtr> children)
      : children_(std::move(children)) {}
  ExprKind kind() const override { return ExprKind::kOr; }
  const std::vector<ExprPtr>& children() const { return children_; }
  storage::Value Evaluate(const storage::Table& table,
                          storage::Rid rid) const override;
  bool EvaluateBool(const storage::Table& table,
                    storage::Rid rid) const override;
  void CollectColumns(std::set<std::string>* out) const override;
  std::string ToString() const override;

 private:
  std::vector<ExprPtr> children_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr child) : child_(std::move(child)) {}
  ExprKind kind() const override { return ExprKind::kNot; }
  const ExprPtr& child() const { return child_; }
  storage::Value Evaluate(const storage::Table& table,
                          storage::Rid rid) const override;
  bool EvaluateBool(const storage::Table& table,
                    storage::Rid rid) const override;
  void CollectColumns(std::set<std::string>* out) const override;
  std::string ToString() const override;

 private:
  ExprPtr child_;
};

class ArithmeticExpr final : public Expr {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  ExprKind kind() const override { return ExprKind::kArithmetic; }
  ArithOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }
  storage::Value Evaluate(const storage::Table& table,
                          storage::Rid rid) const override;
  void CollectColumns(std::set<std::string>* out) const override;
  std::string ToString() const override;

 private:
  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class StringContainsExpr final : public Expr {
 public:
  StringContainsExpr(ExprPtr str_expr, std::string needle)
      : expr_(std::move(str_expr)), needle_(std::move(needle)) {}
  ExprKind kind() const override { return ExprKind::kStringContains; }
  const ExprPtr& expr() const { return expr_; }
  const std::string& needle() const { return needle_; }
  storage::Value Evaluate(const storage::Table& table,
                          storage::Rid rid) const override;
  bool EvaluateBool(const storage::Table& table,
                    storage::Rid rid) const override;
  void CollectColumns(std::set<std::string>* out) const override;
  std::string ToString() const override;

 private:
  ExprPtr expr_;
  std::string needle_;
};

}  // namespace expr
}  // namespace robustqo

#endif  // ROBUSTQO_EXPR_EXPRESSION_H_
