// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Static analysis over expression trees. Used by:
//  * the histogram/AVI estimator, which can only handle predicates it can
//    decompose into per-column ranges;
//  * the optimizer's access-path selection, which matches sargable conjuncts
//    against available indexes.
// The sample-based estimator needs none of this — it just evaluates the
// predicate — which is exactly the paper's point about generality.

#ifndef ROBUSTQO_EXPR_ANALYSIS_H_
#define ROBUSTQO_EXPR_ANALYSIS_H_

#include <optional>
#include <string>
#include <vector>

#include "expr/expression.h"

namespace robustqo {
namespace expr {

/// A sargable restriction `lo <= column <= hi` (either bound may be open).
/// Bounds are in the column's numeric domain (dates as day numbers).
struct ColumnRange {
  std::string column;
  std::optional<double> lo;  // inclusive
  std::optional<double> hi;  // inclusive

  /// True iff both bounds are present and equal (an equality predicate).
  bool IsPoint() const { return lo.has_value() && hi.has_value() && *lo == *hi; }
};

/// Flattens nested conjunctions into a list of conjuncts. A non-AND node
/// yields a single-element list; And({}) yields an empty list.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& e);

/// True iff the expression references no columns (it is constant-foldable).
bool IsConstant(const Expr& e);

/// Evaluates a constant expression (aborts if not constant).
storage::Value FoldConstant(const Expr& e);

/// If `e` is a sargable single-column restriction — a comparison or BETWEEN
/// with a bare column on one side and constants elsewhere — returns its
/// ColumnRange; otherwise nullopt. Equality on strings and <> are not
/// representable as ranges and yield nullopt.
std::optional<ColumnRange> TryExtractColumnRange(const ExprPtr& e);

/// Extracts ranges for every sargable conjunct of `e`; conjuncts that are
/// not sargable are returned in `residual` (if non-null).
std::vector<ColumnRange> ExtractColumnRanges(
    const ExprPtr& e, std::vector<ExprPtr>* residual = nullptr);

}  // namespace expr
}  // namespace robustqo

#endif  // ROBUSTQO_EXPR_ANALYSIS_H_
