#include "expr/expression.h"

#include "util/macros.h"
#include "util/string_util.h"

namespace robustqo {
namespace expr {

using storage::Rid;
using storage::Table;
using storage::Value;

namespace {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpSymbol(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

bool Truthy(const Value& v) {
  if (v.type() == storage::DataType::kString) return !v.AsString().empty();
  return v.NumericValue() != 0.0;
}

}  // namespace

bool Expr::EvaluateBool(const Table& table, Rid rid) const {
  return Truthy(Evaluate(table, rid));
}

// ----- ColumnRef -----

Value ColumnRefExpr::Evaluate(const Table& table, Rid rid) const {
  auto idx = table.schema().ColumnIndex(name_);
  RQO_CHECK_MSG(idx.ok(), ("unbound column " + name_).c_str());
  return table.ValueAt(rid, idx.value());
}

void ColumnRefExpr::CollectColumns(std::set<std::string>* out) const {
  out->insert(name_);
}

// ----- Literal -----

Value LiteralExpr::Evaluate(const Table& /*table*/, Rid /*rid*/) const {
  return value_;
}

void LiteralExpr::CollectColumns(std::set<std::string>* /*out*/) const {}

// ----- Comparison -----

Value ComparisonExpr::Evaluate(const Table& table, Rid rid) const {
  return Value::Int64(EvaluateBool(table, rid) ? 1 : 0);
}

bool ComparisonExpr::EvaluateBool(const Table& table, Rid rid) const {
  const Value a = lhs_->Evaluate(table, rid);
  const Value b = rhs_->Evaluate(table, rid);
  const int c = a.Compare(b);
  switch (op_) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

void ComparisonExpr::CollectColumns(std::set<std::string>* out) const {
  lhs_->CollectColumns(out);
  rhs_->CollectColumns(out);
}

std::string ComparisonExpr::ToString() const {
  return "(" + lhs_->ToString() + " " + CompareOpSymbol(op_) + " " +
         rhs_->ToString() + ")";
}

// ----- Between -----

Value BetweenExpr::Evaluate(const Table& table, Rid rid) const {
  return Value::Int64(EvaluateBool(table, rid) ? 1 : 0);
}

bool BetweenExpr::EvaluateBool(const Table& table, Rid rid) const {
  const Value v = expr_->Evaluate(table, rid);
  return v.Compare(lo_) >= 0 && v.Compare(hi_) <= 0;
}

void BetweenExpr::CollectColumns(std::set<std::string>* out) const {
  expr_->CollectColumns(out);
}

std::string BetweenExpr::ToString() const {
  return "(" + expr_->ToString() + " BETWEEN " + lo_.ToString() + " AND " +
         hi_.ToString() + ")";
}

// ----- And / Or / Not -----

Value AndExpr::Evaluate(const Table& table, Rid rid) const {
  return Value::Int64(EvaluateBool(table, rid) ? 1 : 0);
}

bool AndExpr::EvaluateBool(const Table& table, Rid rid) const {
  for (const auto& child : children_) {
    if (!child->EvaluateBool(table, rid)) return false;
  }
  return true;
}

void AndExpr::CollectColumns(std::set<std::string>* out) const {
  for (const auto& child : children_) child->CollectColumns(out);
}

std::string AndExpr::ToString() const {
  if (children_.empty()) return "TRUE";
  std::vector<std::string> parts;
  parts.reserve(children_.size());
  for (const auto& c : children_) parts.push_back(c->ToString());
  return "(" + StrJoin(parts, " AND ") + ")";
}

Value OrExpr::Evaluate(const Table& table, Rid rid) const {
  return Value::Int64(EvaluateBool(table, rid) ? 1 : 0);
}

bool OrExpr::EvaluateBool(const Table& table, Rid rid) const {
  for (const auto& child : children_) {
    if (child->EvaluateBool(table, rid)) return true;
  }
  return false;
}

void OrExpr::CollectColumns(std::set<std::string>* out) const {
  for (const auto& child : children_) child->CollectColumns(out);
}

std::string OrExpr::ToString() const {
  if (children_.empty()) return "FALSE";
  std::vector<std::string> parts;
  parts.reserve(children_.size());
  for (const auto& c : children_) parts.push_back(c->ToString());
  return "(" + StrJoin(parts, " OR ") + ")";
}

Value NotExpr::Evaluate(const Table& table, Rid rid) const {
  return Value::Int64(EvaluateBool(table, rid) ? 1 : 0);
}

bool NotExpr::EvaluateBool(const Table& table, Rid rid) const {
  return !child_->EvaluateBool(table, rid);
}

void NotExpr::CollectColumns(std::set<std::string>* out) const {
  child_->CollectColumns(out);
}

std::string NotExpr::ToString() const {
  return "(NOT " + child_->ToString() + ")";
}

// ----- Arithmetic -----

Value ArithmeticExpr::Evaluate(const Table& table, Rid rid) const {
  const Value a = lhs_->Evaluate(table, rid);
  const Value b = rhs_->Evaluate(table, rid);
  // Integer-physical op integer-physical stays integral; anything with a
  // double widens. Division always widens (SQL real division).
  const bool both_int = a.type() != storage::DataType::kDouble &&
                        b.type() != storage::DataType::kDouble &&
                        op_ != ArithOp::kDiv;
  if (both_int) {
    const int64_t x = a.AsInt64();
    const int64_t y = b.AsInt64();
    switch (op_) {
      case ArithOp::kAdd:
        // Date + integer days stays a date; date + date degrades to int.
        if (a.type() == storage::DataType::kDate &&
            b.type() == storage::DataType::kInt64) {
          return Value::Date(x + y);
        }
        return Value::Int64(x + y);
      case ArithOp::kSub:
        if (a.type() == storage::DataType::kDate &&
            b.type() == storage::DataType::kInt64) {
          return Value::Date(x - y);
        }
        return Value::Int64(x - y);
      case ArithOp::kMul:
        return Value::Int64(x * y);
      case ArithOp::kDiv:
        break;  // unreachable: division widens
    }
  }
  const double x = a.NumericValue();
  const double y = b.NumericValue();
  switch (op_) {
    case ArithOp::kAdd:
      return Value::Double(x + y);
    case ArithOp::kSub:
      return Value::Double(x - y);
    case ArithOp::kMul:
      return Value::Double(x * y);
    case ArithOp::kDiv:
      return Value::Double(x / y);
  }
  return Value::Double(0.0);
}

void ArithmeticExpr::CollectColumns(std::set<std::string>* out) const {
  lhs_->CollectColumns(out);
  rhs_->CollectColumns(out);
}

std::string ArithmeticExpr::ToString() const {
  return "(" + lhs_->ToString() + " " + ArithOpSymbol(op_) + " " +
         rhs_->ToString() + ")";
}

// ----- StringContains -----

Value StringContainsExpr::Evaluate(const Table& table, Rid rid) const {
  return Value::Int64(EvaluateBool(table, rid) ? 1 : 0);
}

bool StringContainsExpr::EvaluateBool(const Table& table, Rid rid) const {
  const Value v = expr_->Evaluate(table, rid);
  return Contains(v.AsString(), needle_);
}

void StringContainsExpr::CollectColumns(std::set<std::string>* out) const {
  expr_->CollectColumns(out);
}

std::string StringContainsExpr::ToString() const {
  return "(" + expr_->ToString() + " LIKE '%" + needle_ + "%')";
}

// ----- Factories -----

ExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr LitInt(int64_t v) { return Lit(Value::Int64(v)); }
ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
ExprPtr LitString(std::string v) { return Lit(Value::String(std::move(v))); }
ExprPtr LitDate(int64_t days) { return Lit(Value::Date(days)); }

ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ComparisonExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs) {
  return Compare(CompareOp::kEq, std::move(lhs), std::move(rhs));
}
ExprPtr Ne(ExprPtr lhs, ExprPtr rhs) {
  return Compare(CompareOp::kNe, std::move(lhs), std::move(rhs));
}
ExprPtr Lt(ExprPtr lhs, ExprPtr rhs) {
  return Compare(CompareOp::kLt, std::move(lhs), std::move(rhs));
}
ExprPtr Le(ExprPtr lhs, ExprPtr rhs) {
  return Compare(CompareOp::kLe, std::move(lhs), std::move(rhs));
}
ExprPtr Gt(ExprPtr lhs, ExprPtr rhs) {
  return Compare(CompareOp::kGt, std::move(lhs), std::move(rhs));
}
ExprPtr Ge(ExprPtr lhs, ExprPtr rhs) {
  return Compare(CompareOp::kGe, std::move(lhs), std::move(rhs));
}

ExprPtr Between(ExprPtr e, Value lo, Value hi) {
  return std::make_shared<BetweenExpr>(std::move(e), std::move(lo),
                                       std::move(hi));
}

ExprPtr And(std::vector<ExprPtr> children) {
  return std::make_shared<AndExpr>(std::move(children));
}

ExprPtr Or(std::vector<ExprPtr> children) {
  return std::make_shared<OrExpr>(std::move(children));
}

ExprPtr Not(ExprPtr child) {
  return std::make_shared<NotExpr>(std::move(child));
}

ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithmeticExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr StringContains(ExprPtr str_expr, std::string needle) {
  return std::make_shared<StringContainsExpr>(std::move(str_expr),
                                              std::move(needle));
}

uint64_t CountSatisfying(const Expr& predicate, const Table& table) {
  uint64_t count = 0;
  const uint64_t n = table.num_rows();
  for (Rid rid = 0; rid < n; ++rid) {
    if (predicate.EvaluateBool(table, rid)) ++count;
  }
  return count;
}

}  // namespace expr
}  // namespace robustqo
