#include "tpch/tpch_gen.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "storage/date.h"
#include "util/macros.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace robustqo {
namespace tpch {

using storage::Catalog;
using storage::ColumnDef;
using storage::DataType;
using storage::DateToDays;
using storage::Schema;
using storage::Table;

namespace {

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};
const char* kNationNames[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kPartNouns[] = {"almond", "antique", "aquamarine", "azure",
                            "beige", "bisque", "black", "blanched", "blue",
                            "blush", "brown", "burlywood", "burnished"};

uint64_t Scaled(uint64_t base, double sf, uint64_t minimum) {
  const double scaled = static_cast<double>(base) * sf;
  return std::max<uint64_t>(minimum, static_cast<uint64_t>(scaled));
}

void BuildRegion(Catalog* catalog) {
  auto table = std::make_unique<Table>(
      "region", Schema({{"r_regionkey", DataType::kInt64},
                        {"r_name", DataType::kString}}));
  for (int64_t i = 0; i < 5; ++i) {
    table->mutable_column(0)->AppendInt64(i);
    table->mutable_column(1)->AppendString(kRegionNames[i]);
  }
  table->FinalizeBulkLoad();
  RQO_CHECK(catalog->AddTable(std::move(table)).ok());
}

void BuildNation(Catalog* catalog, Rng* rng) {
  auto table = std::make_unique<Table>(
      "nation", Schema({{"n_nationkey", DataType::kInt64},
                        {"n_name", DataType::kString},
                        {"n_regionkey", DataType::kInt64}}));
  for (int64_t i = 0; i < 25; ++i) {
    table->mutable_column(0)->AppendInt64(i);
    table->mutable_column(1)->AppendString(kNationNames[i]);
    table->mutable_column(2)->AppendInt64(rng->NextInRange(0, 4));
  }
  table->FinalizeBulkLoad();
  RQO_CHECK(catalog->AddTable(std::move(table)).ok());
}

void BuildSupplier(Catalog* catalog, uint64_t rows, Rng* rng) {
  auto table = std::make_unique<Table>(
      "supplier", Schema({{"s_suppkey", DataType::kInt64},
                          {"s_name", DataType::kString},
                          {"s_nationkey", DataType::kInt64},
                          {"s_acctbal", DataType::kDouble}}));
  table->Reserve(rows);
  for (uint64_t i = 1; i <= rows; ++i) {
    table->mutable_column(0)->AppendInt64(static_cast<int64_t>(i));
    table->mutable_column(1)->AppendString(
        StrPrintf("Supplier#%09llu", static_cast<unsigned long long>(i)));
    table->mutable_column(2)->AppendInt64(rng->NextInRange(0, 24));
    table->mutable_column(3)->AppendDouble(
        rng->NextDoubleInRange(-999.99, 9999.99));
  }
  table->FinalizeBulkLoad();
  RQO_CHECK(catalog->AddTable(std::move(table)).ok());
}

void BuildCustomer(Catalog* catalog, uint64_t rows, Rng* rng) {
  auto table = std::make_unique<Table>(
      "customer", Schema({{"c_custkey", DataType::kInt64},
                          {"c_name", DataType::kString},
                          {"c_nationkey", DataType::kInt64},
                          {"c_acctbal", DataType::kDouble},
                          {"c_mktsegment", DataType::kString}}));
  table->Reserve(rows);
  for (uint64_t i = 1; i <= rows; ++i) {
    table->mutable_column(0)->AppendInt64(static_cast<int64_t>(i));
    table->mutable_column(1)->AppendString(
        StrPrintf("Customer#%09llu", static_cast<unsigned long long>(i)));
    table->mutable_column(2)->AppendInt64(rng->NextInRange(0, 24));
    table->mutable_column(3)->AppendDouble(
        rng->NextDoubleInRange(-999.99, 9999.99));
    table->mutable_column(4)->AppendString(
        kSegments[rng->NextBounded(5)]);
  }
  table->FinalizeBulkLoad();
  RQO_CHECK(catalog->AddTable(std::move(table)).ok());
}

void BuildPart(Catalog* catalog, uint64_t rows, double corr_window,
               Rng* rng) {
  auto table = std::make_unique<Table>(
      "part", Schema({{"p_partkey", DataType::kInt64},
                      {"p_name", DataType::kString},
                      {"p_brand", DataType::kString},
                      {"p_size", DataType::kInt64},
                      {"p_retailprice", DataType::kDouble},
                      {"p_c1", DataType::kDouble},
                      {"p_c2", DataType::kDouble}}));
  table->Reserve(rows);
  for (uint64_t i = 1; i <= rows; ++i) {
    table->mutable_column(0)->AppendInt64(static_cast<int64_t>(i));
    table->mutable_column(1)->AppendString(
        std::string(kPartNouns[rng->NextBounded(13)]) + " " +
        kPartNouns[rng->NextBounded(13)]);
    table->mutable_column(2)->AppendString(
        StrPrintf("Brand#%lld%lld", static_cast<long long>(rng->NextInRange(1, 5)),
                  static_cast<long long>(rng->NextInRange(1, 5))));
    table->mutable_column(3)->AppendInt64(rng->NextInRange(1, 50));
    table->mutable_column(4)->AppendDouble(
        rng->NextDoubleInRange(900.0, 2100.0));
    // Experiment-2 correlation: p_c1 uniform on [0,100); p_c2 tracks p_c1
    // within `corr_window`, wrapping at 100 so its marginal stays uniform.
    const double c1 = rng->NextDoubleInRange(0.0, 100.0);
    const double c2 =
        std::fmod(c1 + rng->NextDoubleInRange(0.0, corr_window), 100.0);
    table->mutable_column(5)->AppendDouble(c1);
    table->mutable_column(6)->AppendDouble(c2);
  }
  table->FinalizeBulkLoad();
  RQO_CHECK(catalog->AddTable(std::move(table)).ok());
}

// Orders and lineitem are generated together so lineitem can inherit each
// order's date and arrive clustered by l_orderkey.
void BuildOrdersAndLineitem(Catalog* catalog, uint64_t num_orders,
                            uint64_t num_customers, uint64_t num_parts,
                            uint64_t num_suppliers, Rng* rng) {
  auto orders = std::make_unique<Table>(
      "orders", Schema({{"o_orderkey", DataType::kInt64},
                        {"o_custkey", DataType::kInt64},
                        {"o_orderdate", DataType::kDate},
                        {"o_totalprice", DataType::kDouble},
                        {"o_orderpriority", DataType::kString}}));
  auto lineitem = std::make_unique<Table>(
      "lineitem", Schema({{"l_orderkey", DataType::kInt64},
                          {"l_partkey", DataType::kInt64},
                          {"l_suppkey", DataType::kInt64},
                          {"l_linenumber", DataType::kInt64},
                          {"l_quantity", DataType::kDouble},
                          {"l_extendedprice", DataType::kDouble},
                          {"l_discount", DataType::kDouble},
                          {"l_shipdate", DataType::kDate},
                          {"l_commitdate", DataType::kDate},
                          {"l_receiptdate", DataType::kDate}}));
  orders->Reserve(num_orders);
  lineitem->Reserve(num_orders * 4);

  const int64_t min_date = MinOrderDate();
  const int64_t max_date = MaxOrderDate();
  for (uint64_t o = 1; o <= num_orders; ++o) {
    const int64_t order_date = rng->NextInRange(min_date, max_date);
    double total_price = 0.0;
    const int64_t lines = rng->NextInRange(1, 7);
    for (int64_t line = 1; line <= lines; ++line) {
      const double quantity = static_cast<double>(rng->NextInRange(1, 50));
      const double price = rng->NextDoubleInRange(900.0, 2100.0) * quantity;
      const double discount = rng->NextDoubleInRange(0.0, 0.10);
      // The natural TPC-H date correlation: receipt follows ship by 1-30
      // days. This is the joint structure Experiment 1's histograms miss.
      const int64_t ship_date = order_date + rng->NextInRange(1, 121);
      const int64_t commit_date = order_date + rng->NextInRange(30, 90);
      const int64_t receipt_date = ship_date + rng->NextInRange(1, 30);
      lineitem->mutable_column(0)->AppendInt64(static_cast<int64_t>(o));
      lineitem->mutable_column(1)->AppendInt64(
          rng->NextInRange(1, static_cast<int64_t>(num_parts)));
      lineitem->mutable_column(2)->AppendInt64(
          rng->NextInRange(1, static_cast<int64_t>(num_suppliers)));
      lineitem->mutable_column(3)->AppendInt64(line);
      lineitem->mutable_column(4)->AppendDouble(quantity);
      lineitem->mutable_column(5)->AppendDouble(price);
      lineitem->mutable_column(6)->AppendDouble(discount);
      lineitem->mutable_column(7)->AppendInt64(ship_date);
      lineitem->mutable_column(8)->AppendInt64(commit_date);
      lineitem->mutable_column(9)->AppendInt64(receipt_date);
      total_price += price * (1.0 - discount);
    }
    orders->mutable_column(0)->AppendInt64(static_cast<int64_t>(o));
    orders->mutable_column(1)->AppendInt64(
        rng->NextInRange(1, static_cast<int64_t>(num_customers)));
    orders->mutable_column(2)->AppendInt64(order_date);
    orders->mutable_column(3)->AppendDouble(total_price);
    orders->mutable_column(4)->AppendString(
        kPriorities[rng->NextBounded(5)]);
  }
  orders->FinalizeBulkLoad();
  lineitem->FinalizeBulkLoad();
  RQO_CHECK(catalog->AddTable(std::move(orders)).ok());
  RQO_CHECK(catalog->AddTable(std::move(lineitem)).ok());
}

}  // namespace

int64_t MinOrderDate() { return DateToDays(1992, 1, 1); }
int64_t MaxOrderDate() { return DateToDays(1998, 8, 2); }

Status LoadTpch(Catalog* catalog, const TpchConfig& config) {
  if (catalog->GetTable("lineitem") != nullptr) {
    return Status::AlreadyExists("TPC-H tables already loaded");
  }
  if (config.scale_factor <= 0.0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  Rng rng(config.seed);

  const uint64_t num_suppliers =
      Scaled(kSuppliersPerSf, config.scale_factor, 10);
  const uint64_t num_customers =
      Scaled(kCustomersPerSf, config.scale_factor, 100);
  const uint64_t num_parts = Scaled(kPartsPerSf, config.scale_factor, 200);
  const uint64_t num_orders = Scaled(kOrdersPerSf, config.scale_factor, 1000);

  BuildRegion(catalog);
  Rng nation_rng = rng.Fork();
  BuildNation(catalog, &nation_rng);
  Rng supplier_rng = rng.Fork();
  BuildSupplier(catalog, num_suppliers, &supplier_rng);
  Rng customer_rng = rng.Fork();
  BuildCustomer(catalog, num_customers, &customer_rng);
  Rng part_rng = rng.Fork();
  BuildPart(catalog, num_parts, config.part_correlation_window, &part_rng);
  Rng order_rng = rng.Fork();
  BuildOrdersAndLineitem(catalog, num_orders, num_customers, num_parts,
                         num_suppliers, &order_rng);

  // Keys.
  RQO_RETURN_NOT_OK(catalog->SetPrimaryKey("region", "r_regionkey"));
  RQO_RETURN_NOT_OK(catalog->SetPrimaryKey("nation", "n_nationkey"));
  RQO_RETURN_NOT_OK(catalog->SetPrimaryKey("supplier", "s_suppkey"));
  RQO_RETURN_NOT_OK(catalog->SetPrimaryKey("customer", "c_custkey"));
  RQO_RETURN_NOT_OK(catalog->SetPrimaryKey("part", "p_partkey"));
  RQO_RETURN_NOT_OK(catalog->SetPrimaryKey("orders", "o_orderkey"));
  RQO_RETURN_NOT_OK(catalog->AddForeignKey(
      {"nation", "n_regionkey", "region", "r_regionkey"}));
  RQO_RETURN_NOT_OK(catalog->AddForeignKey(
      {"supplier", "s_nationkey", "nation", "n_nationkey"}));
  RQO_RETURN_NOT_OK(catalog->AddForeignKey(
      {"customer", "c_nationkey", "nation", "n_nationkey"}));
  RQO_RETURN_NOT_OK(catalog->AddForeignKey(
      {"orders", "o_custkey", "customer", "c_custkey"}));
  RQO_RETURN_NOT_OK(catalog->AddForeignKey(
      {"lineitem", "l_orderkey", "orders", "o_orderkey"}));
  RQO_RETURN_NOT_OK(catalog->AddForeignKey(
      {"lineitem", "l_partkey", "part", "p_partkey"}));
  RQO_RETURN_NOT_OK(catalog->AddForeignKey(
      {"lineitem", "l_suppkey", "supplier", "s_suppkey"}));

  // Physical design of the experiments: PK clustering plus the secondary
  // indexes Section 6 describes.
  RQO_RETURN_NOT_OK(catalog->SetClusteringColumn("lineitem", "l_orderkey"));
  RQO_RETURN_NOT_OK(catalog->SetClusteringColumn("orders", "o_orderkey"));
  RQO_RETURN_NOT_OK(catalog->SetClusteringColumn("part", "p_partkey"));
  RQO_RETURN_NOT_OK(catalog->SetClusteringColumn("customer", "c_custkey"));
  if (config.build_indexes) {
    RQO_RETURN_NOT_OK(catalog->BuildIndex("lineitem", "l_shipdate"));
    RQO_RETURN_NOT_OK(catalog->BuildIndex("lineitem", "l_receiptdate"));
    RQO_RETURN_NOT_OK(catalog->BuildIndex("lineitem", "l_partkey"));
    RQO_RETURN_NOT_OK(catalog->BuildIndex("lineitem", "l_suppkey"));
    RQO_RETURN_NOT_OK(catalog->BuildIndex("lineitem", "l_orderkey"));
    RQO_RETURN_NOT_OK(catalog->BuildIndex("orders", "o_orderkey"));
    RQO_RETURN_NOT_OK(catalog->BuildIndex("orders", "o_custkey"));
    RQO_RETURN_NOT_OK(catalog->BuildIndex("part", "p_partkey"));
    RQO_RETURN_NOT_OK(catalog->BuildIndex("customer", "c_custkey"));
    RQO_RETURN_NOT_OK(catalog->BuildIndex("supplier", "s_suppkey"));
  }
  return Status::OK();
}

}  // namespace tpch
}  // namespace robustqo
