// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// TPC-H-lite data generator (dbgen analogue). Generates the TPC-H schema
// subset the paper's experiments use — region, nation, supplier, customer,
// part, orders, lineitem — at a configurable scale factor, with:
//
//  * the benchmark's natural ship-date/receipt-date correlation
//    (l_receiptdate = l_shipdate + U[1,30]), which is what defeats the
//    AVI assumption in Experiment 1;
//  * the Experiment-2 modification of the part table: two extra numeric
//    columns p_c1/p_c2 with constant marginal distributions but a
//    correlated joint distribution (p_c2 tracks p_c1 within a window), so
//    a two-predicate selection's true selectivity is steered by the
//    predicate offset while histograms see no change.
//
// The physical design of the paper's experiments is applied on load:
// tables clustered by primary key, nonclustered indexes on l_shipdate,
// l_receiptdate and the foreign-key columns.
//
// partsupp is omitted: it has a composite primary key, is referenced by no
// experiment, and the library's FK model (single-column keys) covers every
// query the paper evaluates. Documented in DESIGN.md.

#ifndef ROBUSTQO_TPCH_TPCH_GEN_H_
#define ROBUSTQO_TPCH_TPCH_GEN_H_

#include <cstdint>

#include "storage/catalog.h"
#include "util/status.h"

namespace robustqo {
namespace tpch {

/// Generator knobs.
struct TpchConfig {
  /// TPC-H scale factor. 1.0 would be the paper's ~6M-row lineitem; the
  /// default 0.02 (~120k rows) keeps experiments laptop-fast while leaving
  /// all crossover selectivities unchanged (they are ratios of cost-model
  /// constants, independent of N).
  double scale_factor = 0.02;
  /// Seed for the data generator (distinct from statistics seeds).
  uint64_t seed = 7;
  /// Width of the p_c2-tracks-p_c1 correlation window, in domain units of
  /// the [0,100) columns.
  double part_correlation_window = 5.0;
  /// Whether to create the experiments' secondary indexes.
  bool build_indexes = true;
};

/// Base row counts at scale factor 1.
inline constexpr uint64_t kCustomersPerSf = 150000;
inline constexpr uint64_t kPartsPerSf = 200000;
inline constexpr uint64_t kSuppliersPerSf = 10000;
inline constexpr uint64_t kOrdersPerSf = 1500000;

/// First and last order dates of the benchmark.
int64_t MinOrderDate();  // 1992-01-01
int64_t MaxOrderDate();  // 1998-08-02

/// Generates all tables into `catalog`, declares keys/FKs/clustering, and
/// builds the experiments' indexes. Fails if tables already exist.
Status LoadTpch(storage::Catalog* catalog, const TpchConfig& config = {});

}  // namespace tpch
}  // namespace robustqo

#endif  // ROBUSTQO_TPCH_TPCH_GEN_H_
