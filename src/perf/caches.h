// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// The two memo layers of the sampling engine, both keyed by canonical
// expression fingerprints (perf/fingerprint.h):
//
//   * ProbeCountCache — a per-query memo of (k, n) probe counts. The DP
//     join enumerator costs the same conjunct under many (join subset,
//     context) combinations; the first probe scans the sample, every
//     repeat is a hash lookup. The optimizer installs a fresh cache per
//     Optimize() call, so entries never outlive the statistics they were
//     computed from.
//   * InverseBetaCache — a bounded LRU over inverse-Beta quantile
//     evaluations cdf^{-1}(T) keyed by (alpha, beta, p) bit patterns.
//     Newton iteration on the incomplete beta is the second-hottest
//     operation of estimation, and a workload re-inverts a small working
//     set of posteriors (same prior, same threshold, overlapping k).
//
// Both report hits/misses; the estimator forwards them to the perf.cache.*
// metric family and EXPLAIN ANALYZE. Cached and uncached results are
// identical by construction (the cache stores the function's exact output
// and the key is the exact input bits) — pinned by tests/perf/caches_test.

#ifndef ROBUSTQO_PERF_CACHES_H_
#define ROBUSTQO_PERF_CACHES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>

namespace robustqo {
namespace perf {

/// A (k, n) sample observation: k of n sample tuples satisfied a predicate.
struct ProbeCount {
  uint64_t satisfying = 0;   ///< k
  uint64_t sample_size = 0;  ///< n
};

/// Per-query memo of probe counts, keyed by (sample source, predicate
/// fingerprint). Thread-safe; the estimator consults it sequentially but
/// bench harnesses share one across worker threads.
class ProbeCountCache {
 public:
  /// `source` names the sample scanned (e.g. "sample:lineitem" or
  /// "synopsis:orders") — the same predicate probed against different
  /// samples must not share an entry.
  std::optional<ProbeCount> Lookup(const std::string& source,
                                   uint64_t fingerprint);
  void Insert(const std::string& source, uint64_t fingerprint,
              ProbeCount count);

  void Clear();

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;

  /// Per-query tally of inverse-Beta inversions: returns whether
  /// (alpha, beta, p) was already inverted within this cache's scope (one
  /// optimizer call) and counts it as a beta hit/miss accordingly. EXPLAIN
  /// ANALYZE reports these instead of the global LRU's residency, which
  /// depends on what ran before — this classification is a function of the
  /// query alone, so snapshots stay byte-identical across runs and thread
  /// counts.
  bool NoteBetaInversion(double alpha, double beta, double p);

  uint64_t beta_hits() const;
  uint64_t beta_misses() const;

 private:
  static std::string Key(const std::string& source, uint64_t fingerprint);

  mutable std::mutex mu_;
  std::unordered_map<std::string, ProbeCount> entries_;
  std::set<std::tuple<uint64_t, uint64_t, uint64_t>> beta_keys_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t beta_hits_ = 0;
  uint64_t beta_misses_ = 0;
};

/// Bounded LRU memo for inverse-Beta quantiles. Value(alpha, beta, p)
/// returns BetaDistribution(alpha, beta).InverseCdf(p), computing it on
/// miss and evicting least-recently-used entries beyond the capacity.
class InverseBetaCache {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit InverseBetaCache(size_t capacity = kDefaultCapacity);

  /// The memoized quantile. `hit` (when non-null) reports whether the
  /// value came from the cache.
  double Value(double alpha, double beta, double p, bool* hit = nullptr);

  /// Shrinks/grows the bound; evicts immediately when shrinking.
  void set_capacity(size_t capacity);
  size_t capacity() const;

  void Clear();

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;

 private:
  struct Key {
    uint64_t alpha_bits;
    uint64_t beta_bits;
    uint64_t p_bits;
    bool operator==(const Key& o) const {
      return alpha_bits == o.alpha_bits && beta_bits == o.beta_bits &&
             p_bits == o.p_bits;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  using LruList = std::list<std::pair<Key, double>>;

  void EvictLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace perf
}  // namespace robustqo

#endif  // ROBUSTQO_PERF_CACHES_H_
