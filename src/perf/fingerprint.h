// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Canonical structural fingerprints for predicate expressions — the cache
// key of the probe-count and inverse-Beta memo layers. Two predicates that
// evaluate identically on every table get the same fingerprint whenever
// they are structurally equal up to AND/OR child order; the optimizer
// re-costs the same conjunct under many (join subset, tag) combinations,
// and the fingerprint is what lets those probes share one sample scan.

#ifndef ROBUSTQO_PERF_FINGERPRINT_H_
#define ROBUSTQO_PERF_FINGERPRINT_H_

#include <cstdint>

#include "expr/expression.h"

namespace robustqo {
namespace perf {

/// Structural 64-bit fingerprint of `e`. Deterministic across processes
/// and platforms. AND/OR children are combined order-insensitively, so
/// `a AND b` and `b AND a` collide on purpose; everything else (operator,
/// column names, literal type + bit pattern) feeds the hash.
uint64_t FingerprintExpr(const expr::Expr& e);

/// Fingerprint of a nullable predicate; null (= no predicate, TRUE) has a
/// fixed reserved fingerprint.
uint64_t FingerprintExpr(const expr::ExprPtr& e);

}  // namespace perf
}  // namespace robustqo

#endif  // ROBUSTQO_PERF_FINGERPRINT_H_
