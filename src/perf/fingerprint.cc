#include "perf/fingerprint.h"

#include <bit>
#include <string>

#include "storage/value.h"

namespace robustqo {
namespace perf {

namespace {

// splitmix64 finaliser: the mixing primitive for everything below.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Combine(uint64_t seed, uint64_t v) {
  return Mix(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

uint64_t HashString(const std::string& s) {
  // FNV-1a, then mixed; stable across platforms.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix(h);
}

uint64_t HashValue(const storage::Value& v) {
  uint64_t h = Combine(0x56a1, static_cast<uint64_t>(v.type()));
  switch (v.type()) {
    case storage::DataType::kInt64:
    case storage::DataType::kDate:
      return Combine(h, static_cast<uint64_t>(v.AsInt64()));
    case storage::DataType::kDouble:
      return Combine(h, std::bit_cast<uint64_t>(v.AsDouble()));
    case storage::DataType::kString:
      return Combine(h, HashString(v.AsString()));
  }
  return h;
}

constexpr uint64_t kKindTag[] = {
    0xc01u,  // kColumnRef
    0x117u,  // kLiteral
    0xc3au,  // kComparison
    0xbe7u,  // kBetween
    0xa4du,  // kAnd
    0x0bbu,  // kOr
    0x407u,  // kNot
    0xa51u,  // kArithmetic
    0x5c0u,  // kStringContains
};

uint64_t KindSeed(expr::ExprKind kind) {
  return Mix(kKindTag[static_cast<size_t>(kind)]);
}

}  // namespace

uint64_t FingerprintExpr(const expr::Expr& e) {
  using expr::ExprKind;
  uint64_t h = KindSeed(e.kind());
  switch (e.kind()) {
    case ExprKind::kColumnRef:
      return Combine(
          h, HashString(static_cast<const expr::ColumnRefExpr&>(e).name()));
    case ExprKind::kLiteral:
      return Combine(h,
                     HashValue(static_cast<const expr::LiteralExpr&>(e).value()));
    case ExprKind::kComparison: {
      const auto& c = static_cast<const expr::ComparisonExpr&>(e);
      h = Combine(h, static_cast<uint64_t>(c.op()));
      h = Combine(h, FingerprintExpr(*c.lhs()));
      return Combine(h, FingerprintExpr(*c.rhs()));
    }
    case ExprKind::kBetween: {
      const auto& b = static_cast<const expr::BetweenExpr&>(e);
      h = Combine(h, FingerprintExpr(*b.expr()));
      h = Combine(h, HashValue(b.lo()));
      return Combine(h, HashValue(b.hi()));
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      // Commutative combine: SplitConjuncts and the DP enumerator assemble
      // the same conjunct set in different orders, and those must share a
      // cache entry. Sum + xor of mixed child hashes is order-free and
      // keeps duplicate children distinguishable from each other.
      const auto& children =
          e.kind() == ExprKind::kAnd
              ? static_cast<const expr::AndExpr&>(e).children()
              : static_cast<const expr::OrExpr&>(e).children();
      uint64_t sum = 0;
      uint64_t x = 0;
      for (const auto& child : children) {
        const uint64_t ch = Mix(FingerprintExpr(*child));
        sum += ch;
        x ^= ch;
      }
      h = Combine(h, children.size());
      h = Combine(h, sum);
      return Combine(h, x);
    }
    case ExprKind::kNot:
      return Combine(
          h, FingerprintExpr(*static_cast<const expr::NotExpr&>(e).child()));
    case ExprKind::kArithmetic: {
      const auto& a = static_cast<const expr::ArithmeticExpr&>(e);
      h = Combine(h, static_cast<uint64_t>(a.op()));
      h = Combine(h, FingerprintExpr(*a.lhs()));
      return Combine(h, FingerprintExpr(*a.rhs()));
    }
    case ExprKind::kStringContains: {
      const auto& s = static_cast<const expr::StringContainsExpr&>(e);
      h = Combine(h, FingerprintExpr(*s.expr()));
      return Combine(h, HashString(s.needle()));
    }
  }
  return h;
}

uint64_t FingerprintExpr(const expr::ExprPtr& e) {
  if (e == nullptr) return Mix(0x7121eULL);  // TRUE: no predicate
  return FingerprintExpr(*e);
}

}  // namespace perf
}  // namespace robustqo
