#include "perf/task_pool.h"

#include <cstdlib>
#include <memory>

namespace robustqo {
namespace perf {

namespace {

unsigned ResolveCount(unsigned n) {
  if (n == 0) n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

unsigned InitialThreadCount() {
  const char* env = std::getenv("RQO_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  return ResolveCount(static_cast<unsigned>(std::strtoul(env, nullptr, 10)));
}

std::mutex g_global_mu;
unsigned g_thread_count = 0;  // 0 = not yet initialised from the env
std::unique_ptr<TaskPool> g_pool;

}  // namespace

unsigned ThreadCount() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_thread_count == 0) g_thread_count = InitialThreadCount();
  return g_thread_count;
}

void SetThreadCount(unsigned n) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_thread_count = ResolveCount(n);
  if (g_pool != nullptr && g_pool->threads() != g_thread_count) g_pool.reset();
}

uint64_t TaskSeed(uint64_t base_seed, uint64_t index) {
  // splitmix64 over (base, index): well-mixed, platform-independent, and a
  // different stream for every index no matter how tasks land on workers.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

TaskPool::TaskPool(unsigned threads) : threads_(ResolveCount(threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned w = 1; w < threads_; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::WorkerLoop() {
  // Workers are numbered 1..threads-1; worker id 0 is the batch's caller.
  uint64_t seen_batch = 0;
  unsigned my_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    my_id = ++worker_ids_issued_;
  }
  for (;;) {
    const std::function<void(unsigned, size_t)>* fn = nullptr;
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || (batch_fn_ != nullptr && batch_id_ != seen_batch);
      });
      if (shutdown_) return;
      seen_batch = batch_id_;
      fn = batch_fn_;
      n = batch_size_;
    }
    for (;;) {
      const size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*fn)(my_id, i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++completed_;
    }
    work_done_.notify_all();
  }
}

void TaskPool::RunBatch(size_t n,
                        const std::function<void(unsigned, size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_fn_ = &fn;
    batch_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    ++batch_id_;
  }
  work_ready_.notify_all();
  // The caller is worker 0 and drains alongside the pool.
  for (;;) {
    const size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(0, i);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    work_done_.wait(lock, [&] { return completed_ == workers_.size(); });
    batch_fn_ = nullptr;
  }
}

void TaskPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  RunBatch(n, [&fn](unsigned /*worker*/, size_t i) { fn(i); });
}

void TaskPool::ParallelForWorker(
    size_t n, const std::function<void(unsigned, size_t)>& fn) {
  RunBatch(n, fn);
}

TaskPool* TaskPool::Global() {
  const unsigned want = ThreadCount();
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_pool == nullptr || g_pool->threads() != want) {
    g_pool = std::make_unique<TaskPool>(want);
  }
  return g_pool.get();
}

}  // namespace perf
}  // namespace robustqo
