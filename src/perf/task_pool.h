// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// A deterministic fork-join task pool for the independent units of work
// that dominate this library's wall clock: the sample probes of a query's
// predicate set and the seeded configs of bench/chaos sweeps.
//
// The determinism contract (same as the fault injector's): results are
// bit-identical regardless of the thread count. The pool guarantees this
// by construction rather than by discipline:
//
//   * tasks are pure with respect to shared state — each task writes only
//     to its own pre-allocated output slot (ParallelFor/Map index i);
//   * reduction happens on the calling thread, in index order, after the
//     barrier — never in completion order;
//   * randomized tasks derive their stream from TaskSeed(base, i), a
//     per-index splitmix64 stream independent of which worker runs it.
//
// Thread count is a process-wide knob: SetThreadCount(), the RQO_THREADS
// environment variable (read once on first use), or `SET THREADS n` in the
// shell. The default is 1 — parallelism is opt-in, and a 1-thread pool
// runs every task inline on the caller with no worker threads at all.

#ifndef ROBUSTQO_PERF_TASK_POOL_H_
#define ROBUSTQO_PERF_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace robustqo {
namespace perf {

/// Process-wide worker count used by TaskPool::Global(). Initialised from
/// the RQO_THREADS environment variable on first read (default 1; 0 means
/// std::thread::hardware_concurrency()). Always >= 1.
unsigned ThreadCount();

/// Overrides the process-wide worker count. 0 selects the hardware
/// concurrency. Takes effect on the next TaskPool::Global() use.
void SetThreadCount(unsigned n);

/// Seed for task `index` of a batch seeded with `base_seed`: a splitmix64
/// stream over the index, so every task gets an independent RNG stream
/// that does not depend on which worker executes it.
uint64_t TaskSeed(uint64_t base_seed, uint64_t index);

/// Fixed-size fork-join pool. Construction spawns `threads - 1` workers
/// (the calling thread participates in every batch); a 1-thread pool has
/// no workers and runs batches inline.
class TaskPool {
 public:
  explicit TaskPool(unsigned threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  unsigned threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, n) and blocks until all complete.
  /// Tasks are claimed dynamically (atomic counter), so `fn` must write
  /// only to per-index state; the claim order is the only thing that
  /// varies across runs, and it is unobservable for pure tasks.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// ParallelFor variant passing the executing worker's id in
  /// [0, threads()) — for tasks needing per-worker scratch (for example
  /// one Database per worker in the chaos harness). Worker 0 is the
  /// calling thread.
  void ParallelForWorker(
      size_t n, const std::function<void(unsigned worker, size_t index)>& fn);

  /// Maps [0, n) through `fn` into a vector in index order. The ordered
  /// reduction happens here, on the calling thread.
  template <typename T, typename Fn>
  std::vector<T> Map(size_t n, Fn&& fn) {
    std::vector<T> out(n);
    ParallelFor(n, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

  /// The process-wide pool, sized to ThreadCount(). Rebuilt lazily when
  /// the knob changes. Never returns null.
  static TaskPool* Global();

 private:
  void WorkerLoop();
  void RunBatch(size_t n,
                const std::function<void(unsigned, size_t)>& fn);

  const unsigned threads_;
  std::vector<std::thread> workers_;

  // Batch state, published under mu_.
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  uint64_t batch_id_ = 0;
  size_t batch_size_ = 0;
  const std::function<void(unsigned, size_t)>* batch_fn_ = nullptr;
  std::atomic<size_t> next_index_{0};
  size_t completed_ = 0;
  unsigned worker_ids_issued_ = 0;
  bool shutdown_ = false;
};

}  // namespace perf
}  // namespace robustqo

#endif  // ROBUSTQO_PERF_TASK_POOL_H_
