#include "perf/batch_eval.h"

#include <algorithm>
#include <cstddef>
#include <string>

namespace robustqo {
namespace perf {

namespace {

using expr::CompareOp;
using expr::ExprKind;
using storage::DataType;
using storage::Table;

// Column-vs-literal comparison with the operator hoisted out of the loop:
// one branch-free pass per predicate instead of one virtual dispatch and
// two boxed Values per row. `get(i)` yields the row value, `lit` the
// constant; both already widened to a common comparable type.
template <typename Get, typename LitT>
void CompareColLit(CompareOp op, size_t n, std::vector<uint8_t>* mask,
                   const Get& get, const LitT& lit) {
  std::vector<uint8_t>& m = *mask;
  switch (op) {
    case CompareOp::kEq:
      for (size_t i = 0; i < n; ++i) m[i] = get(i) == lit ? 1 : 0;
      break;
    case CompareOp::kNe:
      for (size_t i = 0; i < n; ++i) m[i] = get(i) != lit ? 1 : 0;
      break;
    case CompareOp::kLt:
      for (size_t i = 0; i < n; ++i) m[i] = get(i) < lit ? 1 : 0;
      break;
    case CompareOp::kLe:
      for (size_t i = 0; i < n; ++i) m[i] = get(i) <= lit ? 1 : 0;
      break;
    case CompareOp::kGt:
      for (size_t i = 0; i < n; ++i) m[i] = get(i) > lit ? 1 : 0;
      break;
    case CompareOp::kGe:
      for (size_t i = 0; i < n; ++i) m[i] = get(i) >= lit ? 1 : 0;
      break;
  }
}

// `lit <op> col` rewritten as `col <flipped op> lit`.
CompareOp FlipOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      break;
  }
  return op;
}

// Scalar-interpretation fallback for subtrees without a columnar kernel
// (arithmetic, column-vs-column compares). Same bitmap, same semantics,
// row-at-a-time speed.
void FallbackMask(const expr::Expr& e, const Table& table, size_t n,
                  std::vector<uint8_t>* mask) {
  std::vector<uint8_t>& m = *mask;
  for (size_t i = 0; i < n; ++i) m[i] = e.EvaluateBool(table, i) ? 1 : 0;
}

// Kernel for `column <op> literal`. Returns false when no kernel applies
// (caller falls back). Mirrors Value::Compare: int64/date vs int64/date
// compares exactly, any double widens both sides, strings compare
// lexicographically, string-vs-non-string is a type error the fallback
// reports identically to the scalar path.
bool TryCompareKernel(CompareOp op, const std::string& column,
                      const storage::Value& lit, const Table& table, size_t n,
                      std::vector<uint8_t>* mask) {
  auto idx = table.schema().ColumnIndex(column);
  if (!idx.ok()) return false;
  const storage::ColumnVector& col = table.column(idx.value());
  const bool col_int = storage::IsIntegerPhysical(col.type());
  const bool lit_int = storage::IsIntegerPhysical(lit.type());
  if (col.type() == DataType::kString || lit.type() == DataType::kString) {
    if (col.type() != DataType::kString || lit.type() != DataType::kString) {
      return false;  // type error; let the scalar path raise it
    }
    const std::string& s = lit.AsString();
    CompareColLit(
        op, n, mask,
        [&col](size_t i) -> const std::string& { return col.StringAt(i); }, s);
    return true;
  }
  if (col_int && lit_int) {
    const int64_t v = lit.AsInt64();
    CompareColLit(op, n, mask, [&col](size_t i) { return col.Int64At(i); }, v);
    return true;
  }
  const double v = lit.NumericValue();
  if (col_int) {
    CompareColLit(op, n, mask,
                  [&col](size_t i) { return static_cast<double>(col.Int64At(i)); },
                  v);
  } else {
    CompareColLit(op, n, mask, [&col](size_t i) { return col.DoubleAt(i); }, v);
  }
  return true;
}

// Kernel for `column BETWEEN lo AND hi` — one fused pass, one byte store
// per row.
bool TryBetweenKernel(const std::string& column, const storage::Value& lo,
                      const storage::Value& hi, const Table& table, size_t n,
                      std::vector<uint8_t>* mask) {
  auto idx = table.schema().ColumnIndex(column);
  if (!idx.ok()) return false;
  const storage::ColumnVector& col = table.column(idx.value());
  std::vector<uint8_t>& m = *mask;
  if (col.type() == DataType::kString || lo.type() == DataType::kString ||
      hi.type() == DataType::kString) {
    if (col.type() != DataType::kString || lo.type() != DataType::kString ||
        hi.type() != DataType::kString) {
      return false;
    }
    const std::string& a = lo.AsString();
    const std::string& b = hi.AsString();
    for (size_t i = 0; i < n; ++i) {
      const std::string& v = col.StringAt(i);
      m[i] = (v.compare(a) >= 0 && v.compare(b) <= 0) ? 1 : 0;
    }
    return true;
  }
  const bool all_int = storage::IsIntegerPhysical(col.type()) &&
                       storage::IsIntegerPhysical(lo.type()) &&
                       storage::IsIntegerPhysical(hi.type());
  if (all_int) {
    const int64_t a = lo.AsInt64();
    const int64_t b = hi.AsInt64();
    for (size_t i = 0; i < n; ++i) {
      const int64_t v = col.Int64At(i);
      m[i] = (v >= a && v <= b) ? 1 : 0;
    }
    return true;
  }
  const double a = lo.NumericValue();
  const double b = hi.NumericValue();
  if (storage::IsIntegerPhysical(col.type())) {
    for (size_t i = 0; i < n; ++i) {
      const double v = static_cast<double>(col.Int64At(i));
      m[i] = (v >= a && v <= b) ? 1 : 0;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const double v = col.DoubleAt(i);
      m[i] = (v >= a && v <= b) ? 1 : 0;
    }
  }
  return true;
}

void EvalMask(const expr::Expr& e, const Table& table, size_t n,
              std::vector<uint8_t>* mask);

void EvalChildrenCombine(const std::vector<expr::ExprPtr>& children,
                         const Table& table, size_t n, bool is_and,
                         std::vector<uint8_t>* mask) {
  std::vector<uint8_t>& m = *mask;
  if (children.empty()) {
    // And({}) is TRUE, Or({}) is FALSE — matching the scalar evaluator.
    std::fill(m.begin(), m.end(), is_and ? 1 : 0);
    return;
  }
  EvalMask(*children[0], table, n, mask);
  std::vector<uint8_t> tmp;
  for (size_t c = 1; c < children.size(); ++c) {
    tmp.assign(n, 0);
    EvalMask(*children[c], table, n, &tmp);
    if (is_and) {
      for (size_t i = 0; i < n; ++i) m[i] &= tmp[i];
    } else {
      for (size_t i = 0; i < n; ++i) m[i] |= tmp[i];
    }
  }
}

void EvalMask(const expr::Expr& e, const Table& table, size_t n,
              std::vector<uint8_t>* mask) {
  switch (e.kind()) {
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const expr::ComparisonExpr&>(e);
      const expr::Expr& lhs = *cmp.lhs();
      const expr::Expr& rhs = *cmp.rhs();
      if (lhs.kind() == ExprKind::kColumnRef &&
          rhs.kind() == ExprKind::kLiteral) {
        if (TryCompareKernel(
                cmp.op(),
                static_cast<const expr::ColumnRefExpr&>(lhs).name(),
                static_cast<const expr::LiteralExpr&>(rhs).value(), table, n,
                mask)) {
          return;
        }
      } else if (lhs.kind() == ExprKind::kLiteral &&
                 rhs.kind() == ExprKind::kColumnRef) {
        if (TryCompareKernel(
                FlipOp(cmp.op()),
                static_cast<const expr::ColumnRefExpr&>(rhs).name(),
                static_cast<const expr::LiteralExpr&>(lhs).value(), table, n,
                mask)) {
          return;
        }
      }
      FallbackMask(e, table, n, mask);
      return;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const expr::BetweenExpr&>(e);
      if (bt.expr()->kind() == ExprKind::kColumnRef &&
          TryBetweenKernel(
              static_cast<const expr::ColumnRefExpr&>(*bt.expr()).name(),
              bt.lo(), bt.hi(), table, n, mask)) {
        return;
      }
      FallbackMask(e, table, n, mask);
      return;
    }
    case ExprKind::kAnd:
      EvalChildrenCombine(static_cast<const expr::AndExpr&>(e).children(),
                          table, n, /*is_and=*/true, mask);
      return;
    case ExprKind::kOr:
      EvalChildrenCombine(static_cast<const expr::OrExpr&>(e).children(),
                          table, n, /*is_and=*/false, mask);
      return;
    case ExprKind::kNot: {
      EvalMask(*static_cast<const expr::NotExpr&>(e).child(), table, n, mask);
      std::vector<uint8_t>& m = *mask;
      for (size_t i = 0; i < n; ++i) m[i] ^= 1;
      return;
    }
    case ExprKind::kStringContains: {
      const auto& sc = static_cast<const expr::StringContainsExpr&>(e);
      if (sc.expr()->kind() == ExprKind::kColumnRef) {
        const std::string& name =
            static_cast<const expr::ColumnRefExpr&>(*sc.expr()).name();
        auto idx = table.schema().ColumnIndex(name);
        if (idx.ok() &&
            table.column(idx.value()).type() == DataType::kString) {
          const storage::ColumnVector& col = table.column(idx.value());
          std::vector<uint8_t>& m = *mask;
          const std::string& needle = sc.needle();
          for (size_t i = 0; i < n; ++i) {
            m[i] = col.StringAt(i).find(needle) != std::string::npos ? 1 : 0;
          }
          return;
        }
      }
      FallbackMask(e, table, n, mask);
      return;
    }
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
    case ExprKind::kArithmetic:
      FallbackMask(e, table, n, mask);
      return;
  }
  FallbackMask(e, table, n, mask);
}

}  // namespace

uint64_t BatchEvaluateMask(const expr::Expr& predicate,
                           const storage::Table& table,
                           std::vector<uint8_t>* mask) {
  const size_t n = static_cast<size_t>(table.num_rows());
  mask->assign(n, 0);
  EvalMask(predicate, table, n, mask);
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += (*mask)[i];
  return count;
}

uint64_t BatchCountSatisfying(const expr::Expr& predicate,
                              const storage::Table& table) {
  std::vector<uint8_t> mask;
  return BatchEvaluateMask(predicate, table, &mask);
}

}  // namespace perf
}  // namespace robustqo
