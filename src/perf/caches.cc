#include "perf/caches.h"

#include <bit>

#include "stats_math/beta_distribution.h"
#include "util/string_util.h"

namespace robustqo {
namespace perf {

// ----- ProbeCountCache -----

std::string ProbeCountCache::Key(const std::string& source,
                                 uint64_t fingerprint) {
  return source + "#" + StrPrintf("%016llx",
                                  static_cast<unsigned long long>(fingerprint));
}

std::optional<ProbeCount> ProbeCountCache::Lookup(const std::string& source,
                                                  uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key(source, fingerprint));
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void ProbeCountCache::Insert(const std::string& source, uint64_t fingerprint,
                             ProbeCount count) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[Key(source, fingerprint)] = count;
}

void ProbeCountCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  beta_keys_.clear();
  hits_ = 0;
  misses_ = 0;
  beta_hits_ = 0;
  beta_misses_ = 0;
}

bool ProbeCountCache::NoteBetaInversion(double alpha, double beta, double p) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool seen =
      !beta_keys_
           .emplace(std::bit_cast<uint64_t>(alpha),
                    std::bit_cast<uint64_t>(beta), std::bit_cast<uint64_t>(p))
           .second;
  ++(seen ? beta_hits_ : beta_misses_);
  return seen;
}

uint64_t ProbeCountCache::beta_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return beta_hits_;
}

uint64_t ProbeCountCache::beta_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return beta_misses_;
}

uint64_t ProbeCountCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ProbeCountCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t ProbeCountCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

// ----- InverseBetaCache -----

size_t InverseBetaCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = k.alpha_bits * 0x9e3779b97f4a7c15ULL;
  h ^= k.beta_bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= k.p_bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return static_cast<size_t>(h ^ (h >> 32));
}

InverseBetaCache::InverseBetaCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void InverseBetaCache::EvictLocked() {
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

double InverseBetaCache::Value(double alpha, double beta, double p, bool* hit) {
  const Key key{std::bit_cast<uint64_t>(alpha), std::bit_cast<uint64_t>(beta),
                std::bit_cast<uint64_t>(p)};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
      if (hit != nullptr) *hit = true;
      return it->second->second;
    }
    ++misses_;
  }
  // Invert outside the lock: the Newton iteration is the expensive part,
  // and two threads racing on the same key compute the same bits.
  const double value = math::BetaDistribution(alpha, beta).InverseCdf(p);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      lru_.emplace_front(key, value);
      index_.emplace(key, lru_.begin());
      EvictLocked();
    }
  }
  if (hit != nullptr) *hit = false;
  return value;
}

void InverseBetaCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  EvictLocked();
}

size_t InverseBetaCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void InverseBetaCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  hits_ = 0;
  misses_ = 0;
}

uint64_t InverseBetaCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t InverseBetaCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t InverseBetaCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

}  // namespace perf
}  // namespace robustqo
