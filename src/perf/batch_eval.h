// Copyright (c) robustqo authors. Licensed under the MIT license.
//
// Columnar batch predicate evaluation — the hot inner loop of sample-based
// estimation. Instead of interpreting the expression tree once per sample
// tuple (a virtual Evaluate call plus boxed Value allocations per node per
// row), the batch evaluator walks the tree once and evaluates each leaf
// comparison as a tight loop over the native column arrays, producing a
// selection bitmap; AND/OR/NOT combine bitmaps, and the final popcount is
// the paper's `k`.
//
// Semantics are bit-for-bit those of the scalar path (Value::Compare):
// int64/date vs int64/date compares exactly, any double operand widens
// both sides to double, and strings compare lexicographically. Subtrees
// the kernels don't specialise (arithmetic, column-vs-column compares)
// fall back to per-row EvaluateBool inside the same bitmap, so any
// predicate the tree can evaluate, the batch evaluator can evaluate —
// property-tested against the scalar path in tests/perf/batch_eval_test.

#ifndef ROBUSTQO_PERF_BATCH_EVAL_H_
#define ROBUSTQO_PERF_BATCH_EVAL_H_

#include <cstdint>
#include <vector>

#include "expr/expression.h"
#include "storage/table.h"

namespace robustqo {
namespace perf {

/// Evaluates `predicate` over every row of `table` into `mask` (resized to
/// the row count; mask[i] == 1 iff row i satisfies). Returns the popcount.
uint64_t BatchEvaluateMask(const expr::Expr& predicate,
                           const storage::Table& table,
                           std::vector<uint8_t>* mask);

/// Popcount-only variant: drop-in replacement for expr::CountSatisfying.
uint64_t BatchCountSatisfying(const expr::Expr& predicate,
                              const storage::Table& table);

}  // namespace perf
}  // namespace robustqo

#endif  // ROBUSTQO_PERF_BATCH_EVAL_H_
